# Convenience targets wrapping the tier-1 verify command (see ROADMAP.md).

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test test-fast bench quickstart

# Tier-1: the exact command the roadmap gates on (tests/ + benchmarks/).
test:
	$(PYTHON) -m pytest -x -q

# Unit and integration tests only (fast inner loop; skips the benchmark harness).
test-fast:
	$(PYTHON) -m pytest -x -q tests

# The paper-figure benchmark harness only.
bench:
	$(PYTHON) -m pytest -q benchmarks

quickstart:
	$(PYTHON) examples/quickstart.py
