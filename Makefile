# Convenience targets wrapping the tier-1 verify command (see ROADMAP.md).

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test test-fast bench bench-smoke bench-overhead bench-obsv bench-slo bench-sched bench-service bench-http bench-shard bench-chaos chaos coverage lint docs-lint linkcheck mypy-sched ci quickstart

# Tier-1: the exact command the roadmap gates on (tests/ + benchmarks/).
test:
	$(PYTHON) -m pytest -x -q

# Unit and integration tests only (fast inner loop; skips the benchmark harness).
test-fast:
	$(PYTHON) -m pytest -x -q tests

# The paper-figure benchmark harness only.
bench:
	$(PYTHON) -m pytest -q benchmarks

# The CI smoke subset: shrunken workloads, raw numbers to BENCH_smoke.json.
bench-smoke:
	REPRO_BENCH_FAST=1 $(PYTHON) -m pytest -q benchmarks \
		-k "fig3 or fig6 or ablation or overhead" --benchmark-json=BENCH_smoke.json

# DFK per-task overhead gate: fails if sustained submit throughput drops
# below the recorded floor in BENCH_overhead_floor.json (repo root).
bench-overhead:
	REPRO_BENCH_FAST=1 $(PYTHON) -m pytest -q benchmarks/test_dfk_overhead.py \
		--benchmark-json=BENCH_overhead.json

# Observability overhead gate: metrics + tracing on vs off on the Fig. 4
# throughput anchor; fails if the instrumented median round loses >5%.
bench-obsv:
	REPRO_BENCH_FAST=1 $(PYTHON) -m pytest -q benchmarks/test_observability_overhead.py \
		--benchmark-json=BENCH_observability.json

# Live ops plane gate: a two-tenant run with the SLO engine + straggler
# detector on vs stubbed out (≤5% median throughput cost), plus the
# detection-quality check (injected 10×-slow tasks flagged, zero false
# positives from the clean phase, zero false SLO alarms).
bench-slo:
	REPRO_BENCH_FAST=1 $(PYTHON) -m pytest -q benchmarks/test_slo_overhead.py \
		--benchmark-json=BENCH_slo.json

# The fig7 resource-aware scheduling bench (priority overtaking, bin-packed
# multi-core placement, default-path throughput guard) at full scale.
bench-sched:
	$(PYTHON) -m pytest -q benchmarks/test_fig7_scheduling.py \
		--benchmark-json=BENCH_fig7_scheduling.json

# The multi-tenant gateway bench (8-client aggregate throughput vs direct
# DFK, 1:10 weighted fair share, reconnect-and-resume) at full scale.
bench-service:
	$(PYTHON) -m pytest -q benchmarks/test_service_gateway.py \
		--benchmark-json=BENCH_service_gateway.json

# The HTTP/SSE edge bench (64 streaming AsyncServiceClients vs the raw-TCP
# path; acceptance floor 70% of TCP throughput) at full scale.
bench-http:
	$(PYTHON) -m pytest -q benchmarks/test_http_edge.py \
		--benchmark-json=BENCH_http_edge.json

# The sharded-gateway bench (4-shard vs 1-shard aggregate throughput,
# shard-kill recovery with 32 clients, gateway kill -9 over the durable
# SQLite store) at full scale.
bench-shard:
	$(PYTHON) -m pytest -q benchmarks/test_shard_scale.py \
		--benchmark-json=BENCH_shard_scale.json

# The chaos-recovery bench (goodput retention under sustained worker
# SIGKILLs, manager-loss detection/resettle time) at full scale. The
# explicit `-m chaos` overrides the default `-m "not chaos"` deselection.
bench-chaos:
	$(PYTHON) -m pytest -q benchmarks/test_chaos_recovery.py -m chaos \
		--benchmark-json=BENCH_chaos.json

# The full-scale chaos acceptance campaigns (500 tasks under sustained
# random worker kills plus one manager kill).
chaos:
	$(PYTHON) -m pytest -q tests/executors/test_chaos.py -m chaos

# Line coverage with a floor on the service layer (gateway + HTTP edge +
# both SDKs). Needs pytest-cov; skips gracefully where absent.
coverage:
	@if $(PYTHON) -c "import pytest_cov" >/dev/null 2>&1; then \
		$(PYTHON) -m pytest -q tests --cov=repro --cov-report=xml --cov-report=term && \
		$(PYTHON) -m coverage report --include="*/repro/service/*" --fail-under=75; \
	else \
		echo "pytest-cov not installed — skipping coverage (pip install pytest-cov)"; \
	fi

# Strict typing is scoped to the scheduling package (config in pyproject.toml);
# skip gracefully where mypy is absent, mirroring the lint target.
mypy-sched:
	@if command -v mypy >/dev/null 2>&1; then \
		mypy --strict src/repro/scheduling; \
	elif $(PYTHON) -c "import mypy" >/dev/null 2>&1; then \
		$(PYTHON) -m mypy --strict src/repro/scheduling; \
	else \
		echo "mypy not installed — skipping strict typing pass (pip install mypy)"; \
	fi

# Ruff config lives in pyproject.toml; skip gracefully where ruff is absent.
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check .; \
	elif $(PYTHON) -c "import ruff" >/dev/null 2>&1; then \
		$(PYTHON) -m ruff check .; \
	else \
		echo "ruff not installed — skipping lint (pip install ruff)"; \
	fi

# Public-API docstring gate for the service layer: the stdlib AST checker
# always runs; ruff's pydocstyle D1 rules run additionally when available.
docs-lint:
	$(PYTHON) tools/check_docstrings.py
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check --select D1 src/repro/service; \
	elif $(PYTHON) -c "import ruff" >/dev/null 2>&1; then \
		$(PYTHON) -m ruff check --select D1 src/repro/service; \
	else \
		echo "ruff not installed — stdlib docstring check only (pip install ruff)"; \
	fi

# Intra-repo markdown link check (stdlib only).
linkcheck:
	$(PYTHON) tools/check_links.py

# What the CI workflow runs: lint, then the tier-1 suite.
ci: lint docs-lint linkcheck test

quickstart:
	$(PYTHON) examples/quickstart.py
