"""Shared helpers for the benchmark harness.

Each benchmark module regenerates one table or figure from the paper's
evaluation (§5). Real measurements run the actual executors/baselines at
laptop scale; paper-scale numbers (Blue Waters worker counts, Midway
throughput) come from the calibrated models in :mod:`repro.simulation`.
Every module prints the regenerated rows next to the paper's values so the
comparison is visible directly in the pytest-benchmark output.
"""

from __future__ import annotations

import os
import time
from typing import Callable, Dict, List

import pytest

#: CI smoke mode: shrink workloads so the benchmark job finishes in seconds.
#: Set REPRO_BENCH_FAST=1 (the CI benchmark-smoke job does) to enable.
FAST_MODE = os.environ.get("REPRO_BENCH_FAST", "").lower() in ("1", "true", "yes")


def fast_scaled(value, fast_value):
    """Pick the fast-mode variant of a workload parameter when enabled."""
    return fast_value if FAST_MODE else value


def print_table(title: str, headers: List[str], rows: List[List[object]]) -> None:
    """Print a fixed-width comparison table into the benchmark output."""
    widths = [max(len(str(h)), max((len(str(r[i])) for r in rows), default=0)) for i, h in enumerate(headers)]
    print()
    print(f"=== {title} ===")
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    print("  ".join("-" * w for w in widths))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    print()


def noop():
    """The no-op task used throughout the paper's overhead measurements."""
    return None


def measure_sequential_latency(submit: Callable, n_tasks: int) -> Dict[str, float]:
    """Submit ``n_tasks`` one at a time, waiting for each (the Fig. 3 protocol)."""
    samples = []
    for _ in range(n_tasks):
        start = time.perf_counter()
        submit(noop, {}).result(timeout=60)
        samples.append(time.perf_counter() - start)
    samples.sort()
    mean = sum(samples) / len(samples)
    return {
        "mean_ms": mean * 1000,
        "median_ms": samples[len(samples) // 2] * 1000,
        "p95_ms": samples[int(0.95 * len(samples)) - 1] * 1000,
    }


def measure_throughput(submit: Callable, n_tasks: int) -> float:
    """Submit a burst of no-op tasks and report completed tasks per second."""
    start = time.perf_counter()
    futures = [submit(noop, {}) for _ in range(n_tasks)]
    for f in futures:
        f.result(timeout=120)
    elapsed = time.perf_counter() - start
    return n_tasks / elapsed


@pytest.fixture(scope="module")
def quiet_logging():
    import logging

    previous = logging.getLogger().level
    logging.getLogger().setLevel(logging.ERROR)
    yield
    logging.getLogger().setLevel(previous)
