"""Ablation benches for the design choices called out in DESIGN.md.

These are not paper figures; they quantify the effect of the HTEX design
decisions the paper describes qualitatively (§4.3.1) and of memoization
(§4.6) on this implementation:

* interchange task batching (batch size 1 vs 16),
* randomized vs round-robin manager selection,
* memoization on vs off for repeated invocations.
"""

import time

import pytest

import repro
from repro import Config
from repro.executors import HighThroughputExecutor, ThreadPoolExecutor

from conftest import measure_throughput, print_table


@pytest.mark.parametrize("batch_size", [1, 16])
def test_ablation_interchange_batching(benchmark, batch_size, quiet_logging):
    """Dispatch batching amortizes the per-message cost on the interchange."""
    executor = HighThroughputExecutor(
        label=f"htex_batch{batch_size}", workers_per_node=2, internal_managers=1, batch_size=batch_size
    )
    executor.start()
    try:
        rate = benchmark.pedantic(measure_throughput, args=(executor.submit, 400), rounds=2, iterations=1)
        print(f"\nbatch_size={batch_size}: {rate:.0f} tasks/s")
    finally:
        executor.shutdown()


@pytest.mark.parametrize("policy", ["random", "round_robin"])
def test_ablation_manager_selection(benchmark, policy, quiet_logging):
    """Randomized selection (the paper's fairness choice) vs round-robin."""
    executor = HighThroughputExecutor(
        label=f"htex_{policy}", workers_per_node=2, internal_managers=2, scheduling_policy=policy
    )
    executor.start()
    deadline = time.time() + 10
    while executor.connected_workers < 4 and time.time() < deadline:
        time.sleep(0.05)
    try:
        rate = benchmark.pedantic(measure_throughput, args=(executor.submit, 400), rounds=2, iterations=1)
        managers = executor.connected_managers
        counts = sorted(m["outstanding"] for m in managers)
        print(f"\npolicy={policy}: {rate:.0f} tasks/s across {len(managers)} managers (outstanding now {counts})")
    finally:
        executor.shutdown()


@pytest.mark.parametrize("app_cache", [True, False])
def test_ablation_memoization(benchmark, app_cache, tmp_path, quiet_logging):
    """Memoization turns repeated identical invocations into table lookups."""
    from repro.apps.app import python_app

    cfg = Config(
        executors=[ThreadPoolExecutor(label="threads", max_threads=2)],
        run_dir=str(tmp_path / f"runinfo-{app_cache}"),
        app_cache=app_cache,
        strategy="none",
    )
    repro.load(cfg)

    @python_app
    def simulate(x):
        time.sleep(0.02)
        return x * x

    def repeated_workload():
        futures = [simulate(i % 5) for i in range(50)]
        return sum(f.result(timeout=60) for f in futures)

    try:
        elapsed_start = time.perf_counter()
        result = benchmark.pedantic(repeated_workload, rounds=1, iterations=1)
        elapsed = time.perf_counter() - elapsed_start
        assert result == sum((i % 5) ** 2 for i in range(50))
        print(f"\napp_cache={app_cache}: repeated workload took {elapsed:.2f} s")
    finally:
        repro.clear()


def test_ablation_memoization_speedup_summary(benchmark, tmp_path, quiet_logging):
    """Direct comparison: cached runs must be much faster for repeated tasks."""
    from repro.apps.app import python_app

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # table-only entry; timing below
    timings = {}
    for app_cache in (True, False):
        cfg = Config(
            executors=[ThreadPoolExecutor(label="threads", max_threads=2)],
            run_dir=str(tmp_path / f"run-{app_cache}"),
            app_cache=app_cache,
            strategy="none",
        )
        repro.load(cfg)

        @python_app
        def simulate(x):
            time.sleep(0.02)
            return x * x

        # Sequential invocations: later repeats of the same arguments can hit
        # the memo table because earlier results have already been recorded.
        start = time.perf_counter()
        for i in range(50):
            simulate(i % 5).result(timeout=60)
        timings[app_cache] = time.perf_counter() - start
        repro.clear()

    print_table(
        "Ablation — memoization",
        ["app_cache", "50 repeated tasks (s)"],
        [[k, f"{v:.2f}"] for k, v in timings.items()],
    )
    assert timings[True] < timings[False]
