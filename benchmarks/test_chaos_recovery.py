"""Chaos recovery benchmark: goodput under kills, and manager-loss recovery.

Two numbers quantify what the fault-containment stack (worker supervision,
per-worker pipes, poison quarantine, redispatch) actually costs and buys:

* **goodput retention** — the same fixed workload is run clean and then
  under a :class:`ChaosMonkey` SIGKILLing random workers on a cadence; the
  ratio of the two completed-tasks/s rates is the fraction of throughput
  that survives sustained worker churn. Every task must still complete
  with the right answer in both rounds.
* **manager-loss recovery** — a whole manager (its own process group) is
  SIGKILLed mid-run; we measure how long the interchange takes to *detect*
  the loss (heartbeat sweep) and how long until every outstanding future
  has settled on the surviving manager.

Chaos-marked: real signals on a timer make these load-sensitive, so they
run via ``make bench-chaos`` (emitting ``BENCH_chaos.json``) and the CI
chaos-smoke step, not in tier-1.
"""

import os
import sys
import time

import pytest

from repro.executors import HighThroughputExecutor

from conftest import fast_scaled, print_table

# The chaos harness lives with the executor tests; benchmarks/ is a separate
# rootdir-relative import root, so reach over explicitly.
sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "tests", "executors")
)
from chaos import ChaosMonkey, ExternalManagerProc, attach_process_manager, make_sleeper, wait_for  # noqa: E402

pytestmark = pytest.mark.chaos

WORKERS_PER_MANAGER = 4
N_MANAGERS = 2
N_TASKS = fast_scaled(200, 60)
TASK_S = 0.1
MONKEY_INTERVAL = fast_scaled(0.4, 0.15)
#: Fraction of clean-run goodput that must survive the monkey. Deliberately
#: generous: the cost of a kill is a respawn plus a redispatched task, and
#: the point of the number is to catch a collapse (a wedged pool scores ~0),
#: not to gate normal scheduling jitter.
GOODPUT_FLOOR = 0.2
#: Slack over the heartbeat threshold allowed for manager-loss detection.
DETECT_SLACK_S = 3.0
HEARTBEAT_THRESHOLD = 3.0


def _make_executor(label):
    ex = HighThroughputExecutor(
        label=label,
        workers_per_node=WORKERS_PER_MANAGER,
        internal_managers=0,
        heartbeat_period=0.25,
        heartbeat_threshold=HEARTBEAT_THRESHOLD,
        # High budgets: the benchmark measures throughput under churn, not
        # quarantine policy, so a hot task absorbing several unlucky kills
        # must retry rather than fail typed.
        poison_threshold=16,
        worker_respawn_limit=1000,
    )
    ex.start()
    return ex


def _run_round(label, with_monkey):
    """One fixed workload; returns (tasks/s, kills delivered, fault stats)."""
    ex = _make_executor(label)
    managers = [
        attach_process_manager(
            ex.interchange,
            worker_count=WORKERS_PER_MANAGER,
            worker_respawn_limit=1000,
            block_id=f"{label}-{i}",
        )
        for i in range(N_MANAGERS)
    ]
    monkey = None
    try:
        assert wait_for(
            lambda: ex.connected_workers >= N_MANAGERS * WORKERS_PER_MANAGER, timeout=30
        )
        start = time.perf_counter()
        if with_monkey:
            monkey = ChaosMonkey(managers, interval=MONKEY_INTERVAL, seed=99).start()
        futures = [ex.submit(make_sleeper(TASK_S), {}, i) for i in range(N_TASKS)]
        results = [f.result(timeout=240) for f in futures]
        elapsed = time.perf_counter() - start
        kills = monkey.stop() if monkey else 0
        monkey = None
        assert results == list(range(N_TASKS))
        return N_TASKS / elapsed, kills, ex.interchange.fault_stats()
    finally:
        if monkey is not None:
            monkey.stop()
        for m in managers:
            m.shutdown()
        ex.shutdown()


def test_goodput_under_sustained_worker_kills(benchmark, quiet_logging):
    """Worker churn degrades throughput; it must never collapse it."""
    clean_rate, _, _ = _run_round("htex_bench_clean", with_monkey=False)

    def run():
        return _run_round("htex_bench_chaos", with_monkey=True)

    chaos_rate, kills, faults = benchmark.pedantic(run, rounds=1, iterations=1)
    retention = chaos_rate / clean_rate
    print_table(
        f"Goodput under chaos — {N_TASKS} tasks of {TASK_S * 1000:.0f} ms, "
        f"{N_MANAGERS}x{WORKERS_PER_MANAGER} workers, kill every {MONKEY_INTERVAL}s",
        ["clean (tasks/s)", "chaos (tasks/s)", "retention", "floor",
         "kills", "workers lost", "redispatched"],
        [[f"{clean_rate:.1f}", f"{chaos_rate:.1f}", f"{retention:.2f}",
          f"{GOODPUT_FLOOR}", kills, faults["workers_lost"],
          faults["tasks_redispatched"]]],
    )
    if kills:
        assert faults["workers_lost"] >= 1
    assert retention >= GOODPUT_FLOOR, (
        f"goodput collapsed under chaos: {chaos_rate:.1f}/{clean_rate:.1f} tasks/s "
        f"({retention:.2f} < {GOODPUT_FLOOR})"
    )
    assert wait_for(lambda: faults["in_flight_cores"] == 0, timeout=5)


def test_manager_loss_detection_and_resettle(benchmark, quiet_logging):
    """Kill a whole manager mid-run: bounded detection, full resettlement."""

    def run():
        ex = _make_executor("htex_bench_mgr")
        survivor = attach_process_manager(
            ex.interchange, worker_count=WORKERS_PER_MANAGER,
            worker_respawn_limit=1000, block_id="bench-keep",
        )
        doomed = ExternalManagerProc(
            ex.interchange, worker_count=WORKERS_PER_MANAGER, block_id="bench-doom"
        )
        try:
            assert wait_for(
                lambda: ex.connected_workers >= 2 * WORKERS_PER_MANAGER, timeout=30
            )
            futures = [ex.submit(make_sleeper(TASK_S), {}, i) for i in range(N_TASKS)]
            wait_for(lambda: sum(f.done() for f in futures) >= N_TASKS // 4, timeout=120)
            killed_at = time.perf_counter()
            doomed.kill()
            assert wait_for(
                lambda: ex.interchange.fault_stats()["managers_lost"] >= 1,
                timeout=HEARTBEAT_THRESHOLD + DETECT_SLACK_S,
            )
            detect_s = time.perf_counter() - killed_at
            results = [f.result(timeout=240) for f in futures]
            settle_s = time.perf_counter() - killed_at
            assert results == list(range(N_TASKS))
            return detect_s, settle_s, ex.interchange.fault_stats()
        finally:
            doomed.close()
            survivor.shutdown()
            ex.shutdown()

    detect_s, settle_s, faults = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        f"Manager-loss recovery — {N_TASKS} tasks of {TASK_S * 1000:.0f} ms, "
        f"heartbeat threshold {HEARTBEAT_THRESHOLD}s",
        ["detection (s)", "resettle (s)", "threshold (s)", "redispatched"],
        [[f"{detect_s:.2f}", f"{settle_s:.2f}", f"{HEARTBEAT_THRESHOLD:.1f}",
          faults["tasks_redispatched"]]],
    )
    assert detect_s <= HEARTBEAT_THRESHOLD + DETECT_SLACK_S
    assert faults["in_flight_cores"] == 0
