"""DFK per-task overhead: submit latency, submit throughput, retired memory.

The paper's §4.1 claims the DFK executes a graph of *n* tasks and *e* edges
in O(n + e) with per-task overhead in the low milliseconds. This module
pins the kernel-side half of that claim:

* **submit-side latency** — one ``DataFlowKernel.submit`` call (task
  registration, memo hash, dispatch enqueue) on the hot path;
* **sustained submit throughput** — with memoization enabled, measured
  against the pre-PR baseline (re-reading the App's source on every hash)
  *in the same run*, asserting the per-callable hash-seed cache buys ≥ 5×;
  when a recorded floor file exists, the cached number must also beat it
  (the CI regression gate, see ``make bench-overhead``);
* **retired-task memory** — a 50k-task run with a deliberately fat argument
  per task must show a flat memory slope: retirement drops each finished
  task's args/kwargs/func, so resident growth per completed task is O(1)
  and unrelated to argument size.
"""

from __future__ import annotations

import gc
import itertools
import json
import os
import time
import tracemalloc

from repro.config.config import Config
from repro.core import memoization
from repro.core.dflow import DataFlowKernel
from repro.executors import ThreadPoolExecutor

from conftest import fast_scaled, print_table

#: CI regression floor, checked in beside BENCH_smoke.json at the repo root.
FLOOR_PATH = os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_overhead_floor.json")


def hashed_app(x, scale=1, offset=0):
    """A representative App body for memo-hash benchmarking.

    Real scientific Apps are tens of lines; the pre-PR hash path re-read and
    re-tokenized this entire body on every single task submission, so the
    body length below is the honest cost being cached away — do not shrink
    it to make the benchmark prettier.
    """
    acc = x * scale + offset
    values = []
    for step in range(4):
        shifted = acc + step
        doubled = shifted * 2
        halved = doubled // 2
        values.append(halved - step)
    total = sum(values)
    lookup = {"x": x, "scale": scale, "offset": offset, "total": total}
    keys = sorted(lookup)
    joined = ",".join(str(lookup[k]) for k in keys)
    checksum = len(joined) + total
    if checksum < 0:
        checksum = -checksum
    window = [checksum % (i + 1) for i in range(3)]
    reduced = 0
    for w in window:
        reduced ^= w
    final = total + reduced * 0
    return final


def _make_dfk(run_dir, **overrides) -> DataFlowKernel:
    cfg = Config(
        executors=[ThreadPoolExecutor(label="threads", max_threads=2)],
        run_dir=str(run_dir),
        strategy="none",
        **overrides,
    )
    return DataFlowKernel(cfg)


def _sustained_submit_tput(dfk: DataFlowKernel, n_tasks: int) -> float:
    """Submit ``n_tasks`` distinct calls; return submit-side tasks/s."""
    start = time.perf_counter()
    futures = [dfk.submit(hashed_app, app_args=(i,)) for i in range(n_tasks)]
    elapsed = time.perf_counter() - start
    for f in futures:
        f.result(timeout=300)
    return n_tasks / elapsed


def _load_floor() -> float:
    if not os.path.exists(FLOOR_PATH):
        return 0.0
    with open(FLOOR_PATH) as fh:
        return float(json.load(fh).get("sustained_submit_tasks_per_s_floor", 0.0))


def test_dfk_submit_throughput_cached_vs_uncached(benchmark, tmp_path, quiet_logging):
    """The tentpole acceptance number: cached hash seeds must sustain ≥ 5×
    the pre-PR (source-re-reading) submit throughput, measured back to back
    in this same process, plus the recorded CI floor."""
    n_tasks = fast_scaled(4000, 2000)
    tput = {}
    for mode in ("uncached", "cached"):
        dfk = _make_dfk(tmp_path / mode)
        original = memoization._seeded_hasher
        if mode == "uncached":
            memoization._seeded_hasher = memoization._seeded_hasher_uncached
        memoization.clear_seed_cache()
        try:
            tput[mode] = _sustained_submit_tput(dfk, n_tasks)
        finally:
            memoization._seeded_hasher = original
            dfk.cleanup()

    floor = _load_floor()
    print_table(
        "DFK sustained submit throughput (memoization on)",
        ["hash path", "tasks/s", "speedup", "CI floor"],
        [
            ["uncached (pre-PR)", f"{tput['uncached']:,.0f}", "1.0x", "-"],
            [
                "cached seeds",
                f"{tput['cached']:,.0f}",
                f"{tput['cached'] / tput['uncached']:.1f}x",
                f"{floor:,.0f}",
            ],
        ],
    )
    benchmark.extra_info["submit_tput_uncached"] = tput["uncached"]
    benchmark.extra_info["submit_tput_cached"] = tput["cached"]

    # Record one cached submit as the benchmark quantity proper.
    dfk = _make_dfk(tmp_path / "bench")
    counter = itertools.count()
    try:
        benchmark.pedantic(
            lambda: dfk.submit(hashed_app, app_args=(100_000 + next(counter),)),
            rounds=50,
            iterations=1,
            warmup_rounds=5,
        )
        dfk.wait_for_current_tasks(timeout=120)
    finally:
        dfk.cleanup()

    assert tput["cached"] >= 5 * tput["uncached"], (
        f"hash-seed cache bought only {tput['cached'] / tput['uncached']:.1f}x "
        f"({tput['uncached']:,.0f} -> {tput['cached']:,.0f} tasks/s); acceptance is 5x"
    )
    if floor:
        assert tput["cached"] >= floor, (
            f"sustained submit throughput {tput['cached']:,.0f} tasks/s regressed "
            f"below the recorded floor {floor:,.0f} (see BENCH_overhead_floor.json)"
        )


def test_dfk_submit_latency(benchmark, tmp_path, quiet_logging):
    """One submit() call on the hot path — the kernel's share of the paper's
    low-millisecond per-task overhead budget."""
    dfk = _make_dfk(tmp_path)
    counter = itertools.count()
    try:
        stats = benchmark.pedantic(
            lambda: dfk.submit(hashed_app, app_args=(next(counter),)),
            rounds=fast_scaled(300, 100),
            iterations=1,
            warmup_rounds=10,
        )
        del stats
        dfk.wait_for_current_tasks(timeout=120)
    finally:
        dfk.cleanup()
    assert benchmark.stats.stats.mean < 5e-3, "submit-side latency left the low-ms budget"


def test_dfk_retired_task_memory_flat(tmp_path, quiet_logging):
    """Retired-task memory is O(1): a 50k-task run with a 10 kB argument per
    task must not accumulate argument bytes — the traced-memory slope per
    completed task stays far below the argument size and does not grow
    between the first and second half of the run."""
    # Deliberately NOT fast_scaled: the acceptance criterion pins a 50k-task
    # run even in fast mode — the flat-slope claim needs the length.
    n_tasks = 50_000
    wave = 10_000
    payload_bytes = 10_240

    def sink(_blob):
        return None

    dfk = _make_dfk(tmp_path, app_cache=False)
    samples = []
    tracemalloc.start()
    try:
        for wave_idx in range(n_tasks // wave):
            futures = [
                dfk.submit(sink, app_args=(os.urandom(payload_bytes),), cache=False)
                for _ in range(wave)
            ]
            for f in futures:
                f.result(timeout=300)
            assert dfk.wait_for_current_tasks(timeout=300)
            # Retirement runs microseconds after the future resolves; let the
            # last callbacks land before sampling.
            last = dfk.tasks[(wave_idx + 1) * wave - 1]
            deadline = time.time() + 10
            while last.retired is None and time.time() < deadline:
                time.sleep(0.005)
            del futures, last
            gc.collect()
            samples.append(tracemalloc.get_traced_memory()[0])
    finally:
        tracemalloc.stop()
        dfk.cleanup()

    per_task = [(b - a) / wave for a, b in zip(samples, samples[1:])]
    rows = [
        [f"{(i + 2) * wave:,}", f"{samples[i + 1] / 1e6:.1f}", f"{per_task[i]:.0f}"]
        for i in range(len(per_task))
    ]
    print_table(
        "Retired-task memory (tracemalloc, 10 kB argument per task)",
        ["tasks completed", "traced MB", "bytes/task this wave"],
        rows,
    )
    # O(1) and small: the retained footprint per completed task — the record
    # shell, its AppFuture, and the frozen summary, ~2.7 kB measured — must
    # stay a small fraction of the 10 kB argument retirement released ...
    assert max(per_task) < 4096, f"per-task retained memory {max(per_task):.0f} B; arguments leaked?"
    # ... and flat: the late-run slope must not exceed the early-run slope
    # (no superlinear growth with table size).
    early = sum(per_task[: len(per_task) // 2]) / (len(per_task) // 2)
    late = sum(per_task[len(per_task) // 2 :]) / (len(per_task) - len(per_task) // 2)
    assert late <= max(2.0 * early, 512), f"memory slope grew late in the run ({early:.0f} -> {late:.0f} B/task)"
