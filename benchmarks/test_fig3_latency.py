"""Figure 3: distribution of task latencies per executor/framework.

The paper measures 1000 sequential no-op tasks on two Midway nodes and
reports mean latencies of ThreadPool ≈1 ms, LLEX 3.47 ms, HTEX 6.87 ms,
EXEX 9.83 ms, IPP 11.72 ms, Dask 16.19 ms.

This harness does both halves:

* **real** — run the actual executors and baseline mini-frameworks locally
  (fewer tasks, one worker each, same sequential protocol) and benchmark the
  single-task round trip;
* **modelled** — the Midway-calibrated latency model, for the paper-scale
  numbers.

The assertion of record is the *ordering*: threads < LLEX < HTEX ≤ EXEX and
every Parsl executor beats the IPP and Dask baselines, as in the paper.
"""

import pytest

from repro.baselines import DaskDistributedLikeExecutor, FireWorksLikeExecutor, IPyParallelLikeExecutor
from repro.executors import (
    ExtremeScaleExecutor,
    HighThroughputExecutor,
    LowLatencyExecutor,
    ThreadPoolExecutor,
)
from repro.simulation import latency_summary

from conftest import measure_sequential_latency, noop, print_table

#: Paper means (ms) for the EXPERIMENTS.md comparison.
PAPER_FIG3_MS = {"threads": 1.04, "llex": 3.47, "htex": 6.87, "exex": 9.83, "ipp": 11.72, "dask": 16.19}

#: Sequential tasks measured per framework (paper: 1000; reduced for wall time).
N_TASKS = 100

_RESULTS = {}


def _make_executor(name: str):
    if name == "threads":
        return ThreadPoolExecutor(label="threads", max_threads=1)
    if name == "llex":
        return LowLatencyExecutor(label="llex", internal_workers=1)
    if name == "htex":
        return HighThroughputExecutor(label="htex", workers_per_node=1, internal_managers=1)
    if name == "exex":
        return ExtremeScaleExecutor(label="exex", ranks_per_node=2, internal_pools=1)
    if name == "ipp":
        return IPyParallelLikeExecutor(engines=1)
    if name == "dask":
        return DaskDistributedLikeExecutor(workers=1)
    if name == "fireworks":
        return FireWorksLikeExecutor(workers=1)
    raise ValueError(name)


@pytest.mark.parametrize("framework", ["threads", "llex", "htex", "exex", "ipp", "dask", "fireworks"])
def test_fig3_single_task_latency(benchmark, framework, quiet_logging):
    """Benchmark one sequential no-op round trip per framework (the Fig. 3 quantity)."""
    executor = _make_executor(framework)
    executor.start()
    import time

    deadline = time.time() + 15
    while getattr(executor, "connected_workers", 1) < 1 and time.time() < deadline:
        time.sleep(0.05)
    try:
        # Warm up, then record the full distribution for the summary table.
        executor.submit(noop, {}).result(timeout=60)
        n_tasks = 20 if framework == "fireworks" else N_TASKS
        stats = measure_sequential_latency(executor.submit, n_tasks)
        _RESULTS[framework] = stats

        benchmark.pedantic(
            lambda: executor.submit(noop, {}).result(timeout=60),
            rounds=10 if framework != "fireworks" else 3,
            iterations=1,
        )
    finally:
        executor.shutdown()


def test_fig3_dfk_round_trip(benchmark, tmp_path, quiet_logging):
    """The full submit→AppFuture round trip through the DataFlowKernel (task
    registration, dependency wiring, dispatch, completion callbacks) over the
    thread pool, so kernel overhead is tracked next to bare executor latency."""
    from repro.config.config import Config
    from repro.core.dflow import DataFlowKernel

    cfg = Config(
        executors=[ThreadPoolExecutor(label="threads", max_threads=1)],
        run_dir=str(tmp_path),
        strategy="none",
    )
    dfk = DataFlowKernel(cfg)

    def dfk_submit(func, _resource_spec):
        # Memoization off per task: identical no-op calls must traverse the
        # whole kernel+executor path, not short-circuit via the memo table.
        return dfk.submit(func, app_args=(), cache=False)

    try:
        dfk_submit(noop, {}).result(timeout=60)  # warm-up
        stats = measure_sequential_latency(dfk_submit, N_TASKS)
        _RESULTS["dfk"] = stats
        benchmark.pedantic(
            lambda: dfk_submit(noop, {}).result(timeout=60), rounds=10, iterations=1
        )
    finally:
        dfk.cleanup()


def test_fig3_summary_and_ordering(benchmark, quiet_logging):
    """Print measured-vs-paper table and assert the paper's latency ordering."""
    modelled = benchmark(latency_summary, ["threads", "llex", "htex", "exex", "ipp", "dask"])
    rows = []
    for name in ["threads", "dfk", "llex", "htex", "exex", "ipp", "dask", "fireworks"]:
        measured = _RESULTS.get(name, {})
        rows.append(
            [
                name,
                f"{measured.get('mean_ms', float('nan')):.2f}" if measured else "-",
                f"{measured.get('p95_ms', float('nan')):.2f}" if measured else "-",
                f"{modelled[name]['mean_ms']:.2f}" if name in modelled else "-",
                PAPER_FIG3_MS.get(name, "-"),
            ]
        )
    print_table(
        "Figure 3 — single-task latency (ms)",
        ["framework", "measured mean", "measured p95", "model (Midway)", "paper mean"],
        rows,
    )

    if all(k in _RESULTS for k in ("threads", "llex", "htex")):
        assert _RESULTS["threads"]["mean_ms"] < _RESULTS["llex"]["mean_ms"]
        assert _RESULTS["llex"]["mean_ms"] < _RESULTS["htex"]["mean_ms"]
    if "ipp" in _RESULTS and "llex" in _RESULTS:
        assert _RESULTS["llex"]["mean_ms"] < _RESULTS["ipp"]["mean_ms"]
    # Modelled (paper-scale) ordering must reproduce Fig. 3 exactly.
    ordered = ["threads", "llex", "htex", "exex", "ipp", "dask"]
    model_means = [modelled[n]["mean_ms"] for n in ordered]
    assert model_means == sorted(model_means)
