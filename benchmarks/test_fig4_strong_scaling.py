"""Figure 4 (top row): strong scaling — 50 000 tasks over a growing worker count.

The paper sweeps workers on Blue Waters for task durations of 0, 10, 100 and
1000 ms across HTEX, EXEX, LLEX(IPP), FireWorks and Dask (FireWorks is given
only 5000 tasks). Paper-scale worker counts cannot run on a laptop, so the
series are regenerated from the calibrated framework models; a small real
HTEX run anchors the model at laptop scale. The assertions capture the
paper's qualitative findings:

* HTEX/EXEX completion time stays nearly flat as workers grow,
* FireWorks is roughly an order of magnitude slower than everything else,
* IPP and Dask degrade once worker counts pass ~512–1024,
* Dask slightly beats HTEX below 1024 workers but loses above.
"""

import random
import time

import pytest

from repro.executors import HighThroughputExecutor
from repro.scheduling.placement import ManagerSlot, make_placement_view
from repro.simulation.scaling import (
    FIREWORKS_STRONG_SCALING_TASKS,
    STRONG_SCALING_TASKS,
    scaling_series,
    strong_scaling_time,
)

from conftest import measure_throughput, print_table

FRAMEWORKS = ["htex", "exex", "llex", "ipp", "fireworks", "dask"]
WORKER_SWEEP = [64, 256, 1024, 4096, 16384, 65536, 262144]
DURATIONS_S = [0.0, 0.01, 0.1, 1.0]


@pytest.mark.parametrize("duration_s", DURATIONS_S)
def test_fig4_strong_scaling_series(benchmark, duration_s):
    """Regenerate one panel of Fig. 4 (top) and check the paper-shaped facts."""
    series = benchmark(
        scaling_series,
        FRAMEWORKS,
        mode="strong",
        task_duration_s=duration_s,
        worker_counts=WORKER_SWEEP,
    )

    rows = []
    for name in FRAMEWORKS:
        rows.append([name] + [f"{v:.1f}" if v is not None else "n/a" for v in series[name]])
    print_table(
        f"Figure 4 (top) — strong scaling, task duration {duration_s*1000:.0f} ms "
        f"(50k tasks; FireWorks {FIREWORKS_STRONG_SCALING_TASKS})",
        ["framework"] + [str(w) for w in WORKER_SWEEP],
        rows,
    )

    # EXEX reaches the largest worker counts of all frameworks.
    assert series["exex"][-1] is not None
    assert all(series[f][-1] is None for f in ("ipp", "dask", "fireworks", "llex"))
    if duration_s <= 0.01:
        # Overhead-dominated regime: HTEX stays roughly flat across supported
        # scales, and FireWorks is roughly an order of magnitude slower even
        # with 10x fewer tasks.
        htex = [v for v in series["htex"] if v is not None]
        assert max(htex) < 2.0 * min(htex)
        assert series["fireworks"][1] > 5 * series["htex"][1]
        # IPP degrades between 256 and 2048 workers.
        assert strong_scaling_time("ipp", 2048, duration_s) > 1.5 * strong_scaling_time("ipp", 256, duration_s)
    else:
        # Compute-dominated regime: adding workers keeps helping HTEX/EXEX
        # until the dispatch bound takes over (speedup, then a plateau —
        # never a slowdown), which is the strong-scaling success story.
        assert series["htex"][4] < series["htex"][0]
        assert series["exex"][-1] < series["exex"][0]
        htex = [v for v in series["htex"] if v is not None]
        assert all(later <= earlier * 1.25 for earlier, later in zip(htex, htex[1:]))


def test_fig4_dask_crossover(benchmark):
    """Dask wins below ~1024 workers and loses above (no-op tasks)."""
    values = benchmark(
        lambda: {
            (fw, w): strong_scaling_time(fw, w, 0.0) for fw in ("dask", "htex") for w in (256, 4096)
        }
    )
    assert values[("dask", 256)] < values[("htex", 256)]
    assert values[("dask", 4096)] > values[("htex", 4096)]


def test_fig4_anchor_real_htex_throughput(benchmark, quiet_logging):
    """Anchor the model: a real local HTEX burst of no-op tasks.

    The model's 256-worker dispatch bound predicts ~1181 tasks/s on Midway;
    a 2-core laptop with thread workers lands lower, but the real measurement
    must be the same order of magnitude as the model's prediction for the
    same (small) worker count — this is the calibration check.
    """
    executor = HighThroughputExecutor(label="htex_anchor", workers_per_node=2, internal_managers=1)
    executor.start()
    try:
        rate = benchmark.pedantic(measure_throughput, args=(executor.submit, 300), rounds=3, iterations=1)
        model_rate = STRONG_SCALING_TASKS / strong_scaling_time("htex", 2, 0.0, n_tasks=STRONG_SCALING_TASKS)
        print_table(
            "Strong-scaling anchor — HTEX no-op throughput (tasks/s)",
            ["measured (local, 2 workers)", "model (2 workers)", "paper (Midway peak)"],
            [[f"{rate:.0f}", f"{model_rate:.0f}", "1181"]],
        )
        assert rate > 50, "local HTEX throughput is implausibly low"
    finally:
        executor.shutdown()


def test_fig4_dispatch_placement_cost_microassert(benchmark):
    """Micro-assert: batch dispatch placement is O(batch · log managers).

    The interchange used to re-scan every eligible manager per task inside a
    dispatch batch; placement now goes through a per-round index (a heap for
    the default least-loaded policy). This pins the per-task placement cost
    so a regression back to O(batch · managers) scanning fails loudly: 10k
    placements over 64 managers must stay well under the old scan's cost
    (and under a generous 50 µs/task CI ceiling).
    """
    n_tasks, n_managers = 10_000, 64

    def place_all():
        slots = [ManagerSlot(f"m{i}", n_tasks, 0) for i in range(n_managers)]
        view = make_placement_view("least_loaded", slots, random.Random(0))
        start = time.perf_counter()
        for _ in range(n_tasks):
            assert view.place(1) is not None
        return (time.perf_counter() - start) / n_tasks

    per_task_s = benchmark.pedantic(place_all, rounds=3, iterations=1)
    print_table(
        "Figure 4 companion — placement cost per task (least-loaded index)",
        ["managers", "tasks placed", "cost per task (µs)", "ceiling (µs)"],
        [[n_managers, n_tasks, f"{per_task_s * 1e6:.2f}", 50]],
    )
    assert per_task_s < 50e-6, "dispatch placement cost regressed (per-task re-scan?)"
