"""Figure 4 (bottom row): weak scaling — 10 tasks per worker.

The paper's weak-scaling runs hold the per-worker workload fixed (10 tasks
per worker) while growing the worker count, for task durations of 0, 10, 100
and 1000 ms. Ideal weak scaling keeps completion time constant; the paper
observes FireWorks departing from that around 32 workers, IPP around 256,
and Dask/HTEX/EXEX around 1024.
"""

import pytest

from repro.simulation.scaling import (
    WEAK_SCALING_TASKS_PER_WORKER,
    scaling_series,
    sublinear_onset_workers,
    weak_scaling_time,
)

from conftest import print_table

FRAMEWORKS = ["htex", "exex", "llex", "ipp", "fireworks", "dask"]
WORKER_SWEEP = [32, 128, 512, 2048, 8192, 65536, 262144]
DURATIONS_S = [0.0, 0.01, 0.1, 1.0]


@pytest.mark.parametrize("duration_s", DURATIONS_S)
def test_fig4_weak_scaling_series(benchmark, duration_s):
    series = benchmark(
        scaling_series,
        FRAMEWORKS,
        mode="weak",
        task_duration_s=duration_s,
        worker_counts=WORKER_SWEEP,
        tasks_per_worker=WEAK_SCALING_TASKS_PER_WORKER,
    )
    rows = [
        [name] + [f"{v:.1f}" if v is not None else "n/a" for v in series[name]]
        for name in FRAMEWORKS
    ]
    print_table(
        f"Figure 4 (bottom) — weak scaling, 10 tasks/worker, duration {duration_s*1000:.0f} ms",
        ["framework"] + [str(w) for w in WORKER_SWEEP],
        rows,
    )

    # Completion time roughly constant at small scale for HTEX/EXEX (the
    # dispatch cost of 10 tasks/worker only becomes visible at thousands of
    # workers for sub-second tasks) ...
    for framework in ("htex", "exex"):
        small = [v for v, w in zip(series[framework], WORKER_SWEEP) if w <= 512]
        assert max(small) < 4.0 * min(small)
    # ... and rising rapidly at the largest scales (sublinear scaling).
    assert series["htex"][-2] > 2 * series["htex"][2]
    # EXEX is the only framework that reaches 262 144 workers.
    assert series["exex"][-1] is not None
    assert series["htex"][-1] is None


def test_fig4_weak_scaling_onset_ordering(benchmark):
    """The order in which frameworks go sublinear matches the paper.

    Paper (§5.2): "FireWorks scales sublinearly from around 32 workers, IPP
    at 256 workers, and Dask distributed, HTEX, and EXEX at 1024 workers."
    """
    onsets = benchmark(
        lambda: {
            name: sublinear_onset_workers(name, task_duration_s=1.0)
            for name in ("fireworks", "ipp", "dask", "htex", "exex")
        }
    )
    print_table(
        "Weak-scaling sublinearity onset (workers, 1 s tasks)",
        ["framework", "onset (model)", "paper"],
        [
            ["fireworks", onsets["fireworks"], "~32"],
            ["ipp", onsets["ipp"], "~256"],
            ["dask", onsets["dask"], "~1024"],
            ["htex", onsets["htex"], "~1024"],
            ["exex", onsets["exex"], "~1024"],
        ],
    )
    assert onsets["fireworks"] <= onsets["ipp"] <= onsets["htex"]
    assert onsets["ipp"] <= onsets["exex"]


def test_fig4_weak_scaling_long_tasks_hide_overhead(benchmark):
    """With 1 s tasks HTEX, EXEX, and Dask stay near-ideal to 512 workers.

    IPP is excluded: the paper places its sublinearity onset around 256
    workers, so by 512 workers its hub already dominates.
    """
    def check():
        results = {}
        for framework in ("htex", "exex", "dask"):
            results[framework] = (
                weak_scaling_time(framework, 32, task_duration_s=1.0),
                weak_scaling_time(framework, 512, task_duration_s=1.0),
            )
        return results

    for framework, (t32, t512) in benchmark(check).items():
        assert t512 < 2.0 * t32, framework
