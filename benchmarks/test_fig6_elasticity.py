"""Figures 5 & 6: elasticity — utilization and makespan with and without scaling.

The paper's four-stage workflow (20×100 s → 1×50 s → 20×100 s → 1×50 s sleep
tasks) on Midway gives 68.15 % utilization and a 301 s makespan without
elasticity, and 84.28 % / 331 s with it — a 23.6 % utilization improvement
for a 9.9 % makespan increase.

The full-scale experiment is regenerated with the elasticity simulation
(seconds of wall time instead of ~10 minutes); ``test_fig6_real_stack_elasticity``
below re-runs the same four-stage shape *on the real stack* — HTEX +
LocalProvider + the block-aware Strategy, with managers in forked worker-pool
processes — at laptop scale, verifying the paper's trade-off (utilization up,
makespan bounded) and that scale-in drains only sufficiently idle blocks.
"""

import os
import time

import pytest

from repro.config.config import Config
from repro.core.dflow import DataFlowKernel
from repro.executors.htex import HighThroughputExecutor
from repro.providers.local import LocalProvider
from repro.simulation.elasticity import ElasticitySimulation, compare_elastic_vs_static, four_stage_workflow

from conftest import fast_scaled, print_table

PAPER = {
    "static": {"utilization": 0.6815, "makespan_s": 301.0},
    "elastic": {"utilization": 0.8428, "makespan_s": 331.0},
}


def test_fig6_full_scale_comparison(benchmark):
    comparison = benchmark(compare_elastic_vs_static)
    rows = []
    for mode in ("static", "elastic"):
        rows.append(
            [
                mode,
                f"{comparison[mode]['utilization']*100:.1f}%",
                f"{PAPER[mode]['utilization']*100:.1f}%",
                f"{comparison[mode]['makespan_s']:.0f}",
                f"{PAPER[mode]['makespan_s']:.0f}",
            ]
        )
    print_table(
        "Figure 6 — elasticity study (simulation vs paper)",
        ["mode", "utilization", "paper", "makespan (s)", "paper"],
        rows,
    )
    static, elastic = comparison["static"], comparison["elastic"]
    # Paper-shaped facts: utilization rises substantially, makespan rises slightly.
    assert static["utilization"] == pytest.approx(PAPER["static"]["utilization"], abs=0.05)
    assert static["makespan_s"] == pytest.approx(PAPER["static"]["makespan_s"], rel=0.05)
    assert elastic["utilization"] > static["utilization"] + 0.08
    assert static["makespan_s"] <= elastic["makespan_s"] <= 1.25 * static["makespan_s"]


def test_fig5_task_lifecycle_records(benchmark):
    """Fig. 6 (bottom) plots per-task queue/execute lifecycles; regenerate the records."""
    result = benchmark.pedantic(lambda: ElasticitySimulation(elastic=True).run(), rounds=1, iterations=1)
    assert len(result.task_records) == sum(len(s) for s in four_stage_workflow())
    waits = [r["started"] - r["queued_at"] for r in result.task_records]
    executes = [r["ended"] - r["started"] for r in result.task_records]
    print_table(
        "Figure 6 (bottom) — task lifecycle summary (elastic run)",
        ["metric", "min", "mean", "max"],
        [
            ["queue wait (s)", f"{min(waits):.1f}", f"{sum(waits)/len(waits):.1f}", f"{max(waits):.1f}"],
            ["execution (s)", f"{min(executes):.1f}", f"{sum(executes)/len(executes):.1f}", f"{max(executes):.1f}"],
        ],
    )
    # Wide-stage tasks run for 100 s, reduce tasks for 50 s.
    assert max(executes) == pytest.approx(100.0, abs=1.0)
    assert min(executes) == pytest.approx(50.0, abs=1.0)


def _run_real_stack_workflow(elastic: bool, workdir: str, width: int, task_s: float, max_idletime: float):
    """One four-stage run (wide → reduce → wide → reduce) on the real stack.

    Returns makespan, worker-sampled utilization, and — for elastic runs —
    the strategy's scaling history plus the final block registry snapshot.
    """
    provider = LocalProvider(
        init_blocks=1 if elastic else 3,
        min_blocks=1,
        max_blocks=3,
        parallelism=1.0,
        script_dir=os.path.join(workdir, "scripts"),
    )
    executor = HighThroughputExecutor(
        label="htex_fig6",
        provider=provider,
        workers_per_node=2,
        heartbeat_period=0.5,
        heartbeat_threshold=30.0,
    )
    config = Config(
        executors=[executor],
        run_dir=os.path.join(workdir, "runinfo"),
        strategy="htex_auto_scale" if elastic else "none",
        strategy_period=0.15,
        max_idletime=max_idletime,
        app_cache=False,
    )
    dfk = DataFlowKernel(config)
    try:
        stages = [width, 1, width, 1]
        start = time.perf_counter()
        busy_seconds = 0.0
        worker_samples = []
        for stage_width in stages:
            # Wide stages run `width` tasks of task_s; reduce stages run one
            # longer task, giving surplus blocks an idle window to drain in.
            durations = [task_s] * stage_width if stage_width > 1 else [task_s * 2.5]
            futures = [dfk.submit(time.sleep, (d,), cache=False) for d in durations]
            while any(not f.done() for f in futures):
                worker_samples.append(executor.connected_workers)
                time.sleep(0.05)
            for f in futures:
                f.result(timeout=60)
            busy_seconds += sum(durations)
        makespan = time.perf_counter() - start
        mean_workers = sum(worker_samples) / max(len(worker_samples), 1)
        utilization = busy_seconds / max(mean_workers * makespan, 1e-9)
        history = list(dfk.strategy.history)
        registry_snapshot = executor.block_registry.snapshot()
        return {
            "makespan_s": makespan,
            "utilization": utilization,
            "mean_workers": mean_workers,
            "history": history,
            "blocks": registry_snapshot,
        }
    finally:
        dfk.cleanup()


def test_fig6_real_stack_elasticity(benchmark, tmp_path, quiet_logging):
    """The elasticity trade-off on the real HTEX + LocalProvider + Strategy stack.

    Scaled down from the paper's 20×100 s stages to laptop scale: the elastic
    run must improve utilization over the static one with a bounded makespan
    increase, and every block the strategy drained must have been idle at
    least ``max_idletime`` (the engine never cancels busy blocks).
    """
    width = fast_scaled(6, 4)
    task_s = fast_scaled(0.6, 0.4)
    max_idletime = 0.4

    def run_both():
        static = _run_real_stack_workflow(False, str(tmp_path / "static"), width, task_s, max_idletime)
        elastic = _run_real_stack_workflow(True, str(tmp_path / "elastic"), width, task_s, max_idletime)
        return {"static": static, "elastic": elastic}

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    static, elastic = results["static"], results["elastic"]
    print_table(
        "Figure 6 — elasticity on the real stack (HTEX + LocalProvider)",
        ["mode", "utilization", "makespan (s)", "mean workers"],
        [
            [m, f"{results[m]['utilization']*100:.1f}%", f"{results[m]['makespan_s']:.1f}",
             f"{results[m]['mean_workers']:.1f}"]
            for m in ("static", "elastic")
        ],
    )
    # Paper-shaped facts at laptop scale: utilization rises, makespan is
    # bounded (block boot latency dominates more here than on Midway).
    assert elastic["utilization"] > static["utilization"]
    assert elastic["makespan_s"] <= 3.0 * static["makespan_s"]
    # The engine actually scaled: out under the wide stages, in during reduces.
    actions = {h["action"] for h in elastic["history"]}
    assert "scale_out" in actions and "scale_in" in actions
    # Scale-in hysteresis: every drained block had been idle >= max_idletime.
    for event in elastic["history"]:
        if event["action"] == "scale_in":
            assert event["idle_s"], "scale-in events must record per-block idle times"
            for idle in event["idle_s"].values():
                assert idle >= max_idletime
    # And no busy block was ever selected: drained blocks settled cleanly.
    drained = [r for r in elastic["blocks"] if r.idle_at_drain is not None]
    assert drained and all(r.idle_at_drain >= max_idletime for r in drained)


def test_fig6_parallelism_ablation(benchmark):
    """Sweep the strategy's parallelism parameter (§4.4): more aggressive scaling
    buys utilization until provisioning delay dominates."""
    def sweep():
        results = {}
        for parallelism in (0.25, 0.5, 1.0):
            run = ElasticitySimulation(elastic=True, parallelism=parallelism).run()
            results[parallelism] = run.summary()
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [p, f"{r['utilization']*100:.1f}%", f"{r['makespan_s']:.0f}"]
        for p, r in sorted(results.items())
    ]
    print_table("Elasticity ablation — strategy parallelism parameter", ["parallelism", "utilization", "makespan (s)"], rows)
    assert results[1.0]["makespan_s"] <= results[0.25]["makespan_s"]
