"""Figures 5 & 6: elasticity — utilization and makespan with and without scaling.

The paper's four-stage workflow (20×100 s → 1×50 s → 20×100 s → 1×50 s sleep
tasks) on Midway gives 68.15 % utilization and a 301 s makespan without
elasticity, and 84.28 % / 331 s with it — a 23.6 % utilization improvement
for a 9.9 % makespan increase.

The full-scale experiment is regenerated with the elasticity simulation
(seconds of wall time instead of ~10 minutes); a scaled-down run on the real
HTEX + LocalProvider + Strategy stack lives in
``examples/elastic_montage.py`` and the elasticity integration test.
"""

import pytest

from repro.simulation.elasticity import ElasticitySimulation, compare_elastic_vs_static, four_stage_workflow

from conftest import print_table

PAPER = {
    "static": {"utilization": 0.6815, "makespan_s": 301.0},
    "elastic": {"utilization": 0.8428, "makespan_s": 331.0},
}


def test_fig6_full_scale_comparison(benchmark):
    comparison = benchmark(compare_elastic_vs_static)
    rows = []
    for mode in ("static", "elastic"):
        rows.append(
            [
                mode,
                f"{comparison[mode]['utilization']*100:.1f}%",
                f"{PAPER[mode]['utilization']*100:.1f}%",
                f"{comparison[mode]['makespan_s']:.0f}",
                f"{PAPER[mode]['makespan_s']:.0f}",
            ]
        )
    print_table(
        "Figure 6 — elasticity study (simulation vs paper)",
        ["mode", "utilization", "paper", "makespan (s)", "paper"],
        rows,
    )
    static, elastic = comparison["static"], comparison["elastic"]
    # Paper-shaped facts: utilization rises substantially, makespan rises slightly.
    assert static["utilization"] == pytest.approx(PAPER["static"]["utilization"], abs=0.05)
    assert static["makespan_s"] == pytest.approx(PAPER["static"]["makespan_s"], rel=0.05)
    assert elastic["utilization"] > static["utilization"] + 0.08
    assert static["makespan_s"] <= elastic["makespan_s"] <= 1.25 * static["makespan_s"]


def test_fig5_task_lifecycle_records(benchmark):
    """Fig. 6 (bottom) plots per-task queue/execute lifecycles; regenerate the records."""
    result = benchmark.pedantic(lambda: ElasticitySimulation(elastic=True).run(), rounds=1, iterations=1)
    assert len(result.task_records) == sum(len(s) for s in four_stage_workflow())
    waits = [r["started"] - r["queued_at"] for r in result.task_records]
    executes = [r["ended"] - r["started"] for r in result.task_records]
    print_table(
        "Figure 6 (bottom) — task lifecycle summary (elastic run)",
        ["metric", "min", "mean", "max"],
        [
            ["queue wait (s)", f"{min(waits):.1f}", f"{sum(waits)/len(waits):.1f}", f"{max(waits):.1f}"],
            ["execution (s)", f"{min(executes):.1f}", f"{sum(executes)/len(executes):.1f}", f"{max(executes):.1f}"],
        ],
    )
    # Wide-stage tasks run for 100 s, reduce tasks for 50 s.
    assert max(executes) == pytest.approx(100.0, abs=1.0)
    assert min(executes) == pytest.approx(50.0, abs=1.0)


def test_fig6_parallelism_ablation(benchmark):
    """Sweep the strategy's parallelism parameter (§4.4): more aggressive scaling
    buys utilization until provisioning delay dominates."""
    def sweep():
        results = {}
        for parallelism in (0.25, 0.5, 1.0):
            run = ElasticitySimulation(elastic=True, parallelism=parallelism).run()
            results[parallelism] = run.summary()
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [p, f"{r['utilization']*100:.1f}%", f"{r['makespan_s']:.0f}"]
        for p, r in sorted(results.items())
    ]
    print_table("Elasticity ablation — strategy parallelism parameter", ["parallelism", "utilization", "makespan (s)"], rows)
    assert results[1.0]["makespan_s"] <= results[0.25]["makespan_s"]
