"""Figure 7 (extension): resource-aware scheduling on the real HTEX stack.

The paper positions the system as serving heterogeneous workloads — short
Python calls next to multi-core applications — and this benchmark regenerates
the two scheduling behaviours that make that mix safe:

* **priority overtaking** — a priority-9 task submitted *behind* a backlog of
  bulk priority-0 tasks must complete within the first 5% of completions
  (the interchange's pending queue is a heap, not a FIFO);
* **bin-packed multi-core placement** — 4-core tasks placed alongside 1-core
  tasks must never push any manager past its advertised slots, asserted from
  the interchange's own core accounting;
* **default-path guard** — with no resource specs, throughput through the
  priority queue and placement index must stay in the fig4 anchor's range.

Run via ``make bench-sched`` to emit ``BENCH_fig7_scheduling.json``.
"""

import threading
import time

import pytest

from repro.executors import HighThroughputExecutor

from conftest import fast_scaled, measure_throughput, print_table

#: The acceptance scenario: one urgent task behind this many bulk tasks.
N_BULK = fast_scaled(500, 120)
#: Per-task busy time keeping a real backlog queued at the interchange.
BULK_TASK_S = 0.004


def bulk_task(duration=BULK_TASK_S):
    time.sleep(duration)
    return "bulk"


def urgent_task():
    return "urgent"


def wait_for(predicate, timeout=30.0, interval=0.05):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def test_fig7_priority_task_overtakes_backlog(benchmark, quiet_logging):
    """A priority-9 task behind N_BULK queued priority-0 tasks finishes early."""
    executor = HighThroughputExecutor(
        label="htex_sched_prio", workers_per_node=2, internal_managers=1, prefetch_capacity=0
    )
    executor.start()
    assert wait_for(lambda: executor.connected_workers >= 2)

    def run():
        completion_order = []
        order_lock = threading.Lock()

        def record(tag):
            def _done(_fut):
                with order_lock:
                    completion_order.append(tag)

            return _done

        bulk_futures = executor.submit_batch(
            [(bulk_task, {}, (), {}) for _ in range(N_BULK)]
        )
        for fut in bulk_futures:
            fut.add_done_callback(record("bulk"))
        # Submitted BEHIND the whole backlog, with high priority.
        urgent = executor.submit(urgent_task, {"priority": 9})
        urgent.add_done_callback(record("urgent"))
        for fut in bulk_futures:
            fut.result(timeout=120)
        urgent.result(timeout=120)
        return completion_order

    try:
        order = benchmark.pedantic(run, rounds=1, iterations=1)
        position = order.index("urgent") + 1
        budget = max(int(0.05 * len(order)), 1)
        print_table(
            "Figure 7a — priority overtaking (1 urgent task behind a bulk backlog)",
            ["bulk tasks", "urgent finished at position", "5% budget"],
            [[N_BULK, position, budget]],
        )
        assert position <= budget, (
            f"priority-9 task completed {position}/{len(order)}; "
            f"must be within the first 5% ({budget})"
        )
    finally:
        executor.shutdown()


def test_fig7_binpack_multicore_no_oversubscription(benchmark, quiet_logging):
    """4-core tasks bin-packed among 1-core tasks never oversubscribe a manager."""
    n_big = fast_scaled(20, 6)
    n_small = fast_scaled(80, 24)
    executor = HighThroughputExecutor(
        label="htex_sched_pack",
        workers_per_node=4,
        internal_managers=2,
        prefetch_capacity=0,
        scheduling_policy="bin_pack",
    )
    executor.start()
    assert wait_for(lambda: executor.connected_workers >= 8)

    def run():
        requests = [(bulk_task, {"cores": 4}, (), {}) for _ in range(n_big)]
        requests += [(bulk_task, {}, (), {}) for _ in range(n_small)]
        futures = executor.submit_batch(requests)
        for fut in futures:
            assert fut.result(timeout=120) == "bulk"
        return executor.interchange.command("scheduling_stats")

    try:
        stats = benchmark.pedantic(run, rounds=1, iterations=1)
        rows = [
            [identity, m["capacity"], m["peak_in_flight_cores"]]
            for identity, m in sorted(stats["managers"].items())
        ]
        print_table(
            f"Figure 7b — bin-packed placement ({n_big}×4-core + {n_small}×1-core tasks)",
            ["manager", "advertised cores", "peak in-flight cores"],
            rows,
        )
        assert stats["oversubscription_events"] == 0
        for identity, m in stats["managers"].items():
            assert m["peak_in_flight_cores"] <= m["capacity"], (
                f"manager {identity} held {m['peak_in_flight_cores']} in-flight cores "
                f"but advertises {m['capacity']}"
            )
        # The 4-core tasks actually exercised whole-manager packing.
        assert any(m["peak_in_flight_cores"] == m["capacity"] for m in stats["managers"].values())
    finally:
        executor.shutdown()


def test_fig7_default_specs_preserve_throughput(benchmark, quiet_logging):
    """No resource specs → the scheduling layer must not tax the fig4 path.

    Same protocol as the fig4 anchor (a burst of no-op tasks through a local
    HTEX): the priority heap and the placement index sit on the dispatch path
    even for default tasks, so this guards the "within noise" acceptance
    criterion at the same order-of-magnitude bar the anchor uses.
    """
    n_tasks = fast_scaled(300, 150)
    executor = HighThroughputExecutor(
        label="htex_sched_default", workers_per_node=2, internal_managers=1
    )
    executor.start()
    assert wait_for(lambda: executor.connected_workers >= 2)
    try:
        rate = benchmark.pedantic(
            measure_throughput, args=(executor.submit, n_tasks), rounds=3, iterations=1
        )
        print_table(
            "Figure 7c — default-path throughput through the scheduling layer",
            ["measured (tasks/s)", "fig4 anchor floor"],
            [[f"{rate:.0f}", "50"]],
        )
        assert rate > 50, "scheduling layer slowed the default dispatch path below the fig4 floor"
    finally:
        executor.shutdown()


@pytest.mark.skipif(N_BULK < 500, reason="full-scale acceptance run only (unset REPRO_BENCH_FAST)")
def test_fig7_acceptance_scale_matches_issue():
    """Documents that the full-mode run uses the 500-task acceptance scenario."""
    assert N_BULK == 500
