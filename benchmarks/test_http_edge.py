"""HTTP/SSE edge benchmark: a 64-client asyncio fleet vs the raw TCP path.

ISSUE 6 acceptance: ≥64 concurrent :class:`AsyncServiceClient` instances —
each holding an open SSE stream and pushing pickled submit→result traffic
through :class:`HttpEdge` — must sustain at least 70% of the throughput of
the raw-TCP :class:`ServiceClient` path against an identically configured
gateway. The executor is the intended bottleneck; HTTP parsing, SSE fan-out
and the edge's single event loop must stay off the critical path.

Run via ``make bench-http`` to emit ``BENCH_http_edge.json``.
"""

import asyncio
import threading
import time

import repro
from repro import Config
from repro.executors import ThreadPoolExecutor
from repro.service import AsyncServiceClient, HttpEdge, ServiceClient, WorkflowGateway

from conftest import fast_scaled, print_table

#: Concurrent asyncio SDK clients (the acceptance floor is 64).
N_HTTP_CLIENTS = 64
#: Concurrent raw-TCP clients for the baseline (the PR-5 bench's shape).
N_TCP_CLIENTS = 8
#: Per-task busy time. Long enough that the 8-thread executor — not
#: transport CPU on a small box — caps throughput for both paths, so the
#: ratio measures edge overhead rather than scheduler noise.
TASK_S = 0.02
#: Total tasks pushed through each transport.
N_TASKS = fast_scaled(640, 160)
#: Acceptance: fraction of raw-TCP throughput the HTTP edge must sustain.
THROUGHPUT_FLOOR = 0.70


def busy_task(duration=TASK_S):
    time.sleep(duration)
    return "done"


def make_dfk(run_dir, max_threads=8):
    return repro.DataFlowKernel(
        Config(
            executors=[ThreadPoolExecutor(label="threads", max_threads=max_threads)],
            run_dir=run_dir,
            strategy="none",
            app_cache=False,
        )
    )


def measure_tcp(tmp_path):
    """Raw-TCP baseline: N_TCP_CLIENTS ServiceClients sharing one gateway."""
    dfk = make_dfk(str(tmp_path / "tcp"))
    gateway = WorkflowGateway(dfk, window=256, max_inflight_per_tenant=256).start()
    clients = [
        ServiceClient(gateway.host, gateway.port, tenant=f"tenant{i}")
        for i in range(N_TCP_CLIENTS)
    ]
    per_client = N_TASKS // N_TCP_CLIENTS
    try:
        futures_by_client = [[] for _ in clients]

        def feed(idx):
            futures_by_client[idx] = [
                clients[idx].submit(busy_task) for _ in range(per_client)
            ]

        start = time.perf_counter()
        feeders = [
            threading.Thread(target=feed, args=(i,)) for i in range(N_TCP_CLIENTS)
        ]
        for t in feeders:
            t.start()
        for t in feeders:
            t.join()
        for futures in futures_by_client:
            for f in futures:
                assert f.result(timeout=120) == "done"
        return (per_client * N_TCP_CLIENTS) / (time.perf_counter() - start)
    finally:
        for c in clients:
            c.close()
        gateway.stop()
        dfk.cleanup()


def measure_http(tmp_path):
    """N_HTTP_CLIENTS AsyncServiceClients, all streaming over SSE."""
    dfk = make_dfk(str(tmp_path / "http"))
    gateway = WorkflowGateway(dfk, window=256, max_inflight_per_tenant=256).start()
    edge = HttpEdge(gateway)
    edge.start()
    per_client = N_TASKS // N_HTTP_CLIENTS
    url = f"http://{edge.host}:{edge.port}"

    async def one_client(i):
        async with AsyncServiceClient(url, tenant=f"tenant{i:02d}") as client:
            handles = [await client.submit(busy_task) for _ in range(per_client)]
            values = await client.gather(*handles)
            assert values == ["done"] * per_client

    async def fleet():
        start = time.perf_counter()
        await asyncio.gather(*(one_client(i) for i in range(N_HTTP_CLIENTS)))
        return (per_client * N_HTTP_CLIENTS) / (time.perf_counter() - start)

    try:
        return asyncio.run(fleet())
    finally:
        edge.stop()
        gateway.stop()
        dfk.cleanup()


def test_http_edge_sustains_70pct_of_raw_tcp(benchmark, quiet_logging, tmp_path):
    """64 SSE-streaming asyncio clients vs 8 raw-TCP clients: ≥70%."""
    tcp_rate = measure_tcp(tmp_path)
    http_rate = benchmark.pedantic(
        lambda: measure_http(tmp_path), rounds=1, iterations=1
    )
    print_table(
        f"HTTP edge throughput — {N_HTTP_CLIENTS} async clients vs "
        f"{N_TCP_CLIENTS} raw-TCP clients ({N_TASKS} tasks of {TASK_S * 1000:.0f} ms)",
        ["raw TCP (tasks/s)", f"HTTP ×{N_HTTP_CLIENTS} (tasks/s)", "ratio", "floor"],
        [[f"{tcp_rate:.0f}", f"{http_rate:.0f}",
          f"{http_rate / tcp_rate:.2f}", THROUGHPUT_FLOOR]],
    )
    assert http_rate >= THROUGHPUT_FLOOR * tcp_rate, (
        f"HTTP edge sustained {http_rate:.0f} tasks/s vs {tcp_rate:.0f} raw TCP "
        f"({http_rate / tcp_rate:.0%}, floor {THROUGHPUT_FLOOR:.0%})"
    )
