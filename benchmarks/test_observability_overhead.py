"""Observability overhead gate: metrics + tracing must cost ≤ 5%.

The tentpole instruments every hop of the submit → execute → deliver
pipeline (registry counters/histograms plus trace-context stamps). All of
it is O(1) appends and integer adds, so its cost must be invisible at the
paper's throughput anchor: no-op tasks through a real in-process HTEX (the
same fabric Fig. 4's laptop-scale anchor runs on), instrumentation on
versus off, interleaved in one process. The gate is

    median(on) >= 0.95 * median(off)   OR   best(on) >= 0.95 * best(off)

Measurement protocol, tuned for noisy CI machines:

* The MonitoringHub is attached in *both* modes — it predates the
  observability plane, so the on/off delta isolates exactly what this
  subsystem added (``metrics_enabled``/``trace_enabled``, including the
  span-row flushes the trace path feeds through the hub).
* One discarded warm-up run per mode absorbs import/thread-spawn costs.
* Rounds alternate mode *and* flip their in-round order, so process-level
  drift (thread churn, allocator growth) cannot systematically punish one
  mode.
* The gate passes if **either** the median-round or the best-round
  comparison is within budget. Round throughput on a shared container is
  bimodal — a round can land 2–3× the typical rate when submit/dispatch
  scheduling happens to produce large batches — so any single statistic
  can be flipped by an unlucky draw (a freak best round for one mode, an
  unlucky median for the other). Requiring noise to fool *two* statistics
  at once makes false failures rare, while a genuine hot-path regression
  shifts the whole distribution and fails both.
* If the gate still fails, extra alternating round pairs are added (up to
  ``MAX_ROUNDS``) before judging; a genuine regression cannot be
  outwaited because more sampling only converges both statistics to their
  true (regressed) values.
"""

from __future__ import annotations

import time

from repro.config.config import Config
from repro.core.dflow import DataFlowKernel
from repro.executors import HighThroughputExecutor
from repro.monitoring.db import InMemoryStore
from repro.monitoring.hub import MonitoringHub
from conftest import fast_scaled, noop, print_table

#: Alternating rounds per mode; the gate compares median and best rounds.
ROUNDS = 5

#: Ceiling on extra rounds added while the gate fails on a noisy machine.
MAX_ROUNDS = 12

#: Maximum throughput the instrumented mode may lose against the median
#: uninstrumented round (the issue's acceptance number).
MAX_OVERHEAD = 0.05


def _median(values):
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def _throughput(run_dir, instrumented: bool, n_tasks: int) -> float:
    """Completed no-op tasks/s through a fresh internal-mode HTEX kernel."""
    cfg = Config(
        executors=[
            HighThroughputExecutor(
                label="htex_obsv",
                workers_per_node=4,
                worker_mode="thread",
                internal_managers=1,
            )
        ],
        run_dir=str(run_dir),
        strategy="none",
        metrics_enabled=instrumented,
        trace_enabled=instrumented,
        monitoring=MonitoringHub(store=InMemoryStore()),
    )
    dfk = DataFlowKernel(cfg)
    try:
        start = time.perf_counter()
        futures = [dfk.submit(noop) for _ in range(n_tasks)]
        for f in futures:
            f.result(timeout=300)
        elapsed = time.perf_counter() - start
    finally:
        dfk.cleanup()
    return n_tasks / elapsed


def test_observability_overhead_under_five_percent(benchmark, tmp_path,
                                                   quiet_logging):
    """Fig. 4 anchor throughput, instrumentation on vs off, gated at 5%."""
    n_tasks = fast_scaled(3000, 1500)
    # One throwaway warm-up run per mode absorbs one-time costs.
    _throughput(tmp_path / "warm_off", False, max(200, n_tasks // 4))
    _throughput(tmp_path / "warm_on", True, max(200, n_tasks // 4))
    tput = {"off": [], "on": []}

    def _run_round(round_idx: int) -> None:
        order = ["off", "on"] if round_idx % 2 == 0 else ["on", "off"]
        for mode in order:
            tput[mode].append(
                _throughput(tmp_path / f"{mode}{round_idx}", mode == "on",
                            n_tasks)
            )

    def _overhead() -> float:
        # The gated quantity: the *smaller* loss of the two statistics —
        # noise must push both outside the budget to fail the gate.
        med = 1.0 - _median(tput["on"]) / _median(tput["off"])
        best = 1.0 - max(tput["on"]) / max(tput["off"])
        return min(med, best)

    for round_idx in range(ROUNDS):
        _run_round(round_idx)
    # Noisy-machine escape hatch: add round pairs until a statistic
    # catches up or the ceiling proves neither ever will.
    while _overhead() > MAX_OVERHEAD and len(tput["on"]) < MAX_ROUNDS:
        _run_round(len(tput["on"]))

    med_off, med_on = _median(tput["off"]), _median(tput["on"])
    overhead = _overhead()
    print_table(
        f"Observability overhead ({n_tasks} no-op tasks, internal HTEX, "
        f"median of {len(tput['on'])})",
        ["instrumentation", "rounds (tasks/s)", "median (tasks/s)", "overhead"],
        [
            ["off", ", ".join(f"{t:,.0f}" for t in tput["off"]),
             f"{med_off:,.0f}", "-"],
            ["metrics + tracing", ", ".join(f"{t:,.0f}" for t in tput["on"]),
             f"{med_on:,.0f}", f"{overhead:+.1%}"],
        ],
    )
    benchmark.extra_info["tput_off_median"] = med_off
    benchmark.extra_info["tput_on_median"] = med_on
    benchmark.extra_info["overhead_fraction"] = overhead

    # Record one instrumented submit as the benchmark quantity proper.
    cfg = Config(
        executors=[
            HighThroughputExecutor(
                label="htex_obsv_b",
                workers_per_node=4,
                worker_mode="thread",
                internal_managers=1,
            )
        ],
        run_dir=str(tmp_path / "bench"),
        strategy="none",
        monitoring=MonitoringHub(store=InMemoryStore()),
    )
    dfk = DataFlowKernel(cfg)
    try:
        benchmark.pedantic(
            lambda: dfk.submit(noop),
            rounds=50,
            iterations=1,
            warmup_rounds=5,
        )
        dfk.wait_for_current_tasks(timeout=120)
    finally:
        dfk.cleanup()

    assert overhead <= MAX_OVERHEAD, (
        f"metrics + tracing cost {overhead:.1%} of throughput "
        f"({med_off:,.0f} -> {med_on:,.0f} tasks/s median); the budget is "
        f"{MAX_OVERHEAD:.0%}"
    )
