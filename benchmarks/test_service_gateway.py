"""Gateway service benchmark: many tenants sharing one DataFlowKernel.

Three acceptance behaviours of the multi-tenant workflow gateway:

* **aggregate throughput** — N≥8 concurrent :class:`ServiceClient` tenants
  pushing submit→result traffic through the gateway must sustain ≥80% of a
  single client submitting straight into an identically configured DFK (the
  executor is the shared bottleneck; the gateway's auth/session/fair-share
  machinery must stay off the critical path);
* **weighted fair share** — a 1:10 weighted tenant pair driving the same
  backlog must observe completions in ~1:10 ratio (within 2×) at the moment
  half the combined work is done, i.e. the deficit-weighted virtual-time
  queue actually shapes service, not just admission order;
* **reconnect-and-resume** — a client whose connection is severed mid-run
  re-attaches to its session and recovers every result, including tasks that
  completed while it was disconnected.

Run via ``make bench-service`` to emit ``BENCH_service_gateway.json``.
"""

import threading
import time

import repro
from repro import Config
from repro.executors import ThreadPoolExecutor
from repro.service import ServiceClient, WorkflowGateway

from conftest import fast_scaled, print_table

#: Concurrent tenants for the throughput scenario (the acceptance floor is 8).
N_CLIENTS = 8
#: Per-task busy time; the executor (not the gateway) must be the bottleneck.
TASK_S = 0.005
#: Total tasks pushed through the gateway in the throughput scenario.
N_TASKS = fast_scaled(1600, 320)
#: Gateway throughput acceptance: fraction of direct-DFK throughput.
THROUGHPUT_FLOOR = 0.80


def busy_task(duration=TASK_S):
    time.sleep(duration)
    return "done"


def make_dfk(run_dir, max_threads=8):
    return repro.DataFlowKernel(
        Config(
            executors=[ThreadPoolExecutor(label="threads", max_threads=max_threads)],
            run_dir=run_dir,
            strategy="none",
            app_cache=False,
        )
    )


def wait_for(predicate, timeout=120.0, interval=0.01):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def test_gateway_throughput_vs_direct_dfk(benchmark, quiet_logging, tmp_path):
    """8 concurrent tenants sustain ≥80% of single-client DFK throughput."""
    # Baseline: one client, straight into the DFK -----------------------
    dfk = make_dfk(str(tmp_path / "direct"))
    try:
        start = time.perf_counter()
        futures = [dfk.submit(busy_task) for _ in range(N_TASKS)]
        for f in futures:
            f.result(timeout=120)
        direct_rate = N_TASKS / (time.perf_counter() - start)
    finally:
        dfk.cleanup()

    # Gateway: the same load split over 8 remote tenants ----------------
    dfk = make_dfk(str(tmp_path / "gateway"))
    gateway = WorkflowGateway(dfk, window=256, max_inflight_per_tenant=256).start()
    clients = [
        ServiceClient(gateway.host, gateway.port, tenant=f"tenant{i}")
        for i in range(N_CLIENTS)
    ]
    per_client = N_TASKS // N_CLIENTS

    def run():
        futures_by_client = [[] for _ in clients]

        def feed(idx):
            client = clients[idx]
            futures_by_client[idx] = [client.submit(busy_task) for _ in range(per_client)]

        start = time.perf_counter()
        feeders = [threading.Thread(target=feed, args=(i,)) for i in range(N_CLIENTS)]
        for t in feeders:
            t.start()
        for t in feeders:
            t.join()
        for futures in futures_by_client:
            for f in futures:
                assert f.result(timeout=120) == "done"
        return (per_client * N_CLIENTS) / (time.perf_counter() - start)

    try:
        gateway_rate = benchmark.pedantic(run, rounds=1, iterations=1)
        stats = gateway.stats()
        assert all(stats[f"tenant{i}"]["completed"] == per_client for i in range(N_CLIENTS))
    finally:
        for c in clients:
            c.close()
        gateway.stop()
        dfk.cleanup()
    print_table(
        f"Gateway throughput — {N_CLIENTS} tenants vs 1 direct client ({N_TASKS} tasks of {TASK_S * 1000:.0f} ms)",
        ["direct (tasks/s)", f"gateway ×{N_CLIENTS} (tasks/s)", "ratio", "floor"],
        [[f"{direct_rate:.0f}", f"{gateway_rate:.0f}", f"{gateway_rate / direct_rate:.2f}", THROUGHPUT_FLOOR]],
    )
    assert gateway_rate >= THROUGHPUT_FLOOR * direct_rate, (
        f"gateway sustained {gateway_rate:.0f} tasks/s vs {direct_rate:.0f} direct "
        f"({gateway_rate / direct_rate:.0%}, floor {THROUGHPUT_FLOOR:.0%})"
    )


def test_gateway_weighted_fair_share(benchmark, quiet_logging, tmp_path):
    """1:10 weighted tenants complete work in ~1:10 ratio (within 2×)."""
    n_each = fast_scaled(240, 120)
    dfk = make_dfk(str(tmp_path / "fair"), max_threads=2)
    gateway = WorkflowGateway(
        dfk,
        window=4,
        max_inflight_per_tenant=2 * n_each,
        tenant_weights={"heavy": 10, "light": 1},
    ).start()
    heavy = ServiceClient(gateway.host, gateway.port, tenant="heavy")
    light = ServiceClient(gateway.host, gateway.port, tenant="light")

    def run():
        futures = [heavy.submit(busy_task, 0.004) for _ in range(n_each)]
        futures += [light.submit(busy_task, 0.004) for _ in range(n_each)]
        # Sample the completion split when half the combined work is done:
        # both tenants are continuously backlogged up to that point.
        assert wait_for(
            lambda: sum(s["completed"] for s in gateway.stats().values()) >= n_each
        )
        snapshot = gateway.stats()
        for f in futures:
            assert f.result(timeout=120) == "done"
        return snapshot

    try:
        snapshot = benchmark.pedantic(run, rounds=1, iterations=1)
    finally:
        heavy.close()
        light.close()
        gateway.stop()
        dfk.cleanup()
    ratio = snapshot["heavy"]["completed"] / max(snapshot["light"]["completed"], 1)
    print_table(
        f"Gateway fair share — 10:1 weights, {n_each} tasks per tenant, 2 workers",
        ["heavy completed", "light completed", "observed ratio", "acceptance band"],
        [[snapshot["heavy"]["completed"], snapshot["light"]["completed"], f"{ratio:.1f}", "5 – 20"]],
    )
    assert 5 <= ratio <= 20, (
        f"10:1 weighted tenants completed at {ratio:.1f}:1 — outside the 2× band"
    )


def test_gateway_client_reconnects_and_recovers(benchmark, quiet_logging, tmp_path):
    """A client severed mid-run resumes its session and recovers all results."""
    n_tasks = fast_scaled(60, 30)
    dfk = make_dfk(str(tmp_path / "resume"), max_threads=2)
    gateway = WorkflowGateway(dfk, session_ttl_s=30.0).start()
    client = ServiceClient(
        gateway.host, gateway.port, tenant="flaky", reconnect_interval=0.05
    )

    def run():
        futures = [client.submit(busy_task, 0.01) for _ in range(n_tasks)]
        # Let some results land, then sever the connection without goodbye
        # (a crash): tasks keep completing while nobody is listening.
        assert wait_for(lambda: gateway.stats()["flaky"]["completed"] >= n_tasks // 6)
        client.drop_connection()
        results = [f.result(timeout=120) for f in futures]
        return results

    try:
        results = benchmark.pedantic(run, rounds=1, iterations=1)
        assert results == ["done"] * n_tasks
        assert client.reconnects >= 1, "the run must actually have resumed a session"
        assert gateway.stats()["flaky"]["completed"] == n_tasks
    finally:
        client.close()
        gateway.stop()
        dfk.cleanup()
    print_table(
        "Gateway reconnect-and-resume",
        ["tasks", "recovered results", "session resumes"],
        [[n_tasks, len(results), client.reconnects]],
    )
