"""Sharded-gateway benchmark: N DFK kernels behind one gateway.

Three acceptance behaviours of the sharded service (the paper's scaling
argument applied to the gateway tier — each DataFlowKernel is a bounded
dispatch/completion pipeline, so capacity must come from adding kernels,
not from pushing one kernel harder):

* **shard scaling** — with per-shard capacity held fixed, 4 shards must
  sustain ≥2.5× the aggregate submit→result throughput of 1 shard under
  identical multi-tenant load (consistent-hash placement plus load-aware
  spillover has to actually spread the work);
* **shard death** — kill one of the shards abruptly mid-run with 32
  connected clients: every client recovers every result (queued and
  in-flight work re-routes to the survivors) and observes **zero duplicate
  deliveries**;
* **gateway death** — kill -9 the whole gateway mid-run over a durable
  SQLite session store, restart it at the same address: 32 clients resume
  their sessions, every acked result stays valid, unfinished work re-runs
  from the write-ahead task log, and again no result arrives twice.

Run via ``make bench-shard`` to emit ``BENCH_shard_scale.json``.
"""

import threading
import time

import repro
from repro import Config
from repro.executors import ThreadPoolExecutor
from repro.service import ServiceClient, WorkflowGateway

from conftest import fast_scaled, print_table

#: Worker threads per shard — held fixed so shards are the capacity axis.
WORKERS_PER_SHARD = 4
#: Tenants driving the scaling scenario (enough to cover a 4-shard ring).
N_TENANTS = 8
#: Per-task busy time for the scaling scenario.
TASK_S = 0.01
#: Total tasks per scaling run.
N_TASKS = fast_scaled(1280, 320)
#: Acceptance: 4 shards must beat 1 shard by at least this factor.
SCALE_FLOOR = 2.5
#: Clients in the two kill scenarios (the acceptance bar is 32).
N_KILL_CLIENTS = 32
#: Tasks per client in the kill scenarios.
KILL_TASKS_EACH = fast_scaled(8, 4)


def busy_task(duration=TASK_S):
    time.sleep(duration)
    return "done"


def make_dfks(run_dir, n_shards):
    return [
        repro.DataFlowKernel(
            Config(
                executors=[
                    ThreadPoolExecutor(
                        label="threads", max_threads=WORKERS_PER_SHARD
                    )
                ],
                run_dir=f"{run_dir}/shard-{i}",
                strategy="none",
                app_cache=False,
            )
        )
        for i in range(n_shards)
    ]


def wait_for(predicate, timeout=120.0, interval=0.01):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def drive_clients(clients, tasks_each, task_s=TASK_S):
    """Feed ``tasks_each`` busy tasks from every client concurrently and
    return the per-client future lists (submission overlaps execution)."""
    futures_by_client = [[] for _ in clients]

    def feed(idx):
        futures_by_client[idx] = [
            clients[idx].submit(busy_task, task_s) for _ in range(tasks_each)
        ]

    feeders = [
        threading.Thread(target=feed, args=(i,)) for i in range(len(clients))
    ]
    for t in feeders:
        t.start()
    for t in feeders:
        t.join()
    return futures_by_client


def run_scaling_round(tmp_path, n_shards):
    """Aggregate submit→result rate for N_TASKS over ``n_shards`` shards."""
    dfks = make_dfks(str(tmp_path / f"scale-{n_shards}"), n_shards)
    gateway = WorkflowGateway(
        dfks, window=256, max_inflight_per_tenant=512,
    ).start()
    clients = [
        ServiceClient(gateway.host, gateway.port, tenant=f"tenant{i}")
        for i in range(N_TENANTS)
    ]
    per_client = N_TASKS // N_TENANTS
    try:
        start = time.perf_counter()
        futures_by_client = drive_clients(clients, per_client)
        for futures in futures_by_client:
            for f in futures:
                assert f.result(timeout=180) == "done"
        rate = (per_client * N_TENANTS) / (time.perf_counter() - start)
        shard_stats = gateway.shard_stats()
    finally:
        for c in clients:
            c.close()
        gateway.stop()
        for dfk in dfks:
            dfk.cleanup()
    return rate, shard_stats


def test_shard_scaling_throughput(benchmark, quiet_logging, tmp_path):
    """4 shards sustain ≥2.5× the aggregate throughput of 1 shard."""
    one_shard_rate, _ = run_scaling_round(tmp_path, 1)

    def run():
        return run_scaling_round(tmp_path, 4)

    four_shard_rate, shard_stats = benchmark.pedantic(run, rounds=1, iterations=1)
    ratio = four_shard_rate / one_shard_rate
    print_table(
        f"Shard scaling — {N_TASKS} tasks of {TASK_S * 1000:.0f} ms over "
        f"{N_TENANTS} tenants, {WORKERS_PER_SHARD} workers/shard",
        ["1 shard (tasks/s)", "4 shards (tasks/s)", "speedup", "floor",
         "per-shard dispatched"],
        [[f"{one_shard_rate:.0f}", f"{four_shard_rate:.0f}", f"{ratio:.2f}x",
          f"{SCALE_FLOOR}x",
          "/".join(str(s["dispatched"]) for s in shard_stats)]],
    )
    # Placement must actually spread the tenants: every shard saw work.
    assert all(s["dispatched"] > 0 for s in shard_stats), (
        f"dead shard in the scaling run: {shard_stats}"
    )
    assert ratio >= SCALE_FLOOR, (
        f"4 shards gave {ratio:.2f}x over 1 shard (floor {SCALE_FLOOR}x)"
    )


def test_shard_kill_recovers_all_results(benchmark, quiet_logging, tmp_path):
    """Kill one of 2 shards mid-run with 32 clients: every result arrives,
    none twice."""
    dfks = make_dfks(str(tmp_path / "shardkill"), 2)
    gateway = WorkflowGateway(
        dfks, window=16, max_inflight_per_tenant=64, session_ttl_s=60.0,
    ).start()
    clients = [
        ServiceClient(gateway.host, gateway.port, tenant=f"tenant{i}")
        for i in range(N_KILL_CLIENTS)
    ]

    def run():
        futures_by_client = drive_clients(clients, KILL_TASKS_EACH, 0.02)
        # Let the run get properly underway, then kill the busier shard.
        assert wait_for(
            lambda: sum(s["completed"] for s in gateway.shard_stats())
            >= N_KILL_CLIENTS
        )
        victim = max(gateway.shards, key=lambda s: s.load()).index
        rerouted = gateway.kill_shard(victim)
        results = [
            f.result(timeout=180)
            for futures in futures_by_client
            for f in futures
        ]
        return results, rerouted, victim

    try:
        results, rerouted, victim = benchmark.pedantic(run, rounds=1, iterations=1)
        assert results == ["done"] * (N_KILL_CLIENTS * KILL_TASKS_EACH)
        duplicates = sum(c.duplicate_results for c in clients)
        assert duplicates == 0, f"{duplicates} duplicate deliveries after shard kill"
    finally:
        for c in clients:
            c.close()
        gateway.stop()
        for dfk in dfks:
            dfk.cleanup()
    print_table(
        f"Shard death — {N_KILL_CLIENTS} clients x {KILL_TASKS_EACH} tasks, "
        "kill 1 of 2 shards mid-run",
        ["killed shard", "tasks re-routed", "results recovered", "duplicates"],
        [[victim, rerouted, len(results), 0]],
    )


def test_gateway_hard_kill_durable_recovery(benchmark, quiet_logging, tmp_path):
    """kill -9 the gateway mid-run over a durable store: 32 clients resume
    and recover everything, exactly once."""
    import sys

    sys.path.insert(0, str(__import__("pathlib").Path(__file__).resolve()
                          .parent.parent / "tests" / "service"))
    from faults import GatewayHarness

    dfks = make_dfks(str(tmp_path / "gwkill"), 2)
    harness = GatewayHarness(
        dfks, store_path=str(tmp_path / "sessions.db"),
        session_ttl_s=120.0, window=16, max_inflight_per_tenant=64,
    ).start()
    clients = [
        ServiceClient(
            "127.0.0.1", harness.gw_port, tenant=f"tenant{i}",
            reconnect_interval=0.05, max_reconnect_attempts=200,
        )
        for i in range(N_KILL_CLIENTS)
    ]

    def run():
        futures_by_client = drive_clients(clients, KILL_TASKS_EACH, 0.02)
        all_futures = [f for futures in futures_by_client for f in futures]
        # Wait until a meaningful prefix of results has been acked/delivered,
        # then kill -9 (abandon un-flushed store writes) and restart.
        assert wait_for(
            lambda: sum(f.done() for f in all_futures) >= N_KILL_CLIENTS
        )
        acked_before = sum(f.done() for f in all_futures)
        harness.restart(hard=True)
        results = [f.result(timeout=180) for f in all_futures]
        return results, acked_before

    try:
        results, acked_before = benchmark.pedantic(run, rounds=1, iterations=1)
        assert results == ["done"] * (N_KILL_CLIENTS * KILL_TASKS_EACH)
        duplicates = sum(c.duplicate_results for c in clients)
        assert duplicates == 0, f"{duplicates} duplicate deliveries after gateway kill"
        resumed = sum(1 for c in clients if c.reconnects >= 1)
        assert resumed == N_KILL_CLIENTS, (
            f"only {resumed}/{N_KILL_CLIENTS} clients resumed after the restart"
        )
    finally:
        for c in clients:
            c.close()
        harness.close()
        for dfk in dfks:
            dfk.cleanup()
    print_table(
        f"Gateway kill -9 + durable restart — {N_KILL_CLIENTS} clients x "
        f"{KILL_TASKS_EACH} tasks, SQLite session store",
        ["acked before kill", "results recovered", "clients resumed", "duplicates"],
        [[acked_before, len(results), N_KILL_CLIENTS, 0]],
    )
