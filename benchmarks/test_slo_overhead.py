"""Live ops plane gate: SLO engine + straggler detector cost ≤ 5%.

Two acceptance behaviours of the gateway's operations plane:

* **overhead** — a synthetic two-tenant run on the Fig. 4 anchor fabric
  (no-op tasks through an in-process internal-mode HTEX, driven through
  the gateway by an ``interactive`` tenant with a declared p99 objective
  and an unobjectived ``batch`` tenant) must lose at most 5% throughput
  against the identical run with the plane's per-completion work removed.
  Everything the plane adds is O(1) per completion — two bucket-count
  increments for the rolling quantiles, one hop-model update — plus a
  1 Hz burn evaluation, so its cost must be invisible at anchor rates.
* **detection quality** — with the hop model trained by a clean phase
  whose arrival rate never outruns service (so queueing cannot mimic
  straggling), polling the live scan continuously must flag *nothing*;
  injected 10×-slow tasks must then each be flagged while in flight, with
  their trace ids, and the SLO engine must raise no alert at any point
  (every task, slow ones included, meets the declared objective).

The overhead protocol mirrors ``test_observability_overhead.py``: one
discarded warm-up per mode, alternating rounds with flipped in-round
order, extra round pairs (up to ``MAX_ROUNDS``) as the noisy-machine
escape hatch, and a gate that passes if **either** the median-round or
the best-round comparison is within budget — round throughput on a
shared container swings far more than the 5% budget and is bimodal
(batching regimes), so any single statistic can be flipped by one
unlucky draw, while a genuine hot-path regression shifts the whole
distribution and fails both statistics at once.

Run via ``make bench-slo`` to emit ``BENCH_slo.json``.
"""

from __future__ import annotations

import threading
import time

import repro
from repro import Config
from repro.executors import HighThroughputExecutor, ThreadPoolExecutor
from repro.service import ServiceClient, WorkflowGateway

from conftest import fast_scaled, noop, print_table

#: Alternating rounds per mode; the gate compares median and best rounds.
ROUNDS = 4

#: Ceiling on extra rounds added while the gate fails on a noisy machine.
MAX_ROUNDS = 10

#: Maximum throughput the ops plane may cost (the issue's acceptance number).
MAX_OVERHEAD = 0.05

#: The two-tenant scenario: one declared objective, one free-running tenant.
TENANT_SLOS = {"interactive": {"p99_ms": 250, "window_s": 60}}


def busy(seconds):
    time.sleep(seconds)
    return "done"


def _median(values):
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


class _InertSlo:
    """The SLO engine with its per-completion and per-tick work removed."""

    def record(self, *_a, **_k):
        pass

    def record_stream(self, *_a, **_k):
        pass

    def evaluate(self, *_a, **_k):
        return []

    def active_alerts(self, *_a, **_k):
        return []


class _InertAnomaly:
    def complete(self, *_a, **_k):
        pass

    def drain(self):
        pass

    def scan(self, *_a, **_k):
        return []


def _two_tenant_throughput(run_dir, instrumented: bool, n_tasks: int) -> float:
    """Completed no-op tasks/s: two gateway tenants over internal HTEX."""
    cfg = Config(
        executors=[
            HighThroughputExecutor(
                label="htex_slo",
                workers_per_node=4,
                worker_mode="thread",
                internal_managers=1,
            )
        ],
        run_dir=str(run_dir),
        strategy="none",
        app_cache=False,
        service_tenant_slos=TENANT_SLOS,
    )
    dfk = repro.DataFlowKernel(cfg)
    gateway = WorkflowGateway(
        dfk, window=256, max_inflight_per_tenant=n_tasks + 8
    ).start()
    if not instrumented:
        # Same gateway, same fabric, the plane's hot path stubbed out: the
        # on/off delta isolates exactly what this subsystem added.
        gateway.slo = _InertSlo()
        gateway.anomaly = _InertAnomaly()
    clients = [
        ServiceClient(gateway.host, gateway.port, tenant=tenant)
        for tenant in ("interactive", "batch")
    ]
    per_client = n_tasks // len(clients)
    futures_by_client = [[] for _ in clients]

    def feed(idx):
        futures_by_client[idx] = [
            clients[idx].submit(noop) for _ in range(per_client)
        ]

    try:
        start = time.perf_counter()
        feeders = [
            threading.Thread(target=feed, args=(i,))
            for i in range(len(clients))
        ]
        for t in feeders:
            t.start()
        for t in feeders:
            t.join()
        for futures in futures_by_client:
            for f in futures:
                f.result(timeout=300)
        elapsed = time.perf_counter() - start
    finally:
        for c in clients:
            c.close()
        gateway.stop()
        dfk.cleanup()
    return per_client * len(clients) / elapsed


def test_slo_plane_overhead_under_five_percent(benchmark, quiet_logging,
                                               tmp_path):
    """Two-tenant Fig. 4 anchor throughput, ops plane on vs off, gated at 5%."""
    n_tasks = fast_scaled(2000, 1200)
    _two_tenant_throughput(tmp_path / "warm_off", False, max(200, n_tasks // 4))
    _two_tenant_throughput(tmp_path / "warm_on", True, max(200, n_tasks // 4))
    tput = {"off": [], "on": []}

    def _run_round(round_idx: int) -> None:
        order = ["off", "on"] if round_idx % 2 == 0 else ["on", "off"]
        for mode in order:
            tput[mode].append(
                _two_tenant_throughput(tmp_path / f"{mode}{round_idx}",
                                       mode == "on", n_tasks)
            )

    def _overhead() -> float:
        # The gated quantity: the *smaller* loss of the two statistics —
        # noise must push both outside the budget to fail the gate.
        med = 1.0 - _median(tput["on"]) / _median(tput["off"])
        best = 1.0 - max(tput["on"]) / max(tput["off"])
        return min(med, best)

    for round_idx in range(ROUNDS):
        _run_round(round_idx)
    while _overhead() > MAX_OVERHEAD and len(tput["on"]) < MAX_ROUNDS:
        _run_round(len(tput["on"]))

    med_off, med_on = _median(tput["off"]), _median(tput["on"])
    overhead = _overhead()
    print_table(
        f"SLO + straggler plane overhead ({n_tasks} no-op tasks, two gateway "
        f"tenants, median of {len(tput['on'])})",
        ["ops plane", "rounds (tasks/s)", "median (tasks/s)", "overhead"],
        [
            ["off", ", ".join(f"{t:,.0f}" for t in tput["off"]),
             f"{med_off:,.0f}", "-"],
            ["slo + stragglers", ", ".join(f"{t:,.0f}" for t in tput["on"]),
             f"{med_on:,.0f}", f"{overhead:+.1%}"],
        ],
    )
    benchmark.extra_info["tput_off_median"] = med_off
    benchmark.extra_info["tput_on_median"] = med_on
    benchmark.extra_info["overhead_fraction"] = overhead

    # Record one instrumented two-tenant submit as the benchmark quantity.
    cfg = Config(
        executors=[ThreadPoolExecutor(label="threads", max_threads=4)],
        run_dir=str(tmp_path / "bench"),
        strategy="none",
        app_cache=False,
        service_tenant_slos=TENANT_SLOS,
    )
    dfk = repro.DataFlowKernel(cfg)
    gateway = WorkflowGateway(dfk).start()
    client = ServiceClient(gateway.host, gateway.port, tenant="interactive")
    try:
        benchmark.pedantic(
            lambda: client.submit(noop),
            rounds=50,
            iterations=1,
            warmup_rounds=5,
        )
        time.sleep(0.2)  # let the tail drain before teardown
    finally:
        client.close()
        gateway.stop()
        dfk.cleanup()

    assert overhead <= MAX_OVERHEAD, (
        f"the SLO + straggler plane cost {overhead:.1%} of throughput "
        f"({med_off:,.0f} -> {med_on:,.0f} tasks/s median); the budget is "
        f"{MAX_OVERHEAD:.0%}"
    )


def test_straggler_detection_quality(benchmark, quiet_logging, tmp_path):
    """Injected 10×-slow tasks are flagged; the clean phase flags nothing."""
    n_clean = fast_scaled(60, 24)
    n_slow = 4
    clean_s, slow_s = 0.06, 0.6  # the issue's 10× injection
    cfg = Config(
        executors=[ThreadPoolExecutor(label="threads", max_threads=4)],
        run_dir=str(tmp_path / "quality"),
        strategy="none",
        app_cache=False,
        # Slow tasks still meet this objective: any alert is a false alarm.
        service_tenant_slos={"interactive": {"p99_ms": 5000, "window_s": 60}},
        service_straggler_min_samples=10,
        service_straggler_min_age_s=0.3,
        service_straggler_factor=3.0,
    )
    dfk = repro.DataFlowKernel(cfg)
    gateway = WorkflowGateway(dfk).start()
    client = ServiceClient(gateway.host, gateway.port, tenant="interactive")
    clean_flags, slow_flags, false_alerts = set(), set(), []

    def drain(futures, sink):
        while any(not f.done() for f in futures):
            for row in gateway.live_stragglers():
                sink.add(row["trace_id"])
            false_alerts.extend(gateway.slo.active_alerts())
            time.sleep(0.01)
        for f in futures:
            assert f.result(timeout=60) == "done"

    def run():
        # Clean phase in executor-width waves: arrival never outruns
        # service, so queue wait cannot masquerade as straggling.
        for wave in range(0, n_clean, 4):
            drain([client.submit(busy, clean_s)
                   for _ in range(min(4, n_clean - wave))], clean_flags)
        # Inject phase: every slow task should be caught while in flight.
        slow_futures = [client.submit(busy, slow_s) for _ in range(n_slow)]
        drain(slow_futures, slow_flags)
        # trace_id is populated by the submit ack, so read it after the
        # fact — at submit return it may not have arrived yet.
        return {f.trace_id for f in slow_futures}

    try:
        slow_ids = benchmark.pedantic(run, rounds=1, iterations=1)
    finally:
        client.close()
        gateway.stop()
        dfk.cleanup()

    print_table(
        f"Straggler detection quality ({n_clean} clean + {n_slow} injected "
        f"10× tasks)",
        ["clean flags (want 0)", "injected flagged", "slo false alarms"],
        [[len(clean_flags), f"{len(slow_ids & slow_flags)}/{n_slow}",
          len(false_alerts)]],
    )
    benchmark.extra_info["clean_false_positives"] = len(clean_flags)
    benchmark.extra_info["injected_flagged"] = len(slow_ids & slow_flags)
    benchmark.extra_info["injected_total"] = n_slow

    assert clean_flags == set(), (
        f"clean phase raised false stragglers: {sorted(clean_flags)}"
    )
    assert slow_ids <= slow_flags, (
        f"injected slow tasks escaped detection: {sorted(slow_ids - slow_flags)}"
    )
    assert false_alerts == [], "no tenant breached its objective"
