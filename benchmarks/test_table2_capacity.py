"""Table 2: maximum workers, maximum nodes, and maximum tasks/second per framework.

Paper values (Blue Waters for workers/nodes, Midway for throughput)::

    framework   max workers   max nodes   tasks/s
    IPP              2 048          64        330
    HTEX            65 536       2 048*     1 181
    EXEX           262 144       8 192*     1 176
    FireWorks        1 024          32          4
    Dask             8 192         256      2 617

The worker/node maxima are regenerated from the framework models; the
throughput column is regenerated twice — from the models (paper scale) and
as a *real* burst measurement of this package's executors and baselines at
laptop scale, which preserves the ordering (Dask-like > HTEX ≈ EXEX > IPP >>
FireWorks).
"""

import pytest

from repro.baselines import DaskDistributedLikeExecutor, FireWorksLikeExecutor, IPyParallelLikeExecutor
from repro.executors import ExtremeScaleExecutor, HighThroughputExecutor
from repro.simulation.limits import PAPER_TABLE2, capacity_table

from conftest import measure_throughput, print_table

_MEASURED = {}


def test_table2_capacity_model(benchmark):
    """Regenerate the capacity table from the calibrated models."""
    table = benchmark(capacity_table)
    rows = []
    for name in ("ipp", "htex", "exex", "fireworks", "dask"):
        paper = PAPER_TABLE2[name]
        row = table[name]
        rows.append(
            [
                name,
                row["max_workers"],
                paper["max_workers"],
                row["max_nodes"],
                paper["max_nodes"],
                row["max_tasks_per_s"],
                paper["max_tasks_per_s"],
            ]
        )
    print_table(
        "Table 2 — capacities (model vs paper)",
        ["framework", "workers", "paper", "nodes", "paper", "tasks/s", "paper"],
        rows,
    )
    for name, paper in PAPER_TABLE2.items():
        assert table[name]["max_workers"] == paper["max_workers"]
        assert table[name]["max_nodes"] == paper["max_nodes"]
        assert table[name]["max_tasks_per_s"] == pytest.approx(paper["max_tasks_per_s"], rel=0.15)


def _make(name):
    if name == "htex":
        return HighThroughputExecutor(label="htex_tp", workers_per_node=2, internal_managers=1)
    if name == "exex":
        return ExtremeScaleExecutor(label="exex_tp", ranks_per_node=3, internal_pools=1)
    if name == "ipp":
        return IPyParallelLikeExecutor(engines=2)
    if name == "fireworks":
        return FireWorksLikeExecutor(workers=2)
    if name == "dask":
        return DaskDistributedLikeExecutor(workers=2)
    raise ValueError(name)


@pytest.mark.parametrize("framework", ["htex", "exex", "ipp", "fireworks", "dask"])
def test_table2_local_throughput(benchmark, framework, quiet_logging):
    """Measured no-op throughput of the real local implementations (tasks/s)."""
    executor = _make(framework)
    executor.start()
    import time

    deadline = time.time() + 15
    while getattr(executor, "connected_workers", 1) < 1 and time.time() < deadline:
        time.sleep(0.05)
    try:
        n_tasks = 40 if framework == "fireworks" else 500
        rate = benchmark.pedantic(measure_throughput, args=(executor.submit, n_tasks), rounds=2, iterations=1)
        _MEASURED[framework] = rate
    finally:
        executor.shutdown()


def test_table2_local_throughput_ordering(benchmark, quiet_logging):
    """The measured ordering preserves the paper's Table 2 throughput ordering."""
    rows = benchmark(
        lambda: [
            [name, f"{_MEASURED.get(name, float('nan')):.0f}", PAPER_TABLE2[name]["max_tasks_per_s"]]
            for name in ("dask", "htex", "exex", "ipp", "fireworks")
        ]
    )
    print_table(
        "Table 2 — measured local no-op throughput (tasks/s) vs paper",
        ["framework", "measured (laptop)", "paper (Midway)"],
        rows,
    )
    if all(k in _MEASURED for k in ("htex", "ipp", "fireworks")):
        # The database-bound FireWorks baseline is the slowest locally, as in
        # the paper. HTEX-vs-IPP is not compared in absolute local terms: on
        # a 2-core machine the in-process IPP mini-baseline avoids the socket
        # and serialization costs HTEX pays, whereas at Midway/Blue Waters
        # scale (the model-based half of this table) HTEX's batching wins —
        # which is the paper's actual claim.
        assert _MEASURED["htex"] > _MEASURED["fireworks"]
        assert _MEASURED["ipp"] > _MEASURED["fireworks"]
