"""Repo-root pytest configuration: the per-test timeout watchdog.

``pyproject.toml`` sets a suite-wide ``timeout`` so a hung interchange or
manager thread *fails* CI instead of stalling it. When the ``pytest-timeout``
plugin is installed (the CI images install it) it enforces the limit and this
file stays out of the way. In bare environments without the plugin, the
fallback below registers the same ini option/marker and enforces the limit
with a SIGALRM timer: the alarm interrupts whatever blocking call the main
thread is stuck in (``future.result()``, ``Thread.join``, a socket read) and
raises, failing the test while still letting fixtures clean up.

The fallback is deliberately signal-based (pytest-timeout's "signal" method)
rather than process-killing: it cannot recover a wedged *background* thread,
but every hang mode the suite has exhibited blocks the main thread, and a
recoverable failure beats losing the whole session's report.
"""

from __future__ import annotations

import importlib.util

import pytest

_HAVE_PYTEST_TIMEOUT = importlib.util.find_spec("pytest_timeout") is not None

if not _HAVE_PYTEST_TIMEOUT:
    import signal

    class TestTimeoutError(Exception):
        """Raised in the main thread when a test exceeds its timeout."""

    def pytest_addoption(parser):
        parser.addini("timeout", "per-test timeout in seconds (fallback watchdog)", default="0")
        parser.addini("timeout_method", "ignored by the fallback watchdog", default="signal")

    def pytest_configure(config):
        config.addinivalue_line(
            "markers", "timeout(seconds): override the suite-wide per-test timeout"
        )

    def _timeout_for(item) -> float:
        marker = item.get_closest_marker("timeout")
        if marker is not None and marker.args:
            return float(marker.args[0])
        try:
            return float(item.config.getini("timeout") or 0)
        except (TypeError, ValueError):
            return 0.0

    @pytest.hookimpl(hookwrapper=True)
    def pytest_runtest_protocol(item, nextitem):
        timeout = _timeout_for(item)
        if timeout <= 0 or not hasattr(signal, "SIGALRM"):
            yield
            return

        def _alarm(signum, frame):
            raise TestTimeoutError(f"{item.nodeid} exceeded the {timeout:.0f}s timeout")

        previous = signal.signal(signal.SIGALRM, _alarm)
        signal.setitimer(signal.ITIMER_REAL, timeout)
        try:
            yield
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0)
            signal.signal(signal.SIGALRM, previous)
