"""Cosmology image simulation with task bundling and rebalancing (§2.1, §2.2).

The LSST image-simulation use case builds >10 000 instance catalogs and then
simulates images for 189 sensors per catalog. Task durations depend on how
many objects fall on a sensor, so naive scheduling leaves nodes idle behind a
few heavy sensors ("trailing tasks"). The paper notes the simulation must
group and rebalance tasks into appropriately sized bundles per node, and
that this application-specific queue rewriting is plain Python around Parsl
rather than part of the library (§2.2).

This example reproduces that pattern at laptop scale:

* synthetic catalogs with a heavy-tailed objects-per-sensor distribution,
* a `simulate_bundle` App whose runtime scales with the number of objects,
* two campaign drivers — fixed-size bundles vs. cost-balanced bundles
  (greedy longest-processing-time packing written in ordinary Python),
* a comparison of campaign makespans showing why rebalancing matters.

Run with::

    python examples/cosmology_rebalancing.py [--sensors 96] [--slots 8]
"""

import argparse
import heapq
import os
import random
import tempfile
import time

import repro
from repro import Config, python_app
from repro.executors import HighThroughputExecutor


@python_app(cache=False)
def simulate_bundle(bundle):
    """Simulate one bundle of sensors; cost is proportional to total objects."""
    import math

    checksum = 0.0
    for sensor_id, n_objects in bundle:
        # ~2 microseconds of floating-point work per object keeps the demo fast
        # while preserving the heavy-tail imbalance between bundles.
        for i in range(n_objects):
            checksum += math.sin(sensor_id + i * 1e-3)
    return checksum


def make_catalog(n_sensors, seed=11):
    """Objects per sensor: most sensors are cheap, a few are very expensive.

    The tail is truncated so no single sensor dominates the whole campaign
    (otherwise no bundling strategy could help — the heaviest sensor is a
    lower bound on the makespan either way).
    """
    rng = random.Random(seed)
    return [(sensor, min(int(rng.paretovariate(1.4) * 15000), 200000)) for sensor in range(n_sensors)]


def fixed_bundles(catalog, n_bundles):
    """Naive bundling: contiguous, equal sensor counts per bundle, ignoring cost."""
    bundles = [[] for _ in range(n_bundles)]
    per_bundle = (len(catalog) + n_bundles - 1) // n_bundles
    for index, entry in enumerate(catalog):
        bundles[index // per_bundle].append(entry)
    return bundles


def balanced_bundles(catalog, n_bundles):
    """Greedy longest-processing-time packing on the object counts."""
    heap = [(0, i) for i in range(n_bundles)]
    heapq.heapify(heap)
    bundles = [[] for _ in range(n_bundles)]
    for entry in sorted(catalog, key=lambda e: e[1], reverse=True):
        load, index = heapq.heappop(heap)
        bundles[index].append(entry)
        heapq.heappush(heap, (load + entry[1], index))
    return bundles


def run_campaign(bundles):
    start = time.perf_counter()
    futures = [simulate_bundle(bundle) for bundle in bundles]
    for future in futures:
        future.result()
    return time.perf_counter() - start


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sensors", type=int, default=192)
    parser.add_argument("--slots", type=int, default=8, help="worker slots / bundles per wave")
    args = parser.parse_args()

    workdir = tempfile.mkdtemp(prefix="repro-lsst-")
    # One worker slot per bundle and real worker *processes* (pilot-job mode
    # through the LocalProvider): the campaign runs as a single wave, so the
    # makespan is set by the heaviest bundle — which is exactly what the
    # rebalancing is meant to fix (the "64 tasks for a 64-core node" sizing
    # discussed in §2.1). Process workers also give the CPU-bound simulation
    # real parallelism.
    from repro.providers import LocalProvider

    config = Config(
        executors=[
            HighThroughputExecutor(
                label="htex",
                provider=LocalProvider(init_blocks=1, script_dir=os.path.join(workdir, "scripts")),
                workers_per_node=args.slots,
            )
        ],
        run_dir=os.path.join(workdir, "runinfo"),
        strategy="none",
    )
    repro.load(config)

    catalog = make_catalog(args.sensors)
    total_objects = sum(n for _, n in catalog)
    print(f"sensors: {args.sensors}, total objects: {total_objects}")

    naive_plan = fixed_bundles(catalog, args.slots)
    balanced_plan = balanced_bundles(catalog, args.slots)
    for name, plan in (("fixed", naive_plan), ("balanced", balanced_plan)):
        loads = [sum(n for _, n in bundle) for bundle in plan]
        print(f"{name:8s} bundle loads: max {max(loads)}, min {min(loads)}, imbalance {max(loads)/max(1, sum(loads)//len(loads)):.2f}x")

    naive = run_campaign(naive_plan)
    balanced = run_campaign(balanced_plan)

    print(f"fixed-size bundles   : {naive:.2f} s")
    print(f"balanced bundles     : {balanced:.2f} s")
    print(f"speedup from rebalancing: {naive / balanced:.2f}x")
    repro.clear()


if __name__ == "__main__":
    main()
