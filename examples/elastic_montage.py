"""Elastic execution of a map-reduce-style workflow (§4.4, Figures 5 and 6).

This example runs a scaled-down version of the paper's elasticity workflow —
wide stage → reduce → wide stage → reduce — on the real HTEX + LocalProvider
stack with the block-aware strategy enabled (``htex_auto_scale``: surplus
blocks whose managers report no in-flight work for ``max_idletime`` are
drained block-by-block), and reports worker utilization and makespan with
and without elasticity, mirroring Figure 6.

The full-scale (20 workers × 100 s tasks) version of this experiment is
regenerated analytically by ``benchmarks/test_fig6_elasticity.py``; here the
durations are shrunk so the demonstration finishes in about a minute.

Run with::

    python examples/elastic_montage.py [--width 8] [--task-seconds 2.0]
"""

import argparse
import os
import tempfile
import time

import repro
from repro import Config, python_app
from repro.executors import HighThroughputExecutor
from repro.providers import LocalProvider


@python_app(cache=False)
def stage_task(duration):
    import time as _time

    _time.sleep(duration)
    return duration


def run_workflow(width, task_seconds, elastic, workdir):
    provider = LocalProvider(
        init_blocks=4 if not elastic else 1,
        min_blocks=1,
        max_blocks=4,
        parallelism=1.0,
        script_dir=os.path.join(workdir, "scripts"),
    )
    executor = HighThroughputExecutor(
        label="htex",
        provider=provider,
        workers_per_node=2,
        heartbeat_threshold=20,
    )
    config = Config(
        executors=[executor],
        run_dir=os.path.join(workdir, "runinfo"),
        strategy="htex_auto_scale" if elastic else "none",
        strategy_period=0.5,
        max_idletime=1.0,
    )
    repro.load(config)

    stages = [width, 1, width, 1]
    start = time.perf_counter()
    busy_seconds = 0.0
    worker_samples = []
    for stage_width in stages:
        durations = [task_seconds if stage_width > 1 else task_seconds / 2] * stage_width
        futures = [stage_task(d) for d in durations]
        while any(not f.done() for f in futures):
            worker_samples.append(executor.connected_workers)
            time.sleep(0.25)
        busy_seconds += sum(f.result() for f in futures)
    makespan = time.perf_counter() - start
    # Worker-seconds: average connected workers over the run times the makespan.
    mean_workers = sum(worker_samples) / max(len(worker_samples), 1)
    utilization = busy_seconds / max(mean_workers * makespan, 1e-9)
    repro.clear()
    return {"makespan_s": makespan, "utilization": utilization, "mean_workers": mean_workers}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--width", type=int, default=8)
    parser.add_argument("--task-seconds", type=float, default=2.0)
    args = parser.parse_args()

    workdir = tempfile.mkdtemp(prefix="repro-elastic-")
    for label, elastic in (("static ", False), ("elastic", True)):
        result = run_workflow(args.width, args.task_seconds, elastic, workdir)
        print(
            f"{label}: makespan {result['makespan_s']:6.1f} s   "
            f"utilization {result['utilization']*100:5.1f} %   "
            f"mean workers {result['mean_workers']:.1f}"
        )


if __name__ == "__main__":
    main()
