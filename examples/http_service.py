"""The HTTP/SSE edge: the workflow gateway for clients without pickle.

A tour of `repro.service.HttpEdge` and `AsyncServiceClient` in a single
process (everything rides real HTTP over localhost, so splitting this
across machines only changes the URL):

1. host a DataFlowKernel behind a WorkflowGateway and an HttpEdge,
2. drive it like curl would — raw JSON submits by registered name, status
   polling, and a Server-Sent-Events result stream,
3. resume the stream with Last-Event-ID and receive exactly the unseen
   results,
4. run the asyncio SDK: pickled callables, futures resolved off one SSE
   stream, and automatic recovery when the session disappears.

Run with::

    python examples/http_service.py
"""

import asyncio
import http.client
import json
import os
import tempfile
import time

import repro
from repro import Config
from repro.executors import HighThroughputExecutor
from repro.service import AsyncServiceClient, HttpEdge, WorkflowGateway


def simulate(x, duration=0.01):
    time.sleep(duration)
    return x * x


def http_json(host, port, method, path, body=None, headers=None):
    """What curl does: one request, JSON in, JSON out."""
    conn = http.client.HTTPConnection(host, port, timeout=15)
    conn.request(method, path, json.dumps(body) if body is not None else None,
                 dict(headers or {}))
    resp = conn.getresponse()
    data = resp.read()
    conn.close()
    return resp.status, json.loads(data) if data else {}


def main():
    workdir = tempfile.mkdtemp(prefix="repro-http-")

    # 1. Host: kernel + gateway + HTTP edge ------------------------------
    dfk = repro.load(Config(
        executors=[HighThroughputExecutor(label="htex", workers_per_node=4)],
        run_dir=os.path.join(workdir, "runinfo"),
    ))
    gateway = WorkflowGateway(dfk).start()
    edge = HttpEdge(gateway, registry={"simulate": simulate})
    edge.start()
    print(f"HTTP edge on http://{edge.host}:{edge.port} (gateway {gateway.host}:{gateway.port})")

    # 2. The curl view: submit by registered name, poll, stream ----------
    tenant = {"X-Repro-Tenant": "curl-user"}
    _status, opened = http_json(edge.host, edge.port, "POST", "/v1/session", {}, tenant)
    session = {**tenant,
               "X-Repro-Session": opened["session"],
               "X-Repro-Session-Token": opened["session_token"]}
    print(f"opened session {opened['session']} (max_inflight={opened['max_inflight']})")

    status, accepted = http_json(edge.host, edge.port, "POST", "/v1/tasks",
                                 {"fn": "simulate", "args": [12]}, session)
    print(f"POST /v1/tasks -> {status} task_id={accepted['task_id']}")
    while True:
        _status, polled = http_json(edge.host, edge.port, "GET",
                                    f"/v1/tasks/{accepted['task_id']}", None, session)
        if polled["status"] == "done":
            print(f"GET /v1/tasks/{accepted['task_id']} -> done, value={polled['value']}")
            break
        time.sleep(0.05)

    # 3. The SSE stream, and resuming it with Last-Event-ID --------------
    for i in range(5):
        http_json(edge.host, edge.port, "POST", "/v1/tasks",
                  {"fn": "simulate", "args": [i]}, session)

    def read_events(last_event_id, count):
        conn = http.client.HTTPConnection(edge.host, edge.port, timeout=15)
        conn.request("GET", "/v1/stream", None,
                     {**session, "Last-Event-ID": str(last_event_id)})
        resp = conn.getresponse()
        seen = []
        while len(seen) < count:
            line = resp.fp.readline().decode().rstrip("\r\n")
            if line.startswith("id:"):
                seen.append(int(line[3:].strip()))
        conn.close()
        return seen

    first = read_events(0, 3)           # take the first three events…
    print(f"stream from id 0 delivered ids {first}")
    resumed = read_events(first[-1], 3)  # …then resume from the last one seen
    print(f"stream resumed from id {first[-1]} delivered ids {resumed} "
          "(exactly the unseen suffix)")

    # 4. The asyncio SDK: pickled callables, futures off one stream ------
    async def sdk_tour():
        url = f"http://{edge.host}:{edge.port}"
        async with AsyncServiceClient(url, tenant="asyncio-user") as client:
            handles = [await client.submit(simulate, i) for i in range(10)]
            values = await client.gather(*handles)
            print(f"AsyncServiceClient resolved {len(values)} futures: "
                  f"sum(x*x)={sum(values)}")
            stats = await client.stats()
            print(f"tenant stats: completed={stats.completed} failed={stats.failed}")

    asyncio.run(sdk_tour())

    edge.stop()
    gateway.stop()
    repro.clear()
    print("done.")


if __name__ == "__main__":
    main()
