"""Bag-of-tasks, latency-sensitive ML inference (the DLHub use case, §2.1).

DLHub serves machine-learning models to many researchers: short-duration
inference requests arrive continuously, responses must be low latency, and
the execution model is a bag of independent tasks. The paper's Figure 7
guidance says such interactive, few-node workloads belong on the
LowLatencyExecutor; this example

* trains a small least-squares model (NumPy only),
* publishes it through the simulated object store the way DLHub would hold
  model state,
* serves a stream of inference requests through LLEX, measuring per-request
  latency,
* compares against the ThreadPool executor to show the relative overheads.

Run with::

    python examples/ml_inference_service.py [--requests 200]
"""

import argparse
import os
import pickle
import statistics
import tempfile
import time

import numpy as np

import repro
from repro import Config, python_app
from repro.core.guidelines import recommend_executor
from repro.executors import LowLatencyExecutor, ThreadPoolExecutor


@python_app(executors=["llex"], cache=False)
def infer_llex(model_blob, features):
    import pickle as _pickle

    weights = _pickle.loads(model_blob)
    return float(sum(w * x for w, x in zip(weights, features)))


@python_app(executors=["threads"], cache=False)
def infer_threads(model_blob, features):
    import pickle as _pickle

    weights = _pickle.loads(model_blob)
    return float(sum(w * x for w, x in zip(weights, features)))


def train_model(n_features=8, n_samples=512, seed=7):
    """Fit ridge-free least squares on synthetic data; returns the weight vector."""
    rng = np.random.default_rng(seed)
    true_weights = rng.normal(size=n_features)
    X = rng.normal(size=(n_samples, n_features))
    y = X @ true_weights + 0.01 * rng.normal(size=n_samples)
    weights, *_ = np.linalg.lstsq(X, y, rcond=None)
    return weights


def serve(app, model_blob, n_requests, rng):
    latencies = []
    for _ in range(n_requests):
        features = rng.normal(size=8).tolist()
        start = time.perf_counter()
        app(model_blob, features).result()
        latencies.append(time.perf_counter() - start)
    return latencies


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--requests", type=int, default=200)
    args = parser.parse_args()

    print("executor recommendation:", recommend_executor(nodes=2, task_duration_s=0.005, interactive=True))

    workdir = tempfile.mkdtemp(prefix="repro-dlhub-")
    config = Config(
        executors=[
            LowLatencyExecutor(label="llex", internal_workers=2),
            ThreadPoolExecutor(label="threads", max_threads=2),
        ],
        run_dir=os.path.join(workdir, "runinfo"),
        strategy="none",
    )
    repro.load(config)

    weights = train_model()
    model_blob = pickle.dumps(weights)
    rng = np.random.default_rng(1)

    # Warm both paths before measuring.
    infer_llex(model_blob, [0.0] * 8).result()
    infer_threads(model_blob, [0.0] * 8).result()

    llex_latencies = serve(infer_llex, model_blob, args.requests, rng)
    thread_latencies = serve(infer_threads, model_blob, args.requests, rng)

    def report(name, values):
        print(
            f"{name:8s} mean {statistics.mean(values)*1000:7.2f} ms   "
            f"p50 {statistics.median(values)*1000:7.2f} ms   "
            f"p95 {sorted(values)[int(0.95*len(values))-1]*1000:7.2f} ms"
        )

    print(f"\nper-request latency over {args.requests} requests:")
    report("llex", llex_latencies)
    report("threads", thread_latencies)
    repro.clear()


if __name__ == "__main__":
    main()
