"""Quickstart: hello-world Apps, futures, and dependencies.

This mirrors the minimal examples from §3.1 of the paper: a Python App and a
Bash App, invoked with plain Python call syntax, returning futures, and
composed into a small dependency graph by passing futures between Apps.

Run with::

    python examples/quickstart.py
"""

import os
import tempfile

import repro
from repro import Config, File, bash_app, python_app
from repro.executors import HighThroughputExecutor


# ---------------------------------------------------------------------------
# Apps (the paper's hello1 / hello2 examples, §3.1.1)
# ---------------------------------------------------------------------------

@python_app
def hello1(name):
    return "Hello {}".format(name)


@bash_app
def hello2(name, stdout=None, stderr=None):
    return "echo 'Hello {}'".format(name)


@python_app
def count_words(inputs=None):
    with open(inputs[0].filepath) as fh:
        return len(fh.read().split())


@python_app
def add(a, b):
    return a + b


def main():
    workdir = tempfile.mkdtemp(prefix="repro-quickstart-")
    # Separation of code and configuration (§3.5): the same script would run
    # on a cluster by swapping this Config for one with a SlurmProvider.
    config = Config(
        executors=[HighThroughputExecutor(label="htex", workers_per_node=4)],
        run_dir=os.path.join(workdir, "runinfo"),
    )
    repro.load(config)

    # 1. A Python App: invoking it returns a future immediately.
    future = hello1("World")
    print("python app  :", future.result())

    # 2. A Bash App: the return value is the UNIX exit code; stdout is
    #    redirected to a file we can then consume through a File object.
    greeting_file = File(os.path.join(workdir, "greeting.txt"))
    bash_future = hello2("World", stdout=str(greeting_file))
    print("bash app rc :", bash_future.result())

    # 3. Compositionality (§3.3): passing futures between Apps builds the
    #    dependency graph; no explicit synchronization is needed.
    words = count_words(inputs=[greeting_file])
    print("word count  :", words.result())

    total = add(add(1, 2), add(3, 4))
    print("sum tree    :", total.result())

    # 4. Plain Python around the Apps (loops, comprehensions) still works.
    squares = [add(i, i) for i in range(10)]
    print("fan-out     :", [f.result() for f in squares])

    print("task states :", repro.dfk().task_summary())
    repro.clear()


if __name__ == "__main__":
    main()
