"""Resource-aware scheduling: mixing 1-core and 4-core apps with priorities.

The HPDC'19 paper positions the system as serving heterogeneous workloads —
short Python calls next to multi-core applications. This example shows the
scheduling subsystem keeping such a mix safe:

* ``resource_spec={"cores": 4}`` makes an app occupy four worker slots on
  one manager (bin-packed so managers are never oversubscribed);
* ``priority=`` lets urgent work overtake a queued bulk backlog (the
  interchange's pending queue is a starvation-safe priority heap);
* both keywords work at decorator level (defaults) and at call time
  (per-invocation overrides).

Run with::

    python examples/resource_aware.py
"""

import time

import repro
from repro import Config, bash_app, python_app
from repro.executors import HighThroughputExecutor


# A bulk analysis step: one core, no special priority.
@python_app
def simulate_chunk(chunk_id, duration=0.02):
    time.sleep(duration)
    return f"chunk-{chunk_id}"


# A multi-core solver: four worker slots on a single manager, and a default
# priority so it does not starve behind bulk chunks.
@python_app(resource_spec={"cores": 4}, priority=5)
def solve_dense_block(block_id):
    time.sleep(0.05)  # stands in for a 4-thread numeric kernel
    return f"block-{block_id}"


# A multi-core bash step (e.g. "make -j4"), declared the same way.
@bash_app(resource_spec={"cores": 4})
def archive(tag):
    return f"echo 'archiving {tag} with 4 cores'"


def main():
    config = Config(
        executors=[
            HighThroughputExecutor(
                label="htex",
                workers_per_node=4,
                internal_managers=2,
                scheduling_policy="bin_pack",  # pack 1-core tasks so 4-core tasks fit
            )
        ],
        run_dir="runinfo",
    )
    repro.load(config)

    # A bulk backlog of 1-core chunks...
    chunks = [simulate_chunk(i) for i in range(40)]
    # ...and 4-core work submitted behind it, which the scheduler slots in
    # without ever oversubscribing a manager.
    blocks = [solve_dense_block(i) for i in range(3)]
    tarball = archive("results")

    # An urgent request arrives last but overtakes the queue: call-time
    # priority beats the decorator default.
    urgent = simulate_chunk("urgent", priority=9)

    print("urgent:", urgent.result())
    print("blocks:", [b.result() for b in blocks])
    print("chunks:", len([c.result() for c in chunks]), "done")
    print("archive exit code:", tarball.result())

    stats = repro.dfk().executors["htex"].interchange.command("scheduling_stats")
    for identity, m in stats["managers"].items():
        print(
            f"{identity}: advertises {m['capacity']} cores, "
            f"peak in-flight {m['peak_in_flight_cores']}"
        )
    assert stats["oversubscription_events"] == 0

    repro.clear()


if __name__ == "__main__":
    main()
