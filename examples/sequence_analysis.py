"""Many-task dataflow: a SwiftSeq-style DNA sequence-analysis pipeline (§2.1).

The paper's first motivating use case is DNA sequence analysis: a
computationally- and data-intensive dataflow combining multiple tools
(alignment, quality control, variant calling) over many samples, needing
fault tolerance for long-running steps. This example reproduces that shape
at laptop scale:

* per-sample pipeline: split -> align (bash) -> quality filter -> call variants,
* samples processed concurrently, stages chained by futures and Files,
* retries enabled so a transient tool failure does not kill the campaign,
* a final merge step joining every sample's variants.

Run with::

    python examples/sequence_analysis.py [--samples 6] [--reads 2000]
"""

import argparse
import os
import random
import tempfile

import repro
from repro import Config, File, bash_app, python_app
from repro.executors import HighThroughputExecutor


# ---------------------------------------------------------------------------
# Apps
# ---------------------------------------------------------------------------

@python_app
def generate_sample(sample_id, n_reads, outputs=None, seed=0):
    """Create a synthetic FASTQ-like file of short reads."""
    rng = random.Random(seed + sample_id)
    bases = "ACGT"
    with open(outputs[0].filepath, "w") as fh:
        for read_id in range(n_reads):
            read = "".join(rng.choice(bases) for _ in range(50))
            fh.write(f"@read{read_id}\n{read}\n")
    return n_reads


@bash_app
def align(inputs=None, outputs=None, stdout=None, stderr=None):
    """'Align' reads: a stand-in for bwa/bowtie implemented with coreutils."""
    return "grep -v '^@' {reads} | sort > {aligned}".format(
        reads=inputs[0].filepath, aligned=outputs[0].filepath
    )


@python_app
def quality_filter(min_gc=0.2, max_gc=0.8, inputs=None, outputs=None):
    """Drop reads whose GC content is implausible; return the kept fraction."""
    kept = 0
    total = 0
    with open(inputs[0].filepath) as src, open(outputs[0].filepath, "w") as dst:
        for line in src:
            read = line.strip()
            if not read:
                continue
            total += 1
            gc = (read.count("G") + read.count("C")) / len(read)
            if min_gc <= gc <= max_gc:
                dst.write(read + "\n")
                kept += 1
    return kept / max(total, 1)


@python_app
def call_variants(sample_id, inputs=None):
    """Toy variant caller: report positions where 'AAAA' homopolymers occur."""
    variants = []
    with open(inputs[0].filepath) as fh:
        for read_number, read in enumerate(fh):
            position = read.find("AAAA")
            if position >= 0:
                variants.append((sample_id, read_number, position))
    return variants


@python_app
def merge_variants(inputs=None):
    """Reduce step: combine per-sample variant lists into one call set."""
    merged = []
    for variant_list in inputs:
        merged.extend(variant_list)
    return sorted(merged)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--samples", type=int, default=6)
    parser.add_argument("--reads", type=int, default=2000)
    args = parser.parse_args()

    workdir = tempfile.mkdtemp(prefix="repro-seq-")
    config = Config(
        executors=[HighThroughputExecutor(label="htex", workers_per_node=4)],
        retries=2,               # long campaigns must survive transient tool failures (§2.1)
        run_dir=os.path.join(workdir, "runinfo"),
        checkpoint_mode="dfk_exit",
    )
    repro.load(config)

    per_sample_variants = []
    qualities = []
    for sample_id in range(args.samples):
        raw = File(os.path.join(workdir, f"sample{sample_id}.fastq"))
        aligned = File(os.path.join(workdir, f"sample{sample_id}.aligned.txt"))
        filtered = File(os.path.join(workdir, f"sample{sample_id}.filtered.txt"))

        generated = generate_sample(sample_id, args.reads, outputs=[raw])
        aligned_fut = align(inputs=[generated.outputs[0]], outputs=[aligned])
        quality_fut = quality_filter(inputs=[aligned_fut.outputs[0]], outputs=[filtered])
        variants_fut = call_variants(sample_id, inputs=[quality_fut.outputs[0]])
        qualities.append(quality_fut)
        per_sample_variants.append(variants_fut)

    call_set = merge_variants(inputs=per_sample_variants)

    print(f"samples processed : {args.samples}")
    print(f"mean kept fraction: {sum(q.result() for q in qualities) / args.samples:.3f}")
    print(f"variants called   : {len(call_set.result())}")
    print(f"task states       : {repro.dfk().task_summary()}")
    repro.clear()


if __name__ == "__main__":
    main()
