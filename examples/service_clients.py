"""The workflow gateway service: many tenants sharing one kernel.

A tour of `repro.service` in a single process (the gateway and its clients
communicate over real TCP, so splitting this across terminals or machines
only changes the host/port):

1. host a DataFlowKernel behind a WorkflowGateway,
2. authenticate tenants with TokenStore-scoped tokens,
3. run two weighted tenants side by side and watch fair share shape their
   completions,
4. sever a client mid-run and watch it reconnect, resume its session, and
   recover the results it missed.

Run with::

    python examples/service_clients.py
"""

import os
import tempfile
import time

import repro
from repro import Config, ServiceClient, WorkflowGateway
from repro.auth import TokenStore
from repro.errors import AuthenticationError
from repro.executors import HighThroughputExecutor
from repro.service.protocol import token_scope


# ---------------------------------------------------------------------------
# The tenants' workload: any picklable callable works, exactly like an app.
# ---------------------------------------------------------------------------

def simulate(x, duration=0.01):
    time.sleep(duration)
    return x * x


def main():
    workdir = tempfile.mkdtemp(prefix="repro-service-")

    # 1. Host: one kernel, one gateway ----------------------------------
    dfk = repro.load(Config(
        executors=[HighThroughputExecutor(label="htex", workers_per_node=4)],
        run_dir=os.path.join(workdir, "runinfo"),
        service_tenant_weights={"prod": 10, "dev": 1},   # prod gets 10x the share
        service_window=8,          # small window => fair share, not FIFO, decides
        service_max_inflight_per_tenant=200,
    ))

    # 2. Auth: mint a token for the 'prod' tenant (dev stays open).
    store = TokenStore(path=os.path.join(workdir, "tokens.json"))
    store.login([token_scope("prod")])
    prod_token = store.get_token(token_scope("prod"))

    gateway = WorkflowGateway(dfk, token_store=store).start()
    print(f"gateway serving {dfk.run_id} on {gateway.host}:{gateway.port}")

    # A forged token is rejected at the handshake.
    try:
        ServiceClient(gateway.host, gateway.port, tenant="prod", token="forged")
    except AuthenticationError as exc:
        print(f"forged token rejected: {exc}")

    # 3. Weighted tenants ------------------------------------------------
    prod = ServiceClient(gateway.host, gateway.port, tenant="prod", token=prod_token)
    dev = ServiceClient(gateway.host, gateway.port, tenant="dev")
    n = 120
    prod_futures = [prod.submit(simulate, i) for i in range(n)]
    dev_futures = [dev.submit(simulate, i) for i in range(n)]

    while True:
        stats = gateway.stats()
        done = stats["prod"]["completed"] + stats["dev"]["completed"]
        if done >= n:
            break
        time.sleep(0.02)
    print(
        "at the halfway mark: prod completed "
        f"{stats['prod']['completed']}, dev completed {stats['dev']['completed']} "
        "(~10:1, the configured weights)"
    )
    for f in prod_futures + dev_futures:
        f.result(timeout=60)

    # 4. Reconnect-and-resume -------------------------------------------
    flaky = ServiceClient(
        gateway.host, gateway.port, tenant="dev", reconnect_interval=0.05
    )
    futures = [flaky.submit(simulate, i, 0.02) for i in range(40)]
    time.sleep(0.2)                # some results in, many still in flight
    flaky.drop_connection()        # simulate a network partition / crash
    recovered = [f.result(timeout=60) for f in futures]
    print(
        f"severed mid-run: recovered all {len(recovered)} results after "
        f"{flaky.reconnects} session resume(s)"
    )

    print("admin stats:", dev.stats())

    for client in (prod, dev, flaky):
        client.close()
    gateway.stop()
    repro.clear()
    print("done.")


if __name__ == "__main__":
    main()
