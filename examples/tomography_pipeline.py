"""Near-real-time neuroscience tomography pipeline with remote data staging (§2.1).

The neuroscience use case reconstructs 3-D brain volumes from x-ray
microtomography during a beamline experiment: 2-D slices are analysed to find
the sample centre, a quality model selects the best slices, and a
tomographic reconstruction is produced quickly enough to steer the
experiment. Inputs arrive from the facility's data service, which this
reproduction models with the HTTP staging layer and the simulated object
store.

The example demonstrates:

* remote Files (http://...) passed through ``inputs=[...]`` with transparent
  staging tasks injected into the graph (§4.5),
* a multi-stage dataflow (centre finding → quality scoring → reconstruction),
* monitoring: the run finishes by printing the per-state task counts and the
  workflow summary from the monitoring hub.

Run with::

    python examples/tomography_pipeline.py [--slices 12]
"""

import argparse
import os
import tempfile

import numpy as np

import repro
from repro import Config, File, python_app
from repro.data.object_store import get_default_store
from repro.executors import HighThroughputExecutor
from repro.monitoring import MonitoringHub, format_summary_text


@python_app
def find_center(inputs=None):
    """Estimate the rotation centre of one projection slice."""
    import numpy as _np

    slice_data = _np.loadtxt(inputs[0].filepath)
    column_mass = slice_data.sum(axis=0)
    return float((column_mass * _np.arange(len(column_mass))).sum() / column_mass.sum())


@python_app
def score_quality(inputs=None):
    """Score a slice by contrast (standard deviation of intensities)."""
    import numpy as _np

    return float(_np.loadtxt(inputs[0].filepath).std())


@python_app
def reconstruct(centers, scores, quality_threshold=0.5, inputs=None):
    """Back-project the selected slices into a coarse 3-D volume estimate."""
    import numpy as _np

    selected = [path for path, score in zip(inputs, scores) if score >= quality_threshold]
    if not selected:
        raise RuntimeError("no slices passed the quality threshold")
    volume = None
    for file_obj in selected:
        slice_data = _np.loadtxt(file_obj.filepath)
        volume = slice_data if volume is None else volume + slice_data
    return {
        "slices_used": len(selected),
        "mean_center": float(sum(centers) / len(centers)),
        "volume_mass": float(volume.sum()),
    }


def publish_slices(n_slices, size=64, seed=3):
    """Publish synthetic projection slices to the facility 'data service'."""
    store = get_default_store()
    rng = np.random.default_rng(seed)
    urls = []
    for index in range(n_slices):
        # A bright disc whose centre drifts slightly per slice.
        yy, xx = np.mgrid[0:size, 0:size]
        cx = size / 2 + rng.normal(scale=2.0)
        disc = ((xx - cx) ** 2 + (yy - size / 2) ** 2 < (size / 4) ** 2).astype(float)
        noisy = disc + 0.05 * rng.normal(size=disc.shape)
        text = "\n".join(" ".join(f"{v:.5f}" for v in row) for row in noisy)
        url = f"http://beamline.aps.example/scan42/slice{index:03d}.txt"
        store.put(url, text.encode("utf-8"))
        urls.append(url)
    return urls


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--slices", type=int, default=12)
    args = parser.parse_args()

    workdir = tempfile.mkdtemp(prefix="repro-tomo-")
    hub = MonitoringHub()
    config = Config(
        executors=[HighThroughputExecutor(label="htex", workers_per_node=4)],
        run_dir=os.path.join(workdir, "runinfo"),
        monitoring=hub,
        retries=1,
    )
    repro.load(config)

    urls = publish_slices(args.slices)
    slice_files = [File(url) for url in urls]

    centers = [find_center(inputs=[f]) for f in slice_files]
    scores = [score_quality(inputs=[f]) for f in slice_files]
    volume = reconstruct(centers, scores, quality_threshold=0.1, inputs=slice_files)

    result = volume.result()
    print("reconstruction:", result)
    print("task states   :", repro.dfk().task_summary())
    repro.clear()
    print()
    print(format_summary_text(hub))


if __name__ == "__main__":
    main()
