"""Setuptools entry point.

Kept alongside pyproject.toml so that ``pip install -e .`` works in offline
environments whose setuptools/pip combination cannot build PEP 660 editable
wheels (no ``wheel`` package available).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Parsl: Pervasive Parallel Programming in Python' (HPDC 2019): "
        "app decorators, futures, a dataflow kernel, and scalable executors."
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy"],
    extras_require={
        "test": ["pytest", "pytest-benchmark", "pytest-timeout", "pytest-cov", "hypothesis"],
        "dev": ["pytest", "pytest-benchmark", "pytest-timeout", "pytest-cov", "hypothesis", "ruff"],
    },
)
