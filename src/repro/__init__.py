"""repro: a reproduction of "Parsl: Pervasive Parallel Programming in Python" (HPDC 2019).

The public API mirrors the library described in the paper
(conf_hpdc_BabujiWLKCKLCWF19, Babuji et al.)::

    import repro
    from repro import python_app, bash_app, Config
    from repro.executors import HighThroughputExecutor

    repro.load(Config(executors=[HighThroughputExecutor(workers_per_node=4)]))

    @python_app
    def hello(name):
        return f"Hello {name}"

    print(hello("World").result())
    repro.clear()

Paper provenance of each export:

* :func:`python_app` / :func:`bash_app` / :func:`join_app` — the app
  decorators of §3.1; invoking a decorated function registers a task and
  returns an :class:`AppFuture` immediately.
* :class:`Config` — §3.5's separation of program logic from execution
  configuration; with no arguments it runs everything on a local thread
  pool, so scripts work out of the box.
* :class:`DataFlowKernel` (and :func:`load` / :func:`dfk` / :func:`clear`)
  — §4.1's execution manager: the dynamic task graph, the batched
  submission dispatcher, retries, memoization/checkpointing, and
  elasticity. :func:`load` installs a process-wide kernel the decorators
  resolve against, exactly like ``parsl.load``.
* :class:`AppFuture` / :class:`DataFuture` — §3.3's two future types:
  task futures and output-file futures.
* :class:`File` — §4.5's location-transparent file abstraction.
* :class:`ResourceSpec` — the per-task resource specification (cores,
  memory/walltime hints, priority, executor affinity) threaded by the
  scheduling subsystem from app invocation to worker slots.
* :class:`RetryPolicy` — failure classification and jittered-backoff
  schedule for the kernel's retry machinery; :class:`WorkerPoisonError` is
  the typed failure a task receives once it has been quarantined for
  repeatedly killing its workers (see
  ``docs/architecture/fault-tolerance.md``).
* :func:`wait_for_current_tasks` — barrier over every submitted task.
* :func:`recommend_executor` — §4.4's executor-selection guidelines.
* :class:`WorkflowGateway` / :class:`ServiceClient` — the hosted-service
  layer: many authenticated remote tenants sharing one kernel with weighted
  fair-share admission (see :mod:`repro.service`).

See ``README.md`` for the package-to-paper-section map and
``docs/architecture/dispatch-pipeline.md`` for the dispatch pipeline.
"""

from repro.version import VERSION as __version__

from repro.apps.app import python_app, bash_app, join_app
from repro.config.config import Config
from repro.core.dflow import DataFlowKernel, DataFlowKernelLoader
from repro.core.futures import AppFuture, DataFuture
from repro.core.guidelines import recommend_executor
from repro.core.retry import RetryPolicy
from repro.data.files import File
from repro.errors import ReproException, WorkerPoisonError
from repro.scheduling.spec import ResourceSpec
from repro.service import ServiceClient, WorkflowGateway

#: Load a DataFlowKernel from a Config (module-level convenience, as in Parsl).
load = DataFlowKernelLoader.load
#: Return the currently loaded DataFlowKernel.
dfk = DataFlowKernelLoader.dfk
#: Clean up and forget the currently loaded DataFlowKernel.
clear = DataFlowKernelLoader.clear
#: Block until every currently submitted task reaches a final state.
wait_for_current_tasks = DataFlowKernelLoader.wait_for_current_tasks

__all__ = [
    "__version__",
    "python_app",
    "bash_app",
    "join_app",
    "Config",
    "DataFlowKernel",
    "DataFlowKernelLoader",
    "AppFuture",
    "DataFuture",
    "File",
    "ReproException",
    "ResourceSpec",
    "RetryPolicy",
    "WorkerPoisonError",
    "ServiceClient",
    "WorkflowGateway",
    "recommend_executor",
    "load",
    "dfk",
    "clear",
    "wait_for_current_tasks",
]
