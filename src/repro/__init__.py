"""repro: a reproduction of "Parsl: Pervasive Parallel Programming in Python" (HPDC 2019).

The public API mirrors the library described in the paper::

    import repro
    from repro import python_app, bash_app, Config
    from repro.executors import HighThroughputExecutor

    repro.load(Config(executors=[HighThroughputExecutor(workers_per_node=4)]))

    @python_app
    def hello(name):
        return f"Hello {name}"

    print(hello("World").result())
    repro.clear()
"""

from repro.version import VERSION as __version__

from repro.apps.app import python_app, bash_app, join_app
from repro.config.config import Config
from repro.core.dflow import DataFlowKernel, DataFlowKernelLoader
from repro.core.futures import AppFuture, DataFuture
from repro.core.guidelines import recommend_executor
from repro.data.files import File
from repro.errors import ReproException

#: Load a DataFlowKernel from a Config (module-level convenience, as in Parsl).
load = DataFlowKernelLoader.load
#: Return the currently loaded DataFlowKernel.
dfk = DataFlowKernelLoader.dfk
#: Clean up and forget the currently loaded DataFlowKernel.
clear = DataFlowKernelLoader.clear
#: Block until every currently submitted task reaches a final state.
wait_for_current_tasks = DataFlowKernelLoader.wait_for_current_tasks

__all__ = [
    "__version__",
    "python_app",
    "bash_app",
    "join_app",
    "Config",
    "DataFlowKernel",
    "DataFlowKernelLoader",
    "AppFuture",
    "DataFuture",
    "File",
    "ReproException",
    "recommend_executor",
    "load",
    "dfk",
    "clear",
    "wait_for_current_tasks",
]
