"""App decorators (§3.1.1): the user-facing way to mark functions for parallel execution."""

from repro.apps.app import AppBase, PythonApp, BashApp, python_app, bash_app, join_app

__all__ = ["AppBase", "PythonApp", "BashApp", "python_app", "bash_app", "join_app"]
