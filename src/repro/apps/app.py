"""The ``@python_app`` and ``@bash_app`` decorators (§3.1.1).

Decorating a function registers it as an App: invoking it no longer runs the
body synchronously but instead registers an asynchronous task with the
DataFlowKernel and immediately returns an
:class:`~repro.core.futures.AppFuture`. Apps must be pure functions acting
only on their inputs; passing futures between Apps is what expresses the
dependency graph (§3.3).

Three decorators are provided:

* ``@python_app``  — the body is ordinary Python executed on a worker;
* ``@bash_app``    — the body returns a shell command executed on a worker,
  with optional ``stdout``/``stderr`` redirection keywords;
* ``@join_app``    — the body runs locally and returns a future (or list of
  futures); the App's own future resolves to the joined result. This is the
  "tasks that generate new tasks" pattern from §3.4.
"""

from __future__ import annotations

import functools
import inspect
from typing import Callable, Optional, Sequence, Union

from repro.apps.bash import remote_side_bash_executor
from repro.apps.python import timeout_python_executor


class AppBase:
    """Common machinery for all App kinds.

    Decorator keywords (shared by all three decorators, defaults shown):

    * ``executors="all"`` — labels of the executors this app may run on; the
      DFK routes among healthy candidates, spilling load to the least-loaded
      one (§4.1).
    * ``cache=True`` — enable memoization for this app (§4.6): repeated
      invocations with identical arguments return the recorded result.
    * ``ignore_for_cache=None`` — keyword names excluded from the memo hash.
    * ``resource_spec=None`` — the app's default per-task resource
      specification (a mapping or :class:`~repro.scheduling.spec.ResourceSpec`:
      ``cores``, ``memory_mb``, ``walltime_s``, ``priority``, ``executors``).
    * ``priority=None`` — shorthand for the spec's ``priority`` field.
    * ``data_flow_kernel=None`` — an explicit kernel; defaults to the
      process-wide one installed by :func:`repro.load`.

    ``resource_spec=`` and ``priority=`` may also be passed at *call* time to
    override the decorator defaults per invocation; they are consumed by the
    submission machinery, never forwarded to the app body, and excluded from
    the memo hash (the same inputs at a different priority are still the
    same computation). Exception: a function whose own signature declares
    one of these names keeps receiving it as an ordinary argument — only
    the decorator-level scheduling value applies to such apps.
    """

    def __init__(
        self,
        func: Callable,
        data_flow_kernel=None,
        executors: Union[str, Sequence[str]] = "all",
        cache: bool = True,
        ignore_for_cache: Optional[Sequence[str]] = None,
        resource_spec=None,
        priority: Optional[int] = None,
    ):
        self.func = func
        self.data_flow_kernel = data_flow_kernel
        self.executors = executors
        self.cache = cache
        self.ignore_for_cache = list(ignore_for_cache or [])
        self.resource_spec = resource_spec
        self.priority = priority
        # A function whose own signature declares one of the scheduling
        # keyword names keeps it: stealing `priority=3` from an app that
        # takes a `priority` parameter would silently run the body with its
        # default. Such apps set scheduling behaviour at decorator level.
        try:
            params = inspect.signature(func).parameters
        except (TypeError, ValueError):  # builtins / C callables
            params = {}
        accepts_any_kwarg = any(
            p.kind is inspect.Parameter.VAR_KEYWORD for p in params.values()
        )
        self._own_scheduling_params = {
            name
            for name in ("resource_spec", "priority")
            if name in params or accepts_any_kwarg
        }
        functools.update_wrapper(self, func)

    def _pop_scheduling_kwargs(self, kwargs: dict) -> dict:
        """Split call-time scheduling keywords from the app's own kwargs.

        Names the wrapped function itself declares are left in ``kwargs``
        (see ``__init__``); for those, only the decorator-level value
        applies.
        """
        scheduling = {}
        for name, default in (("resource_spec", self.resource_spec), ("priority", self.priority)):
            if name in self._own_scheduling_params:
                scheduling[name] = default
            else:
                scheduling[name] = kwargs.pop(name, default)
        return scheduling

    # ------------------------------------------------------------------
    def _resolve_dfk(self):
        if self.data_flow_kernel is not None:
            return self.data_flow_kernel
        from repro.core.dflow import DataFlowKernelLoader

        return DataFlowKernelLoader.dfk()

    def __call__(self, *args, **kwargs):
        raise NotImplementedError


class PythonApp(AppBase):
    """An App whose body is pure Python executed asynchronously (§3.1.1).

    Arguments and return values may be any picklable objects (§3.2); the
    body ships to workers through the serialization facade, by value when it
    is interactively defined. An optional ``walltime=<seconds>`` keyword at
    call time bounds execution on the worker.
    """

    def __call__(self, *args, **kwargs):
        dfk = self._resolve_dfk()
        scheduling = self._pop_scheduling_kwargs(kwargs)
        walltime = kwargs.pop("walltime", None)
        if walltime is not None:
            submit_func: Callable = timeout_python_executor
            submit_args: tuple = (self.func, float(walltime), *args)
        else:
            submit_func = self.func
            submit_args = args
        return dfk.submit(
            submit_func,
            app_args=submit_args,
            app_kwargs=kwargs,
            executors=self.executors,
            cache=self.cache,
            func_name=self.func.__name__,
            ignore_for_cache=self.ignore_for_cache,
            **scheduling,
        )


class BashApp(AppBase):
    """An App whose body returns a shell command to execute (§3.1.1).

    The decorated function runs on the *worker* and must return a command
    string; the app's result is the command's exit code. ``stdout=`` /
    ``stderr=`` keywords redirect the streams to files, which downstream
    apps can consume as :class:`~repro.data.files.File` inputs.
    """

    def __call__(self, *args, **kwargs):
        dfk = self._resolve_dfk()
        scheduling = self._pop_scheduling_kwargs(kwargs)
        return dfk.submit(
            remote_side_bash_executor,
            app_args=(self.func, *args),
            app_kwargs=kwargs,
            executors=self.executors,
            cache=self.cache,
            func_name=self.func.__name__,
            ignore_for_cache=self.ignore_for_cache,
            **scheduling,
        )


class JoinApp(AppBase):
    """An App whose body runs locally and returns further futures to wait on.

    This is §3.4's "tasks that generate new tasks" pattern: the body executes
    in the submitting process (executor label ``_dfk_internal``) and must
    return a future or non-empty list of futures; the app's own future
    resolves to the joined result(s).
    """

    def __call__(self, *args, **kwargs):
        dfk = self._resolve_dfk()
        # Join apps run locally, so cores/placement do not apply — but the
        # scheduling keywords are still consumed (never forwarded into the
        # body) and the priority is recorded for monitoring.
        scheduling = self._pop_scheduling_kwargs(kwargs)
        return dfk.submit(
            self.func,
            app_args=args,
            app_kwargs=kwargs,
            executors="_dfk_internal",
            cache=self.cache,
            func_name=self.func.__name__,
            join=True,
            ignore_for_cache=self.ignore_for_cache,
            **scheduling,
        )


def _make_decorator(app_cls):
    def decorator(
        function: Optional[Callable] = None,
        data_flow_kernel=None,
        executors: Union[str, Sequence[str]] = "all",
        cache: bool = True,
        ignore_for_cache: Optional[Sequence[str]] = None,
        resource_spec=None,
        priority: Optional[int] = None,
    ):
        def wrap(func: Callable):
            return app_cls(
                func,
                data_flow_kernel=data_flow_kernel,
                executors=executors,
                cache=cache,
                ignore_for_cache=ignore_for_cache,
                resource_spec=resource_spec,
                priority=priority,
            )

        if function is not None:
            return wrap(function)
        return wrap

    return decorator


#: Decorator for pure-Python Apps.
python_app = _make_decorator(PythonApp)
#: Decorator for shell-command Apps.
bash_app = _make_decorator(BashApp)
#: Decorator for Apps that launch and join further Apps.
join_app = _make_decorator(JoinApp)
