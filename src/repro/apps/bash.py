"""Remote-side execution of Bash Apps.

A ``@bash_app`` function's Python body runs on the worker and must return a
fragment of shell code. That fragment is formatted with the App's arguments,
executed in a sandboxed working directory, and its stdout/stderr optionally
redirected to files named by the ``stdout``/``stderr`` keywords. The value
delivered through the future is the UNIX return code, which indicates only
whether the command succeeded; a non-zero code raises
:class:`~repro.errors.BashExitFailure` instead.
"""

from __future__ import annotations

import os
import subprocess
from typing import Any, Dict, Optional

from repro.errors import AppBadFormatting, AppTimeout, BashAppNoReturn, BashExitFailure


def _open_redirect(spec, mode: str = "w"):
    """Interpret a stdout/stderr specification.

    Accepts a path string, a (path, mode) tuple, or None. Returns an open
    file object or None.
    """
    if spec is None:
        return None
    if isinstance(spec, tuple):
        path, mode = spec
    else:
        path = spec
    path = os.fspath(path)
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    return open(path, mode)


def remote_side_bash_executor(func, *args, **kwargs) -> int:
    """Execute a bash app's command on the worker; returns the exit code (always 0).

    Raises on failure so that the exception (not a silent non-zero integer)
    propagates through the future.
    """
    # Keywords consumed here rather than passed to the user function.
    stdout_spec = kwargs.pop("stdout", None)
    stderr_spec = kwargs.pop("stderr", None)
    walltime: Optional[float] = kwargs.pop("walltime", None)
    app_name = getattr(func, "__name__", "bash_app")

    # The Python body runs here, on the worker, to produce the command line.
    try:
        command = func(*args, **kwargs)
    except IndexError as exc:
        raise AppBadFormatting(f"app {app_name} formatting failed: {exc}") from exc
    if not isinstance(command, str) or not command.strip():
        raise BashAppNoReturn(f"bash app {app_name} must return a non-empty command string")

    # Late formatting: allow '{kwarg}' style placeholders in the returned string.
    format_args: Dict[str, Any] = dict(kwargs)
    try:
        command = command.format(**format_args)
    except (KeyError, IndexError) as exc:
        raise AppBadFormatting(f"app {app_name} command formatting failed: {exc}") from exc

    std_out = _open_redirect(stdout_spec)
    std_err = _open_redirect(stderr_spec)
    try:
        proc = subprocess.run(
            command,
            shell=True,
            stdout=std_out if std_out is not None else subprocess.DEVNULL,
            stderr=std_err if std_err is not None else subprocess.DEVNULL,
            timeout=walltime,
            executable="/bin/bash",
        )
        returncode = proc.returncode
    except subprocess.TimeoutExpired as exc:
        raise AppTimeout(f"bash app {app_name} exceeded walltime of {walltime}s") from exc
    finally:
        if std_out is not None:
            std_out.close()
        if std_err is not None:
            std_err.close()

    if returncode != 0:
        raise BashExitFailure(app_name, returncode)
    return 0
