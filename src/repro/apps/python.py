"""Remote-side helpers for Python Apps."""

from __future__ import annotations

import threading
from typing import Any

from repro.errors import AppTimeout


def timeout_python_executor(func, walltime: float, /, *args, **kwargs) -> Any:
    """Run ``func`` with a wall-clock limit.

    Python has no portable way to interrupt arbitrary code, so the function
    runs on a worker-side thread and the caller gives up (raising
    :class:`~repro.errors.AppTimeout`) when the limit passes. The abandoned
    thread keeps the worker slot busy until it finishes — the same caveat the
    upstream implementation documents for its ``walltime`` keyword.
    """
    result_box = {}

    def _target():
        try:
            result_box["result"] = func(*args, **kwargs)
        except BaseException as exc:  # noqa: BLE001 - forwarded below
            result_box["exception"] = exc

    thread = threading.Thread(target=_target, daemon=True)
    thread.start()
    thread.join(timeout=walltime)
    if thread.is_alive():
        raise AppTimeout(f"python app {getattr(func, '__name__', 'app')} exceeded walltime of {walltime}s")
    if "exception" in result_box:
        raise result_box["exception"]
    return result_box.get("result")
