"""Authentication helpers (§4.6): a Globus-Auth-style native-app token flow, simulated."""

from repro.auth.tokens import TokenStore, NativeAppAuthClient

__all__ = ["TokenStore", "NativeAppAuthClient"]
