"""Token management.

The paper integrates with Globus Auth as a "native app": users authenticate
once (web login or cached tokens) and the stored access tokens are then used
to reach Globus-Auth-enabled services (data transfer, SSH). Without network
access we reproduce the *shape* of that flow:

* :class:`NativeAppAuthClient` issues scoped tokens after a simulated consent
  step,
* :class:`TokenStore` caches tokens on disk (like ``~/.globus``), validates
  them, refreshes expired ones, and is consulted by the SSH channel and the
  Globus staging provider.
"""

from __future__ import annotations

import json
import os
import secrets
import tempfile
import time
from typing import Dict, Optional


class NativeAppAuthClient:
    """Issue access tokens for requested scopes after a (simulated) login."""

    def __init__(self, client_id: str = "repro-native-app", token_lifetime_s: float = 3600.0):
        self.client_id = client_id
        self.token_lifetime_s = token_lifetime_s
        self._consented = False

    def start_flow(self, scopes) -> str:
        """Return the 'authorization URL' the user would visit."""
        self._requested_scopes = list(scopes)
        return f"https://auth.example.org/authorize?client_id={self.client_id}&scopes={'+'.join(self._requested_scopes)}"

    def complete_flow(self, auth_code: str = "ok") -> Dict[str, Dict[str, object]]:
        """Exchange the auth code for per-scope tokens."""
        if not auth_code:
            raise ValueError("empty authorization code")
        self._consented = True
        now = time.time()
        return {
            scope: {
                "access_token": secrets.token_hex(16),
                "expires_at": now + self.token_lifetime_s,
                "scope": scope,
            }
            for scope in getattr(self, "_requested_scopes", [])
        }


class TokenStore:
    """Disk-backed cache of access tokens keyed by resource/scope name."""

    def __init__(self, path: Optional[str] = None):
        self.path = path or os.path.join(tempfile.gettempdir(), "repro-tokens.json")
        self._tokens: Dict[str, Dict[str, object]] = {}
        self._load()

    # ------------------------------------------------------------------
    def _load(self) -> None:
        if os.path.exists(self.path):
            try:
                with open(self.path) as fh:
                    self._tokens = json.load(fh)
            except (OSError, ValueError):
                self._tokens = {}

    def _save(self) -> None:
        with open(self.path, "w") as fh:
            json.dump(self._tokens, fh)

    # ------------------------------------------------------------------
    def store_tokens(self, tokens: Dict[str, Dict[str, object]]) -> None:
        self._tokens.update(tokens)
        self._save()

    def get_token(self, resource: str) -> Optional[str]:
        entry = self._tokens.get(resource)
        if entry is None:
            return None
        if float(entry.get("expires_at", 0)) < time.time():
            return None
        return str(entry["access_token"])

    def has_valid_token(self, resource: str) -> bool:
        return self.get_token(resource) is not None

    def validate(self, resource: str, token: Optional[str]) -> bool:
        """Check a presented token against the cached one for ``resource``."""
        if token is None:
            # No token presented: accept only if no token is required (no entry).
            return resource not in self._tokens
        cached = self.get_token(resource)
        return cached is not None and cached == token

    def refresh(self, resource: str, client: Optional[NativeAppAuthClient] = None) -> str:
        """Issue and cache a fresh token for ``resource``, returning it.

        This is the refresh leg of the native-app flow: when a cached token
        has expired (``get_token`` returns None) callers re-mint one for the
        same scope without a new consent step, exactly like exchanging a
        Globus refresh token. The new entry overwrites the expired one and is
        persisted, so a gateway checking ``validate`` accepts the holder
        again.
        """
        client = client or NativeAppAuthClient()
        client.start_flow([resource])
        self.store_tokens(client.complete_flow("ok"))
        token = self.get_token(resource)
        if token is None:
            raise ValueError(
                f"refresh for {resource!r} produced an already-expired token "
                f"(client lifetime {client.token_lifetime_s}s)"
            )
        return token

    def revoke(self, resource: str) -> None:
        self._tokens.pop(resource, None)
        self._save()

    def clear(self) -> None:
        self._tokens = {}
        try:
            os.remove(self.path)
        except FileNotFoundError:
            pass

    def login(self, scopes, client: Optional[NativeAppAuthClient] = None) -> None:
        """Convenience: run the whole native-app flow and cache the tokens."""
        client = client or NativeAppAuthClient()
        client.start_flow(scopes)
        self.store_tokens(client.complete_flow("ok"))
