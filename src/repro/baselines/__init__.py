"""Baseline frameworks the paper compares against (§5).

The evaluation compares Parsl's executors with IPyParallel, FireWorks, and
Dask distributed. Those systems are not installable here, so this package
contains *functional mini-reimplementations* that reproduce each system's
architectural bottleneck — which is what determines the comparison:

* :mod:`repro.baselines.ipp` — a central hub that round-trips every task
  individually between client, hub, and engines (no batching, no pilot
  managers): IPyParallel's per-task RPC overhead.
* :mod:`repro.baselines.fireworks` — a central LaunchPad database that
  workers poll; every task requires several database operations with
  non-trivial latency: FireWorks' MongoDB bottleneck.
* :mod:`repro.baselines.daskdist` — a central scheduler that makes a
  per-task scheduling decision and holds one connection per worker, with a
  hard cap on connections: Dask distributed's centralized scheduler.

Each baseline exposes the same minimal interface (``start``, ``submit``,
``shutdown``, ``connected_workers``) so the latency/throughput benchmarks can
drive Parsl executors and baselines identically.
"""

from repro.baselines.base import BaselineExecutor
from repro.baselines.ipp import IPyParallelLikeExecutor
from repro.baselines.fireworks import FireWorksLikeExecutor
from repro.baselines.daskdist import DaskDistributedLikeExecutor

__all__ = [
    "BaselineExecutor",
    "IPyParallelLikeExecutor",
    "FireWorksLikeExecutor",
    "DaskDistributedLikeExecutor",
]
