"""Common interface for baseline mini-frameworks."""

from __future__ import annotations

import concurrent.futures as cf
from abc import ABC, abstractmethod
from typing import Any, Callable, Dict


class BaselineExecutor(ABC):
    """The minimal executor surface shared with repro executors for benchmarking."""

    label: str = "baseline"

    @abstractmethod
    def start(self) -> None:
        """Bring up the framework (hub/scheduler/database plus workers)."""

    @abstractmethod
    def submit(self, func: Callable, resource_specification: Dict[str, Any], *args, **kwargs) -> cf.Future:
        """Submit one task; returns a future."""

    @abstractmethod
    def shutdown(self, block: bool = True) -> None:
        """Tear the framework down."""

    @property
    def connected_workers(self) -> int:
        return 0

    def __repr__(self) -> str:
        return f"{type(self).__name__}(label={self.label!r})"
