"""A Dask-distributed-like baseline.

Dask distributed uses a single centralized scheduler process: every worker
holds a connection to it, and every task requires a per-task scheduling
decision on the scheduler's event loop. That makes it very fast for short
tasks on small clusters (the paper measures the highest throughput of all
systems, 2617 tasks/s) but limits it in two ways the paper observes:

* scaling stops around ~8k workers because the scheduler can only maintain a
  limited number of connections,
* per-task scheduler work grows with the number of workers, so completion
  time rises once the worker count passes ~1k.

The mini-reimplementation keeps the centralized scheduler thread with a
per-task decision cost that grows mildly with the number of connected
workers, and enforces a connection cap.
"""

from __future__ import annotations

import concurrent.futures as cf
import collections
import queue
import threading
import time
from typing import Any, Callable, Dict, List, Optional

from repro.baselines.base import BaselineExecutor
from repro.executors.execute_task import execute_task
from repro.serialize import deserialize, pack_apply_message

#: Fixed per-task scheduler cost (seconds): decide placement, update state.
SCHEDULER_TASK_COST_S = 0.0002
#: Additional per-task cost for every 1024 connected workers.
SCHEDULER_PER_WORKER_COST_S = 0.0002
#: Maximum worker connections the scheduler can sustain (paper: ~8192).
MAX_CONNECTIONS = 8192


class _DaskWorker:
    """A worker with its own queue (one connection to the scheduler)."""

    def __init__(self, worker_id: int, results: "queue.Queue"):
        self.worker_id = worker_id
        self.inbox: "queue.Queue" = queue.Queue()
        self.results = results
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._loop, name=f"dask-worker-{worker_id}", daemon=True)

    def start(self) -> None:
        self._thread.start()

    def _loop(self) -> None:
        while not self._stop.is_set():
            try:
                item = self.inbox.get(timeout=0.1)
            except queue.Empty:
                continue
            if item is None:
                break
            task_id, buffer = item
            outcome = execute_task(buffer)
            self.results.put((self.worker_id, task_id, outcome))

    def stop(self) -> None:
        self._stop.set()
        self.inbox.put(None)


class DaskDistributedLikeExecutor(BaselineExecutor):
    """Centralized dynamic scheduler in the style of Dask distributed."""

    label = "dask"

    def __init__(
        self,
        workers: int = 2,
        scheduler_task_cost_s: float = SCHEDULER_TASK_COST_S,
        scheduler_per_worker_cost_s: float = SCHEDULER_PER_WORKER_COST_S,
        max_connections: int = MAX_CONNECTIONS,
    ):
        if workers > max_connections:
            raise ConnectionError(
                f"requested {workers} workers but the scheduler supports at most {max_connections} connections"
            )
        self.worker_count = workers
        self.scheduler_task_cost_s = scheduler_task_cost_s
        self.scheduler_per_worker_cost_s = scheduler_per_worker_cost_s
        self.max_connections = max_connections
        self._workers: List[_DaskWorker] = []
        self._idle: collections.deque = collections.deque()
        self._pending: collections.deque = collections.deque()
        self._futures: Dict[int, cf.Future] = {}
        self._results: "queue.Queue" = queue.Queue()
        self._submissions: "queue.Queue" = queue.Queue()
        self._task_counter = 0
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._scheduler: Optional[threading.Thread] = None
        self._started = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._started:
            return
        for i in range(self.worker_count):
            worker = _DaskWorker(i, self._results)
            worker.start()
            self._workers.append(worker)
            self._idle.append(i)
        self._scheduler = threading.Thread(target=self._scheduler_loop, name="dask-scheduler", daemon=True)
        self._scheduler.start()
        self._started = True

    def _per_task_cost(self) -> float:
        return self.scheduler_task_cost_s + self.scheduler_per_worker_cost_s * (len(self._workers) / 1024.0)

    def submit(self, func: Callable, resource_specification: Dict[str, Any], *args, **kwargs) -> cf.Future:
        if not self._started:
            raise RuntimeError("Dask baseline not started")
        buffer = pack_apply_message(func, args, kwargs)
        future: cf.Future = cf.Future()
        with self._lock:
            task_id = self._task_counter
            self._task_counter += 1
            self._futures[task_id] = future
        self._submissions.put((task_id, buffer))
        return future

    def _scheduler_loop(self) -> None:
        while not self._stop.is_set():
            moved = False
            try:
                item = self._submissions.get(timeout=0.001)
                self._pending.append(item)
                moved = True
            except queue.Empty:
                pass
            while self._pending and self._idle:
                # Per-task dynamic scheduling decision.
                time.sleep(self._per_task_cost())
                worker_id = self._idle.popleft()
                task_id, buffer = self._pending.popleft()
                self._workers[worker_id].inbox.put((task_id, buffer))
                moved = True
            try:
                worker_id, task_id, outcome_buffer = self._results.get(timeout=0.001)
                self._idle.append(worker_id)
                self._complete(task_id, outcome_buffer)
                moved = True
            except queue.Empty:
                pass
            if not moved:
                time.sleep(0.0005)

    def _complete(self, task_id: int, outcome_buffer: bytes) -> None:
        with self._lock:
            future = self._futures.pop(task_id, None)
        if future is None or future.done():
            return
        outcome = deserialize(outcome_buffer)
        if "exception" in outcome:
            future.set_exception(outcome["exception"].e_value)
        else:
            future.set_result(outcome.get("result"))

    def shutdown(self, block: bool = True) -> None:
        self._stop.set()
        for worker in self._workers:
            worker.stop()
        self._started = False

    @property
    def connected_workers(self) -> int:
        return len(self._workers)
