"""A FireWorks-like baseline.

FireWorks stores every task ("firework") in a central MongoDB LaunchPad;
FireWorkers poll the database, check out a task, run it, and write the result
back. Its strength is durability, its weakness is throughput: every task
costs several database round trips, which is why the paper measures it at
~4 tasks/s and an order of magnitude more overhead than the other systems.

The mini-reimplementation uses a SQLite-backed LaunchPad (a real, durable,
centrally locked database) plus per-operation latency standing in for the
network hop to a MongoDB server.
"""

from __future__ import annotations

import concurrent.futures as cf
import os
import sqlite3
import tempfile
import threading
import time
from typing import Any, Callable, Dict, List, Optional

from repro.baselines.base import BaselineExecutor
from repro.executors.execute_task import execute_task
from repro.serialize import deserialize, pack_apply_message

#: Simulated network latency for one LaunchPad (database) operation, seconds.
DB_OP_LATENCY_S = 0.01
#: How often a FireWorker polls the LaunchPad for work, seconds.
POLL_INTERVAL_S = 0.05


class LaunchPad:
    """A central task database (SQLite standing in for MongoDB)."""

    def __init__(self, path: Optional[str] = None, op_latency_s: float = DB_OP_LATENCY_S):
        self.path = path or os.path.join(tempfile.mkdtemp(prefix="repro-fireworks-"), "launchpad.db")
        self.op_latency_s = op_latency_s
        self._lock = threading.Lock()
        self._closed = False
        self._conn = sqlite3.connect(self.path, check_same_thread=False)
        with self._lock, self._conn:
            self._conn.execute(
                """CREATE TABLE IF NOT EXISTS fireworks (
                       fw_id INTEGER PRIMARY KEY,
                       state TEXT,
                       spec BLOB,
                       result BLOB,
                       worker TEXT,
                       created REAL,
                       updated REAL
                   )"""
            )

    def _pay(self) -> None:
        if self.op_latency_s > 0:
            time.sleep(self.op_latency_s)

    # ------------------------------------------------------------------
    def add_firework(self, fw_id: int, buffer: bytes) -> None:
        self._pay()
        with self._lock, self._conn:
            self._conn.execute(
                "INSERT INTO fireworks (fw_id, state, spec, created, updated) VALUES (?, 'READY', ?, ?, ?)",
                (fw_id, buffer, time.time(), time.time()),
            )

    def checkout(self, worker: str) -> Optional[tuple]:
        """Atomically claim the oldest READY firework for ``worker``."""
        self._pay()
        if self._closed:
            return None
        with self._lock, self._conn:
            row = self._conn.execute(
                "SELECT fw_id, spec FROM fireworks WHERE state = 'READY' ORDER BY fw_id LIMIT 1"
            ).fetchone()
            if row is None:
                return None
            fw_id, spec = row
            self._conn.execute(
                "UPDATE fireworks SET state = 'RUNNING', worker = ?, updated = ? WHERE fw_id = ?",
                (worker, time.time(), fw_id),
            )
        return fw_id, spec

    def complete(self, fw_id: int, outcome: bytes) -> None:
        self._pay()
        if self._closed:
            return
        with self._lock, self._conn:
            self._conn.execute(
                "UPDATE fireworks SET state = 'COMPLETED', result = ?, updated = ? WHERE fw_id = ?",
                (outcome, time.time(), fw_id),
            )

    def fetch_completed(self, since_fw_id: int = -1) -> List[tuple]:
        self._pay()
        if self._closed:
            return []
        with self._lock:
            rows = self._conn.execute(
                "SELECT fw_id, result FROM fireworks WHERE state = 'COMPLETED' AND result IS NOT NULL"
            ).fetchall()
        return rows

    def counts(self) -> Dict[str, int]:
        with self._lock:
            rows = self._conn.execute("SELECT state, COUNT(*) FROM fireworks GROUP BY state").fetchall()
        return dict(rows)

    def close(self) -> None:
        with self._lock:
            self._closed = True
            self._conn.close()


class _FireWorker:
    """A worker that polls the LaunchPad (rapid-fire mode)."""

    def __init__(self, name: str, launchpad: LaunchPad, poll_interval_s: float):
        self.name = name
        self.launchpad = launchpad
        self.poll_interval_s = poll_interval_s
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._loop, name=name, daemon=True)
        self.tasks_run = 0

    def start(self) -> None:
        self._thread.start()

    def _loop(self) -> None:
        while not self._stop.is_set():
            claimed = self.launchpad.checkout(self.name)
            if claimed is None:
                time.sleep(self.poll_interval_s)
                continue
            fw_id, spec = claimed
            outcome = execute_task(spec)
            self.launchpad.complete(fw_id, outcome)
            self.tasks_run += 1

    def stop(self) -> None:
        self._stop.set()


class FireWorksLikeExecutor(BaselineExecutor):
    """Central-database execution in the style of FireWorks."""

    label = "fireworks"

    def __init__(
        self,
        workers: int = 2,
        db_op_latency_s: float = DB_OP_LATENCY_S,
        poll_interval_s: float = POLL_INTERVAL_S,
        launchpad_path: Optional[str] = None,
    ):
        self.worker_count = workers
        self.launchpad = LaunchPad(path=launchpad_path, op_latency_s=db_op_latency_s)
        self.poll_interval_s = poll_interval_s
        self._workers: List[_FireWorker] = []
        self._futures: Dict[int, cf.Future] = {}
        self._lock = threading.Lock()
        self._task_counter = 0
        self._stop = threading.Event()
        self._collector: Optional[threading.Thread] = None
        self._started = False

    def start(self) -> None:
        if self._started:
            return
        for i in range(self.worker_count):
            worker = _FireWorker(f"fireworker-{i}", self.launchpad, self.poll_interval_s)
            worker.start()
            self._workers.append(worker)
        self._collector = threading.Thread(target=self._collect_loop, name="fireworks-collector", daemon=True)
        self._collector.start()
        self._started = True

    def submit(self, func: Callable, resource_specification: Dict[str, Any], *args, **kwargs) -> cf.Future:
        if not self._started:
            raise RuntimeError("FireWorks baseline not started")
        buffer = pack_apply_message(func, args, kwargs)
        future: cf.Future = cf.Future()
        with self._lock:
            fw_id = self._task_counter
            self._task_counter += 1
            self._futures[fw_id] = future
        self.launchpad.add_firework(fw_id, buffer)
        return future

    def _collect_loop(self) -> None:
        while not self._stop.is_set():
            with self._lock:
                outstanding = bool(self._futures)
            if not outstanding:
                time.sleep(self.poll_interval_s)
                continue
            for fw_id, outcome_buffer in self.launchpad.fetch_completed():
                with self._lock:
                    future = self._futures.pop(fw_id, None)
                if future is None or future.done():
                    continue
                outcome = deserialize(outcome_buffer)
                if "exception" in outcome:
                    future.set_exception(outcome["exception"].e_value)
                else:
                    future.set_result(outcome.get("result"))
            time.sleep(self.poll_interval_s)

    def shutdown(self, block: bool = True) -> None:
        self._stop.set()
        for worker in self._workers:
            worker.stop()
        if block:
            for worker in self._workers:
                worker._thread.join(timeout=2)
            if self._collector is not None:
                self._collector.join(timeout=2)
        self.launchpad.close()
        self._started = False

    @property
    def connected_workers(self) -> int:
        return len(self._workers)
