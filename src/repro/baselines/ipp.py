"""An IPyParallel-like baseline.

IPyParallel routes every task through a central hub to engines and back, one
message round-trip per task, with no client-side batching and no per-node
pilot agent. The mini-reimplementation uses the same comms substrate as the
repro executors but deliberately reproduces those costs:

* every task is an individual request/response through the hub thread,
* the hub performs per-task bookkeeping (task registry read/write) before
  and after dispatch,
* engines are single-slot workers (one in-flight task each).
"""

from __future__ import annotations

import concurrent.futures as cf
import collections
import queue
import threading
import time
from typing import Any, Callable, Dict, List, Optional

from repro.baselines.base import BaselineExecutor
from repro.executors.execute_task import execute_task
from repro.serialize import deserialize, pack_apply_message

#: Per-message bookkeeping cost of the hub (seconds). IPyParallel's hub does
#: task-table updates in a Python loop for each message; this constant stands
#: in for that work and is what makes IPP slower per task than HTEX/LLEX.
HUB_OVERHEAD_S = 0.002


class _Engine:
    """A single-slot IPyParallel engine (worker thread)."""

    def __init__(self, engine_id: int, inbox: "queue.Queue", results: "queue.Queue"):
        self.engine_id = engine_id
        self.inbox = inbox
        self.results = results
        self.busy = False
        self._thread = threading.Thread(target=self._loop, name=f"ipp-engine-{engine_id}", daemon=True)
        self._stop = threading.Event()

    def start(self) -> None:
        self._thread.start()

    def _loop(self) -> None:
        while not self._stop.is_set():
            try:
                item = self.inbox.get(timeout=0.1)
            except queue.Empty:
                continue
            if item is None:
                break
            task_id, buffer = item
            outcome = execute_task(buffer)
            self.results.put((self.engine_id, task_id, outcome))

    def stop(self) -> None:
        self._stop.set()
        self.inbox.put(None)


class IPyParallelLikeExecutor(BaselineExecutor):
    """Central hub + single-slot engines, one round trip per task."""

    label = "ipp"

    def __init__(self, engines: int = 2, hub_overhead_s: float = HUB_OVERHEAD_S):
        self.engine_count = engines
        self.hub_overhead_s = hub_overhead_s
        self._engines: List[_Engine] = []
        self._idle: collections.deque = collections.deque()
        self._pending: collections.deque = collections.deque()
        self._futures: Dict[int, cf.Future] = {}
        self._task_registry: Dict[int, Dict[str, Any]] = {}
        self._results: "queue.Queue" = queue.Queue()
        self._submit_queue: "queue.Queue" = queue.Queue()
        self._task_counter = 0
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._hub_thread: Optional[threading.Thread] = None
        self._started = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._started:
            return
        for i in range(self.engine_count):
            engine = _Engine(i, queue.Queue(), self._results)
            engine.start()
            self._engines.append(engine)
            self._idle.append(i)
        self._hub_thread = threading.Thread(target=self._hub_loop, name="ipp-hub", daemon=True)
        self._hub_thread.start()
        self._started = True

    def submit(self, func: Callable, resource_specification: Dict[str, Any], *args, **kwargs) -> cf.Future:
        if not self._started:
            raise RuntimeError("IPP baseline not started")
        buffer = pack_apply_message(func, args, kwargs)
        future: cf.Future = cf.Future()
        with self._lock:
            task_id = self._task_counter
            self._task_counter += 1
            self._futures[task_id] = future
        self._submit_queue.put((task_id, buffer))
        return future

    def _hub_loop(self) -> None:
        while not self._stop.is_set():
            moved = False
            # Accept new submissions into the hub's task registry.
            try:
                task_id, buffer = self._submit_queue.get(timeout=0.001)
                time.sleep(self.hub_overhead_s)  # hub task-table insert
                self._task_registry[task_id] = {"state": "queued", "submitted": time.time()}
                self._pending.append((task_id, buffer))
                moved = True
            except queue.Empty:
                pass
            # Dispatch to idle engines, one task per message.
            while self._pending and self._idle:
                engine_id = self._idle.popleft()
                task_id, buffer = self._pending.popleft()
                time.sleep(self.hub_overhead_s)  # hub routing decision
                self._task_registry[task_id]["state"] = "running"
                self._engines[engine_id].inbox.put((task_id, buffer))
                moved = True
            # Collect results.
            try:
                engine_id, task_id, outcome_buffer = self._results.get(timeout=0.001)
                time.sleep(self.hub_overhead_s)  # hub result recording
                self._task_registry[task_id]["state"] = "done"
                self._idle.append(engine_id)
                self._complete(task_id, outcome_buffer)
                moved = True
            except queue.Empty:
                pass
            if not moved:
                time.sleep(0.0005)

    def _complete(self, task_id: int, outcome_buffer: bytes) -> None:
        with self._lock:
            future = self._futures.pop(task_id, None)
        if future is None or future.done():
            return
        outcome = deserialize(outcome_buffer)
        if "exception" in outcome:
            future.set_exception(outcome["exception"].e_value)
        else:
            future.set_result(outcome.get("result"))

    def shutdown(self, block: bool = True) -> None:
        self._stop.set()
        for engine in self._engines:
            engine.stop()
        self._started = False

    @property
    def connected_workers(self) -> int:
        return len(self._engines)
