"""Channels: how Parsl authenticates to and executes commands on a resource (§4.2.1)."""

from repro.channels.base import Channel, CommandResult
from repro.channels.local import LocalChannel
from repro.channels.ssh import SSHChannel

__all__ = ["Channel", "CommandResult", "LocalChannel", "SSHChannel"]
