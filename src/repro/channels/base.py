"""Channel abstraction.

A channel describes how the library connects to the machine where provider
commands (sbatch, qsub, fork, ...) must run: directly on the local host
(:class:`~repro.channels.local.LocalChannel`) or on a remote login node
(:class:`~repro.channels.ssh.SSHChannel`, simulated here). Providers never
run commands themselves; they always go through their channel, which is what
makes a Parsl script movable between resources without code changes.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional


@dataclass
class CommandResult:
    """Outcome of a command executed through a channel."""

    exit_code: int
    stdout: str
    stderr: str

    @property
    def ok(self) -> bool:
        return self.exit_code == 0


class Channel(ABC):
    """Interface every channel implements."""

    #: A label used in logs and monitoring records.
    label: str = "channel"

    @abstractmethod
    def execute_wait(self, cmd: str, walltime: Optional[float] = None) -> CommandResult:
        """Run ``cmd`` to completion and return its result."""

    @abstractmethod
    def push_file(self, source: str, dest_dir: str) -> str:
        """Copy a local file to the channel's side; returns the remote path."""

    @abstractmethod
    def pull_file(self, remote_path: str, local_dir: str) -> str:
        """Copy a file from the channel's side to a local directory; returns the local path."""

    @abstractmethod
    def makedirs(self, path: str, exist_ok: bool = True) -> None:
        """Create a directory (and parents) on the channel's side."""

    @property
    @abstractmethod
    def script_dir(self) -> str:
        """Directory in which generated submit scripts are placed."""

    def close(self) -> None:
        """Release any resources held by the channel."""
        return None
