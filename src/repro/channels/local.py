"""LocalChannel: execute provider commands directly on this host."""

from __future__ import annotations

import os
import shutil
import subprocess
import tempfile
from typing import Optional

from repro.channels.base import Channel, CommandResult


class LocalChannel(Channel):
    """Run commands with the local shell; copy files with the local filesystem.

    This is the channel used when the Parsl script runs on a login node with
    direct queue access (the common case in the paper's Listing 1) and the
    only channel needed for single-machine execution.
    """

    label = "local"

    def __init__(self, script_dir: Optional[str] = None, envs: Optional[dict] = None):
        self._script_dir = script_dir or tempfile.mkdtemp(prefix="repro-scripts-")
        os.makedirs(self._script_dir, exist_ok=True)
        self.envs = dict(envs or {})

    @property
    def script_dir(self) -> str:
        return self._script_dir

    def execute_wait(self, cmd: str, walltime: Optional[float] = None) -> CommandResult:
        env = dict(os.environ)
        env.update({k: str(v) for k, v in self.envs.items()})
        try:
            proc = subprocess.run(
                cmd,
                shell=True,
                capture_output=True,
                text=True,
                timeout=walltime,
                env=env,
            )
            return CommandResult(proc.returncode, proc.stdout, proc.stderr)
        except subprocess.TimeoutExpired as exc:
            return CommandResult(124, exc.stdout or "", f"command timed out after {walltime}s")

    def execute_no_wait(self, cmd: str) -> subprocess.Popen:
        """Start a long-running command (e.g. a worker pool) without waiting."""
        env = dict(os.environ)
        env.update({k: str(v) for k, v in self.envs.items()})
        return subprocess.Popen(
            cmd,
            shell=True,
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            start_new_session=True,
        )

    def push_file(self, source: str, dest_dir: str) -> str:
        os.makedirs(dest_dir, exist_ok=True)
        dest = os.path.join(dest_dir, os.path.basename(source))
        if os.path.abspath(source) != os.path.abspath(dest):
            shutil.copyfile(source, dest)
        return dest

    def pull_file(self, remote_path: str, local_dir: str) -> str:
        return self.push_file(remote_path, local_dir)

    def makedirs(self, path: str, exist_ok: bool = True) -> None:
        os.makedirs(path, exist_ok=exist_ok)
