"""SSHChannel: simulated remote command execution.

The real Parsl SSHChannel uses paramiko to reach a cluster login node. This
reproduction has no remote machines, so the SSH channel simulates remoteness
on top of the local host:

* commands run locally but pay a configurable round-trip latency,
* the "remote" filesystem is a separate directory tree (``remote_root``) so
  path translation (push/pull) is meaningfully exercised,
* authentication is checked against a :class:`~repro.auth.tokens.TokenStore`
  entry when one is supplied, mirroring the Globus-Auth-backed SSH described
  in §4.6.

The interface is identical to :class:`~repro.channels.local.LocalChannel`, so
providers cannot tell the difference — which is the point of the abstraction.
"""

from __future__ import annotations

import os
import shutil
import subprocess
import tempfile
import time
from typing import Optional

from repro.channels.base import Channel, CommandResult
from repro.errors import ChannelError


class SSHChannel(Channel):
    """A latency-injecting, directory-sandboxed stand-in for an SSH connection."""

    label = "ssh"

    def __init__(
        self,
        hostname: str = "login.example.edu",
        username: Optional[str] = None,
        remote_root: Optional[str] = None,
        script_dir: Optional[str] = None,
        rtt_ms: float = 20.0,
        auth_token: Optional[str] = None,
        token_store=None,
        envs: Optional[dict] = None,
    ):
        self.hostname = hostname
        self.username = username or os.environ.get("USER", "user")
        self.rtt_ms = rtt_ms
        self.auth_token = auth_token
        self.token_store = token_store
        self.envs = dict(envs or {})
        self.remote_root = remote_root or tempfile.mkdtemp(prefix=f"repro-ssh-{hostname}-")
        os.makedirs(self.remote_root, exist_ok=True)
        self._script_dir = script_dir or os.path.join(self.remote_root, "submit_scripts")
        os.makedirs(self._script_dir, exist_ok=True)
        self._connected = False
        self._connect()

    # ------------------------------------------------------------------
    def _connect(self) -> None:
        """Simulate the SSH handshake, validating the token when provided."""
        if self.token_store is not None:
            if not self.token_store.validate(self.hostname, self.auth_token):
                raise ChannelError("authentication failed", self.hostname)
        self._pay_latency()
        self._connected = True

    def _pay_latency(self) -> None:
        if self.rtt_ms > 0:
            time.sleep(self.rtt_ms / 1000.0)

    def _require_connected(self) -> None:
        if not self._connected:
            raise ChannelError("channel is closed", self.hostname)

    @property
    def script_dir(self) -> str:
        return self._script_dir

    # ------------------------------------------------------------------
    def execute_wait(self, cmd: str, walltime: Optional[float] = None) -> CommandResult:
        self._require_connected()
        self._pay_latency()
        env = dict(os.environ)
        env.update({k: str(v) for k, v in self.envs.items()})
        env["REPRO_SSH_REMOTE_ROOT"] = self.remote_root
        try:
            proc = subprocess.run(
                cmd,
                shell=True,
                capture_output=True,
                text=True,
                timeout=walltime,
                cwd=self.remote_root,
                env=env,
            )
            return CommandResult(proc.returncode, proc.stdout, proc.stderr)
        except subprocess.TimeoutExpired as exc:
            return CommandResult(124, exc.stdout or "", f"command timed out after {walltime}s")

    def push_file(self, source: str, dest_dir: str) -> str:
        """Copy a local file into the remote tree (an 'scp to' operation)."""
        self._require_connected()
        self._pay_latency()
        target_dir = self._remote_path(dest_dir)
        os.makedirs(target_dir, exist_ok=True)
        dest = os.path.join(target_dir, os.path.basename(source))
        shutil.copyfile(source, dest)
        return dest

    def pull_file(self, remote_path: str, local_dir: str) -> str:
        """Copy a file from the remote tree to a local directory (an 'scp from')."""
        self._require_connected()
        self._pay_latency()
        src = self._remote_path(remote_path)
        if not os.path.exists(src):
            raise ChannelError(f"remote file not found: {remote_path}", self.hostname)
        os.makedirs(local_dir, exist_ok=True)
        dest = os.path.join(local_dir, os.path.basename(remote_path))
        shutil.copyfile(src, dest)
        return dest

    def makedirs(self, path: str, exist_ok: bool = True) -> None:
        self._require_connected()
        self._pay_latency()
        os.makedirs(self._remote_path(path), exist_ok=exist_ok)

    def _remote_path(self, path: str) -> str:
        """Map a path into the remote sandbox unless it is already inside it."""
        if os.path.isabs(path) and path.startswith(self.remote_root):
            return path
        return os.path.join(self.remote_root, path.lstrip("/"))

    def close(self) -> None:
        self._connected = False
