"""Message-passing substrate used by the executors.

The paper's executors (§4.3) use ZeroMQ queues between the executor client,
the interchange, and managers/workers. This reproduction implements the same
messaging patterns without an external dependency:

* :class:`~repro.comms.server.MessageServer` — a ROUTER-like endpoint: binds a
  TCP port, accepts many peers, receives ``(identity, message)`` pairs and can
  send to a specific identity.
* :class:`~repro.comms.client.MessageClient` — a DEALER-like endpoint: connects
  to a server, sends and receives whole messages.
* :mod:`repro.comms.inproc` — the same API over in-process queues, used for
  thread-based deployments and unit tests.

Messages are arbitrary picklable Python objects; framing is length-prefixed
(see :mod:`repro.comms.protocol`). Batched variants (``encode_batch`` /
``send_frames`` / per-endpoint ``send_many``) move N messages in one socket
write — the multipart fast path used by the HTEX dispatch pipeline.
"""

from repro.comms.protocol import (
    FrameBatcher,
    FrameProtocolError,
    decode_batch,
    decode_message,
    encode_batch,
    encode_message,
    recv_frame,
    send_frame,
    send_frames,
)
from repro.comms.server import MessageServer
from repro.comms.client import MessageClient
from repro.comms.inproc import InprocRouter, InprocDealer, InprocFabric

__all__ = [
    "FrameBatcher",
    "FrameProtocolError",
    "send_frame",
    "send_frames",
    "recv_frame",
    "encode_message",
    "encode_batch",
    "decode_message",
    "decode_batch",
    "MessageServer",
    "MessageClient",
    "InprocRouter",
    "InprocDealer",
    "InprocFabric",
]
