"""DEALER-like TCP message client used by managers, workers, and executor clients."""

from __future__ import annotations

import queue
import socket
import threading
import time
from typing import Any, Dict, List, Optional

from repro.comms.protocol import recv_frame, send_frame, send_frames
from repro.utils.ids import make_uid


class MessageClient:
    """Connect to a :class:`~repro.comms.server.MessageServer` and exchange messages.

    The client registers its identity on connect; after that, ``send`` and
    ``recv`` move whole picklable messages. Receives are buffered by a
    background reader thread so callers can poll with a timeout.
    """

    def __init__(
        self,
        host: str,
        port: int,
        identity: Optional[str] = None,
        registration_info: Optional[Dict[str, Any]] = None,
        connect_timeout: float = 10.0,
        retry_interval: float = 0.05,
    ):
        self.identity = identity or make_uid("client")
        self.host = host
        self.port = port
        self._sock = self._connect_with_retry(host, port, connect_timeout, retry_interval)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._send_lock = threading.Lock()
        self._inbound: "queue.Queue[Any]" = queue.Queue()
        self._stop_event = threading.Event()
        self.connected = True

        registration = {"identity": self.identity}
        registration.update(registration_info or {})
        send_frame(self._sock, registration)

        self._reader = threading.Thread(
            target=self._reader_loop, name=f"client-{self.identity}-reader", daemon=True
        )
        self._reader.start()

    @staticmethod
    def _connect_with_retry(host: str, port: int, timeout: float, interval: float) -> socket.socket:
        deadline = time.time() + timeout
        last_error: Optional[Exception] = None
        while time.time() < deadline:
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            try:
                sock.connect((host, port))
                return sock
            except OSError as exc:
                last_error = exc
                sock.close()
                time.sleep(interval)
        raise ConnectionError(f"could not connect to {host}:{port} within {timeout}s: {last_error}")

    def _reader_loop(self) -> None:
        while not self._stop_event.is_set():
            try:
                msg = recv_frame(self._sock)
            except Exception:
                break
            self._inbound.put(msg)
        self.connected = False
        # Wake any blocked recv() with an explicit disconnect marker.
        self._inbound.put({"type": "connection_lost"})

    def send(self, message: Any) -> bool:
        """Send a message; returns False if the connection is gone."""
        if not self.connected:
            return False
        try:
            with self._send_lock:
                send_frame(self._sock, message)
            return True
        except OSError:
            self.connected = False
            return False

    def send_many(self, messages: List[Any]) -> bool:
        """Send several messages with a single socket write (multipart batch).

        Used by managers to coalesce e.g. a results batch and the follow-up
        capacity advertisement into one TCP segment train.
        """
        if not messages:
            return True
        if not self.connected:
            return False
        try:
            with self._send_lock:
                send_frames(self._sock, messages)
            return True
        except OSError:
            self.connected = False
            return False

    def recv(self, timeout: Optional[float] = None) -> Optional[Any]:
        """Receive the next message, or None on timeout."""
        try:
            return self._inbound.get(timeout=timeout)
        except queue.Empty:
            return None

    def close(self) -> None:
        self._stop_event.set()
        self.connected = False
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "MessageClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
