"""In-process transport with the same API as the TCP server/client.

Thread-based executor deployments (and unit tests) use this fabric to avoid
the cost and flakiness of real sockets while exercising identical executor
logic. An :class:`InprocFabric` plays the role of the network: routers bind
named endpoints in it and dealers connect to those names.
"""

from __future__ import annotations

import queue
import threading
from typing import Any, Dict, List, Optional, Tuple

from repro.utils.ids import make_uid


class InprocFabric:
    """A registry of named in-process endpoints."""

    def __init__(self):
        self._endpoints: Dict[str, "InprocRouter"] = {}
        self._lock = threading.Lock()

    def register(self, name: str, router: "InprocRouter") -> None:
        with self._lock:
            if name in self._endpoints:
                raise ValueError(f"endpoint {name!r} already bound")
            self._endpoints[name] = router

    def unregister(self, name: str) -> None:
        with self._lock:
            self._endpoints.pop(name, None)

    def lookup(self, name: str) -> "InprocRouter":
        with self._lock:
            try:
                return self._endpoints[name]
            except KeyError:
                raise ConnectionError(f"no endpoint bound at {name!r}") from None


#: A default fabric, analogous to the host loopback network.
DEFAULT_FABRIC = InprocFabric()


class InprocRouter:
    """In-process ROUTER: receives (identity, message), sends by identity."""

    def __init__(self, name: Optional[str] = None, fabric: Optional[InprocFabric] = None):
        self.name = name or make_uid("inproc")
        self.fabric = fabric or DEFAULT_FABRIC
        self._inbound: "queue.Queue[Tuple[str, Any]]" = queue.Queue()
        self._peers: Dict[str, "queue.Queue[Any]"] = {}
        self._lock = threading.Lock()
        self._closed = False
        self.fabric.register(self.name, self)

    # Called by dealers -------------------------------------------------
    def _attach(self, identity: str, info: Dict[str, Any]) -> "queue.Queue[Any]":
        outbound: "queue.Queue[Any]" = queue.Queue()
        with self._lock:
            self._peers[identity] = outbound
        self._inbound.put((identity, {"type": "registration", "info": info}))
        return outbound

    def _detach(self, identity: str) -> None:
        with self._lock:
            self._peers.pop(identity, None)
        self._inbound.put((identity, {"type": "peer_lost"}))

    def _deliver(self, identity: str, message: Any) -> None:
        self._inbound.put((identity, message))

    # Router API ---------------------------------------------------------
    def recv(self, timeout: Optional[float] = None) -> Optional[Tuple[str, Any]]:
        try:
            return self._inbound.get(timeout=timeout)
        except queue.Empty:
            return None

    def send(self, identity: str, message: Any) -> bool:
        with self._lock:
            peer = self._peers.get(identity)
        if peer is None or self._closed:
            return False
        peer.put(message)
        return True

    def send_many(self, identity: str, messages: List[Any]) -> bool:
        """Deliver several messages to one dealer atomically (API parity
        with :meth:`MessageServer.send_many`; in-process there is no write
        syscall to amortize, so this is just a loop)."""
        if not messages:
            return True
        with self._lock:
            peer = self._peers.get(identity)
        if peer is None or self._closed:
            return False
        for message in messages:
            peer.put(message)
        return True

    def broadcast(self, message: Any) -> int:
        with self._lock:
            peers = list(self._peers.values())
        for peer in peers:
            peer.put(message)
        return len(peers)

    def connected_peers(self) -> List[str]:
        with self._lock:
            return list(self._peers.keys())

    def disconnect(self, identity: str) -> None:
        with self._lock:
            self._peers.pop(identity, None)

    def close(self) -> None:
        self._closed = True
        self.fabric.unregister(self.name)
        with self._lock:
            self._peers.clear()

    def __enter__(self) -> "InprocRouter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class InprocDealer:
    """In-process DEALER: connects to a named router in the fabric."""

    def __init__(
        self,
        endpoint: str,
        identity: Optional[str] = None,
        registration_info: Optional[Dict[str, Any]] = None,
        fabric: Optional[InprocFabric] = None,
    ):
        self.identity = identity or make_uid("dealer")
        self.fabric = fabric or DEFAULT_FABRIC
        self._router = self.fabric.lookup(endpoint)
        self._inbound = self._router._attach(self.identity, dict(registration_info or {}))
        self.connected = True

    def send(self, message: Any) -> bool:
        if not self.connected:
            return False
        self._router._deliver(self.identity, message)
        return True

    def send_many(self, messages: List[Any]) -> bool:
        """Deliver several messages (API parity with :meth:`MessageClient.send_many`)."""
        if not self.connected:
            return False
        for message in messages:
            self._router._deliver(self.identity, message)
        return True

    def recv(self, timeout: Optional[float] = None) -> Optional[Any]:
        try:
            return self._inbound.get(timeout=timeout)
        except queue.Empty:
            return None

    def close(self) -> None:
        if self.connected:
            self.connected = False
            self._router._detach(self.identity)

    def __enter__(self) -> "InprocDealer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
