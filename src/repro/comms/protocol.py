"""Wire protocol: length-prefixed pickled frames, singly or in batches.

A frame on the wire is::

    +----------------+----------------------+
    | 4-byte length  |  pickled payload     |
    +----------------+----------------------+

The length is an unsigned big-endian 32-bit integer covering only the
payload. A maximum frame size guards against corrupted headers causing
unbounded allocations.

A *batch* is simply the concatenation of frames. Because every frame is
self-delimiting, a receiver's frame loop consumes a batch one message at a
time with no extra protocol state — but the sender gets to move N messages
with a single ``sendall`` (one syscall, one TCP segment train), which is the
multipart trick the paper's interchange relies on for its >1k tasks/s
dispatch rate. :func:`encode_batch` / :func:`decode_batch` /
:func:`send_frames` implement that path, and :class:`FrameBatcher` is a
reusable flush-on-size-or-age coalescing policy for senders that want to
buffer before writing. (The HTEX hot paths batch at the message level
instead — the manager greedily drains completed results and flushes
immediately — so they do not need a delay-based batcher.)
"""

from __future__ import annotations

import pickle
import socket
import struct
import time
from typing import Any, Iterable, List, Optional

#: Hard cap on a single frame (64 MiB). Tasks and results larger than this
#: indicate user data that should be passed as Files instead.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_LENGTH_STRUCT = struct.Struct("!I")


class FrameProtocolError(Exception):
    """Raised when a frame violates the wire protocol."""


def encode_message(obj: Any) -> bytes:
    """Pickle ``obj`` and prepend the length header."""
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameProtocolError(
            f"message of {len(payload)} bytes exceeds the {MAX_FRAME_BYTES}-byte frame limit"
        )
    return _LENGTH_STRUCT.pack(len(payload)) + payload


def decode_message(buffer: bytes) -> Any:
    """Inverse of :func:`encode_message` for a fully buffered frame."""
    if len(buffer) < _LENGTH_STRUCT.size:
        raise FrameProtocolError("buffer shorter than frame header")
    (length,) = _LENGTH_STRUCT.unpack_from(buffer)
    payload = buffer[_LENGTH_STRUCT.size:_LENGTH_STRUCT.size + length]
    if len(payload) != length:
        raise FrameProtocolError(f"truncated frame: expected {length} bytes, got {len(payload)}")
    return pickle.loads(payload)


def encode_batch(objs: Iterable[Any]) -> bytes:
    """Encode many messages as one contiguous byte string (a multipart batch).

    The result is the concatenation of :func:`encode_message` frames, so any
    frame-at-a-time receiver decodes it transparently. Empty batches are
    rejected: an empty write is indistinguishable from no write and almost
    always indicates a caller bug (e.g. flushing a drained coalescing buffer
    twice).
    """
    frames = [encode_message(obj) for obj in objs]
    if not frames:
        raise FrameProtocolError("refusing to encode an empty batch")
    return b"".join(frames)


def decode_batch(buffer: bytes) -> List[Any]:
    """Decode a buffer of concatenated frames back into a list of messages."""
    if not buffer:
        raise FrameProtocolError("refusing to decode an empty batch")
    messages = []
    offset = 0
    total = len(buffer)
    while offset < total:
        if total - offset < _LENGTH_STRUCT.size:
            raise FrameProtocolError("trailing bytes shorter than a frame header")
        (length,) = _LENGTH_STRUCT.unpack_from(buffer, offset)
        if length > MAX_FRAME_BYTES:
            raise FrameProtocolError(f"frame of {length} bytes exceeds the {MAX_FRAME_BYTES}-byte limit")
        start = offset + _LENGTH_STRUCT.size
        end = start + length
        if end > total:
            raise FrameProtocolError(f"truncated frame: expected {length} bytes, got {total - start}")
        messages.append(pickle.loads(buffer[start:end]))
        offset = end
    return messages


class FrameBatcher:
    """Coalesce messages into batches, flushing on size or age.

    The batcher accumulates messages via :meth:`add` and hands back an
    encoded batch when ``max_items`` is reached. A partially filled batch
    becomes due once the oldest buffered message has waited ``max_delay``
    seconds (checked via :meth:`due` and collected with :meth:`flush`), so
    light traffic is never delayed by more than ``max_delay`` while bursts
    are packed densely. A custom ``clock`` may be injected for tests.
    """

    def __init__(self, max_items: int = 16, max_delay: float = 0.05, clock=time.monotonic):
        if max_items < 1:
            raise ValueError("max_items must be >= 1")
        if max_delay < 0:
            raise ValueError("max_delay must be >= 0")
        self.max_items = max_items
        self.max_delay = max_delay
        self._clock = clock
        self._buffer: List[Any] = []
        self._oldest: Optional[float] = None

    def __len__(self) -> int:
        return len(self._buffer)

    def add(self, obj: Any) -> Optional[bytes]:
        """Buffer one message; returns an encoded batch when it fills up."""
        if not self._buffer:
            self._oldest = self._clock()
        self._buffer.append(obj)
        if len(self._buffer) >= self.max_items:
            return self.flush()
        return None

    def due(self) -> bool:
        """True when a partial batch has aged past ``max_delay``."""
        if not self._buffer:
            return False
        assert self._oldest is not None
        return self._clock() - self._oldest >= self.max_delay

    def flush(self) -> Optional[bytes]:
        """Encode and clear whatever is buffered; None when empty."""
        if not self._buffer:
            return None
        batch = encode_batch(self._buffer)
        self._buffer = []
        self._oldest = None
        return batch


def _recv_exactly(sock: socket.socket, nbytes: int) -> bytes:
    """Read exactly ``nbytes`` from a stream socket or raise on EOF."""
    chunks = []
    remaining = nbytes
    while remaining > 0:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionError("peer closed connection mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def send_frame(sock: socket.socket, obj: Any) -> None:
    """Serialize and send one frame on a connected stream socket."""
    sock.sendall(encode_message(obj))


def send_frames(sock: socket.socket, objs: Iterable[Any]) -> None:
    """Serialize and send many frames with a single socket write.

    The receiving side needs no batch awareness: its per-frame read loop
    consumes the concatenated frames one message at a time.
    """
    sock.sendall(encode_batch(objs))


def recv_frame(sock: socket.socket) -> Any:
    """Receive one complete frame from a connected stream socket."""
    header = _recv_exactly(sock, _LENGTH_STRUCT.size)
    (length,) = _LENGTH_STRUCT.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise FrameProtocolError(f"frame of {length} bytes exceeds the {MAX_FRAME_BYTES}-byte limit")
    payload = _recv_exactly(sock, length)
    return pickle.loads(payload)
