"""Wire protocol: length-prefixed pickled frames.

A frame on the wire is::

    +----------------+----------------------+
    | 4-byte length  |  pickled payload     |
    +----------------+----------------------+

The length is an unsigned big-endian 32-bit integer covering only the
payload. A maximum frame size guards against corrupted headers causing
unbounded allocations.
"""

from __future__ import annotations

import pickle
import socket
import struct
from typing import Any

#: Hard cap on a single frame (64 MiB). Tasks and results larger than this
#: indicate user data that should be passed as Files instead.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_LENGTH_STRUCT = struct.Struct("!I")


class FrameProtocolError(Exception):
    """Raised when a frame violates the wire protocol."""


def encode_message(obj: Any) -> bytes:
    """Pickle ``obj`` and prepend the length header."""
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameProtocolError(
            f"message of {len(payload)} bytes exceeds the {MAX_FRAME_BYTES}-byte frame limit"
        )
    return _LENGTH_STRUCT.pack(len(payload)) + payload


def decode_message(buffer: bytes) -> Any:
    """Inverse of :func:`encode_message` for a fully buffered frame."""
    if len(buffer) < _LENGTH_STRUCT.size:
        raise FrameProtocolError("buffer shorter than frame header")
    (length,) = _LENGTH_STRUCT.unpack_from(buffer)
    payload = buffer[_LENGTH_STRUCT.size:_LENGTH_STRUCT.size + length]
    if len(payload) != length:
        raise FrameProtocolError(f"truncated frame: expected {length} bytes, got {len(payload)}")
    return pickle.loads(payload)


def _recv_exactly(sock: socket.socket, nbytes: int) -> bytes:
    """Read exactly ``nbytes`` from a stream socket or raise on EOF."""
    chunks = []
    remaining = nbytes
    while remaining > 0:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionError("peer closed connection mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def send_frame(sock: socket.socket, obj: Any) -> None:
    """Serialize and send one frame on a connected stream socket."""
    sock.sendall(encode_message(obj))


def recv_frame(sock: socket.socket) -> Any:
    """Receive one complete frame from a connected stream socket."""
    header = _recv_exactly(sock, _LENGTH_STRUCT.size)
    (length,) = _LENGTH_STRUCT.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise FrameProtocolError(f"frame of {length} bytes exceeds the {MAX_FRAME_BYTES}-byte limit")
    payload = _recv_exactly(sock, length)
    return pickle.loads(payload)
