"""ROUTER-like TCP message server.

The interchange binds one or more :class:`MessageServer` instances. Each
connecting peer (an executor client, a manager, or a worker) is assigned or
announces an *identity*; the server exposes a single inbound queue of
``(identity, message)`` pairs and can address outbound messages to a specific
identity — exactly the ROUTER socket behaviour the paper's interchange relies
on for matching tasks to managers with advertised capacity.
"""

from __future__ import annotations

import queue
import socket
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.comms.protocol import recv_frame, send_frame, send_frames
from repro.utils.ids import make_uid


def _close_socket(sock: socket.socket) -> None:
    """Shut down then close: the shutdown sends FIN and wakes any thread
    blocked in ``recv`` on the peer side (a bare ``close`` does neither
    reliably while our own reader is still blocked on the fd)."""
    try:
        sock.shutdown(socket.SHUT_RDWR)
    except OSError:
        pass
    try:
        sock.close()
    except OSError:
        pass


class _PeerConnection:
    """Book-keeping for one connected peer."""

    def __init__(self, identity: str, sock: socket.socket, address):
        self.identity = identity
        self.sock = sock
        self.address = address
        self.send_lock = threading.Lock()
        self.alive = True
        #: Set when a newer connection registered the same identity and this
        #: one was evicted: its reader must exit silently (the evictor already
        #: reported the loss) and must stop attributing frames to the identity.
        self.evicted = False
        self.connected_at = time.time()


class MessageServer:
    """Accept many peers on a TCP port and exchange picklable messages.

    The first frame a peer sends must be a registration dict containing at
    least ``{"identity": <str>}``; everything after that is application
    payload. Peers that disconnect are reported on the inbound queue as
    ``(identity, {"type": "peer_lost"})`` so callers (e.g. the interchange's
    heartbeat logic) can react.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, name: str = "message-server"):
        self.name = name
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(1024)
        self.host, self.port = self._listener.getsockname()
        self._peers: Dict[str, _PeerConnection] = {}
        self._peers_lock = threading.Lock()
        self._inbound: "queue.Queue[Tuple[str, Any]]" = queue.Queue()
        self._stop_event = threading.Event()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"{name}-accept", daemon=True
        )
        self._reader_threads: List[threading.Thread] = []
        self._accept_thread.start()

    # ------------------------------------------------------------------
    # Accept / read loops
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        try:
            self._listener.settimeout(0.2)
        except OSError:
            return  # close() already shut the listener down
        while not self._stop_event.is_set():
            try:
                conn, addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            reader = threading.Thread(
                target=self._reader_loop, args=(conn, addr), name=f"{self.name}-reader", daemon=True
            )
            reader.start()
            # Prune finished readers before tracking the new one: a long-lived
            # server with churny clients would otherwise accumulate one dead
            # Thread object per connection ever accepted.
            self._reader_threads = [t for t in self._reader_threads if t.is_alive()]
            self._reader_threads.append(reader)

    def _reader_loop(self, conn: socket.socket, addr) -> None:
        # First frame must be registration.
        try:
            registration = recv_frame(conn)
        except Exception:
            conn.close()
            return
        if not isinstance(registration, dict) or "identity" not in registration:
            conn.close()
            return
        identity = registration["identity"] or make_uid("peer")
        peer = _PeerConnection(identity, conn, addr)
        with self._peers_lock:
            # A re-registration of a live identity evicts the old connection
            # *atomically* (close + peer_lost, then install) rather than
            # silently overwriting it: the stale socket's reader would
            # otherwise keep attributing its frames — and eventually its
            # disconnect — to an identity that now belongs to someone else.
            previous = self._peers.pop(identity, None)
            if previous is not None and previous is not peer:
                previous.alive = False
                previous.evicted = True
                _close_socket(previous.sock)
                self._inbound.put((identity, {"type": "peer_lost", "reason": "superseded"}))
            self._peers[identity] = peer
            self._inbound.put((identity, {"type": "registration", "info": registration}))
        while not self._stop_event.is_set():
            try:
                msg = recv_frame(conn)
            except Exception:
                break
            # The check and the enqueue share the peers lock with the
            # eviction path, so a frame read just before an eviction either
            # lands *before* the eviction's peer_lost/registration pair or
            # is dropped — never attributed to the identity's new owner.
            with self._peers_lock:
                if not peer.alive:
                    break  # evicted mid-read: never attribute this frame
                self._inbound.put((identity, msg))
        peer.alive = False
        with self._peers_lock:
            existing = self._peers.get(identity)
            if existing is peer:
                del self._peers[identity]
                if not peer.evicted:
                    # Enqueued under the lock: a same-identity reconnect
                    # racing this exit cannot slot its registration in
                    # first, which would make this loss read as the *new*
                    # connection dying. (An evicted connection's loss was
                    # already reported by the evictor.)
                    self._inbound.put((identity, {"type": "peer_lost"}))
        try:
            conn.close()
        except OSError:
            pass

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def recv(self, timeout: Optional[float] = None) -> Optional[Tuple[str, Any]]:
        """Receive the next ``(identity, message)`` pair, or None on timeout."""
        try:
            return self._inbound.get(timeout=timeout)
        except queue.Empty:
            return None

    def inject(self, identity: str, message: Any) -> None:
        """Enqueue a message as if peer ``identity`` had sent it over TCP.

        In-process front-ends (e.g. the gateway's HTTP edge) use this to feed
        the owner's service loop through the same single inbound queue as
        remote peers, so all protocol handling stays single-writer no matter
        which transport a message arrived on.
        """
        self._inbound.put((identity, message))

    def send(self, identity: str, message: Any) -> bool:
        """Send ``message`` to the peer with the given identity.

        Returns False (rather than raising) when the peer is unknown or its
        connection has already been torn down, mirroring ZeroMQ ROUTER's
        silently-drop behaviour which the interchange compensates for via
        heartbeats.
        """
        with self._peers_lock:
            peer = self._peers.get(identity)
        if peer is None or not peer.alive:
            return False
        try:
            with peer.send_lock:
                send_frame(peer.sock, message)
            return True
        except OSError:
            peer.alive = False
            return False

    def send_many(self, identity: str, messages: List[Any]) -> bool:
        """Send several messages to one peer with a single socket write.

        The messages arrive individually on the peer's ``recv`` — this is
        purely a transport optimization (one syscall instead of N), used by
        hot paths like the interchange's batched task dispatch.
        """
        if not messages:
            return True
        with self._peers_lock:
            peer = self._peers.get(identity)
        if peer is None or not peer.alive:
            return False
        try:
            with peer.send_lock:
                send_frames(peer.sock, messages)
            return True
        except OSError:
            peer.alive = False
            return False

    def broadcast(self, message: Any) -> int:
        """Send ``message`` to every connected peer; returns the send count."""
        with self._peers_lock:
            identities = list(self._peers.keys())
        return sum(1 for ident in identities if self.send(ident, message))

    def connected_peers(self) -> List[str]:
        """Identities of currently connected peers."""
        with self._peers_lock:
            return [ident for ident, peer in self._peers.items() if peer.alive]

    def disconnect(self, identity: str) -> None:
        """Forcefully drop a peer (used for blacklisting managers)."""
        with self._peers_lock:
            peer = self._peers.pop(identity, None)
        if peer is not None:
            peer.alive = False
            _close_socket(peer.sock)

    def close(self) -> None:
        """Shut the server down and drop all peers."""
        self._stop_event.set()
        try:
            self._listener.close()
        except OSError:
            pass
        with self._peers_lock:
            peers = list(self._peers.values())
            self._peers.clear()
        for peer in peers:
            _close_socket(peer.sock)
        # Join the accept thread before declaring the port free: a thread
        # blocked inside accept(2) keeps the kernel LISTEN socket alive even
        # after the fd is closed (up to its 0.2 s poll timeout), so without
        # this join a caller that closes and immediately rebinds the same
        # port races EADDRINUSE.
        if self._accept_thread.is_alive() and self._accept_thread is not threading.current_thread():
            self._accept_thread.join(timeout=5.0)
        # Reap reader threads: sockets are closed, so each loop exits promptly.
        # One shared deadline rather than a fixed per-thread slice — under
        # heavy CPU contention a single thread can take longer than a second
        # to observe its dead socket, while the whole group still drains well
        # inside the budget.
        deadline = time.monotonic() + 5.0
        for thread in self._reader_threads:
            thread.join(timeout=max(0.0, deadline - time.monotonic()))
        self._reader_threads = [t for t in self._reader_threads if t.is_alive()]

    def __enter__(self) -> "MessageServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
