"""Configuration (§3.5): the separation of code from execution configuration."""

from repro.config.config import Config

__all__ = ["Config"]
