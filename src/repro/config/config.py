"""The Config object.

Parsl separates program logic from execution configuration (§3.5): the same
script runs on a laptop or a supercomputer by swapping the Config. A Config
is a plain Python object so developers can introspect permissible options,
validate settings, and edit configurations dynamically.

A Config bundles:

* the list of executors (each optionally carrying a provider/channel/launcher),
* fault-tolerance settings: ``retries`` bounds attempts per task;
  ``retry_policy`` (a :class:`~repro.core.retry.RetryPolicy`) classifies
  failures — infrastructure faults (lost workers/managers, unavailable
  shards) retry under capped exponential backoff with jitter, deterministic
  faults (poison tasks, impossible resource specs, walltime kills) fail
  fast — defaulting to a policy built from the flat ``retry_backoff_s``
  delay when unset,
* the dispatcher tuning for the batched submission hot path:
  ``dispatch_batch_size`` (max ready tasks handed to an executor per
  ``submit_batch`` call, default 64) and ``dispatch_drain_interval`` (the
  dispatcher thread's idle poll in seconds, default 0.05 — arrival of work
  wakes it immediately, so this only bounds shutdown responsiveness),
* memoization and checkpointing settings,
* ``retain_task_records`` — by default the DFK *retires* a task record when
  the task reaches a final state, dropping its callable/arguments/futures so
  long runs hold O(1) memory per completed task; set True to keep the full
  records for post-run debugging,
* the multi-executor router's backpressure cap (``router_backpressure``):
  when set, an executor already holding that many outstanding tasks stops
  receiving new work while any peer is below the cap (load-aware spillover
  is always on; the cap bounds skew under sustained overload),
* the elasticity strategy and its cadence: ``strategy`` selects the engine
  (``none`` / ``simple`` / ``htex_auto_scale``), ``strategy_period`` its
  decision interval, and ``max_idletime`` the scale-in hysteresis — a block
  must be continuously idle this long before it may be drained (§4.4),
* monitoring, plus the live observability plane: ``metrics_enabled`` builds
  the shared :class:`~repro.observability.metrics.MetricsRegistry` (off → a
  zero-cost null registry), ``metrics_latency_buckets`` overrides the
  default latency histogram bounds, ``trace_enabled`` /
  ``trace_sampling`` control whether (and what fraction of) tasks carry an
  end-to-end trace context whose per-hop spans land in the monitoring
  store's ``task_spans`` table,
* the workflow-gateway service knobs (``service_*``): where the gateway
  binds (``service_host`` / ``service_port``), the per-tenant admission cap
  (``service_max_inflight_per_tenant`` — beyond it a tenant's submits get
  backpressure replies), the global dispatch window
  (``service_window`` — how many gateway tasks may sit in the DFK at once;
  the weighted fair-share queue orders everything beyond it), tenant
  weights (``service_tenant_weights`` / ``service_default_weight``),
  disconnected-session retention (``service_session_ttl_s``), the
  per-session completed-result replay buffer (``service_replay_limit``),
  and the HTTP/SSE edge knobs (``service_http_host`` / ``service_http_port``
  for the bind address, ``service_http_max_body`` for the request-body
  ceiling, ``service_http_keepalive_s`` for the SSE heartbeat interval),
  the durable-session store (``service_store_path`` — a SQLite file; when
  set, sessions, replay buffers, and accepted-but-unfinished tasks survive
  a gateway restart — and ``service_store_flush_ms``, the group-commit
  linger bounding how long an fsync batch may accumulate), and the shard
  router (``service_shard_vnodes`` hash-ring virtual nodes per shard,
  ``service_shard_spillover`` — how overloaded a tenant's home shard may be,
  relative to the least-loaded live shard, before work spills over), the
  live ops plane (``service_tenant_slos`` — per-tenant latency objectives,
  e.g. ``{"interactive": {"p99_ms": 250, "window_s": 60}}``, evaluated as
  multi-window burn rates by the gateway's SLO engine;
  ``service_store_degraded_ms`` — the session-store writer lag beyond which
  healthz reports ``degraded``; and the straggler detector's
  ``service_straggler_factor`` / ``service_straggler_min_age_s`` /
  ``service_straggler_min_samples`` guards),
* the run directory where logs, checkpoints, and monitoring land.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.checkpoint import CHECKPOINT_MODES
from repro.core.retry import RetryPolicy
from repro.errors import ConfigurationError, DuplicateExecutorLabelError
from repro.executors.base import ReproExecutor
from repro.executors.threads import ThreadPoolExecutor
from repro.monitoring.hub import MonitoringHub


class Config:
    """Execution configuration handed to the DataFlowKernel."""

    def __init__(
        self,
        executors: Optional[Sequence[ReproExecutor]] = None,
        app_cache: bool = True,
        checkpoint_mode: Optional[str] = None,
        checkpoint_files: Optional[List[str]] = None,
        checkpoint_period: float = 30.0,
        retries: int = 0,
        retry_backoff_s: float = 0.0,
        retry_policy: Optional[RetryPolicy] = None,
        retain_task_records: bool = False,
        dispatch_batch_size: int = 64,
        dispatch_drain_interval: float = 0.05,
        router_backpressure: Optional[int] = None,
        strategy: str = "simple",
        strategy_period: float = 0.2,
        max_idletime: float = 2.0,
        run_dir: str = "runinfo",
        monitoring: Optional[MonitoringHub] = None,
        usage_tracking: bool = False,
        initialize_logging: bool = False,
        service_host: str = "127.0.0.1",
        service_port: int = 0,
        service_max_inflight_per_tenant: int = 64,
        service_window: int = 128,
        service_session_ttl_s: float = 60.0,
        service_replay_limit: int = 1024,
        service_default_weight: int = 1,
        service_tenant_weights: Optional[Dict[str, int]] = None,
        service_http_host: str = "127.0.0.1",
        service_http_port: int = 0,
        service_http_max_body: int = 8 * 1024 * 1024,
        service_http_keepalive_s: float = 15.0,
        service_store_path: Optional[str] = None,
        service_store_flush_ms: float = 2.0,
        service_shard_vnodes: int = 64,
        service_shard_spillover: float = 2.0,
        service_tenant_slos: Optional[Dict[str, Dict[str, float]]] = None,
        service_store_degraded_ms: float = 1000.0,
        service_straggler_factor: float = 4.0,
        service_straggler_min_age_s: float = 0.5,
        service_straggler_min_samples: int = 20,
        metrics_enabled: bool = True,
        metrics_latency_buckets: Optional[List[float]] = None,
        trace_enabled: bool = True,
        trace_sampling: float = 1.0,
    ):
        if executors is None or len(list(executors)) == 0:
            executors = [ThreadPoolExecutor(label="threads", max_threads=4)]
        executors = list(executors)
        self._validate_executors(executors)
        if checkpoint_mode not in CHECKPOINT_MODES:
            raise ConfigurationError(
                f"checkpoint_mode must be one of {CHECKPOINT_MODES}, got {checkpoint_mode!r}"
            )
        if retries < 0:
            raise ConfigurationError("retries must be >= 0")
        if retry_backoff_s < 0:
            raise ConfigurationError("retry_backoff_s must be >= 0")
        if retry_policy is not None and not isinstance(retry_policy, RetryPolicy):
            raise ConfigurationError(
                f"retry_policy must be a RetryPolicy, got {retry_policy!r}"
            )
        if strategy not in ("none", "simple", "htex_auto_scale"):
            raise ConfigurationError(f"unknown strategy {strategy!r}")
        if strategy_period <= 0:
            raise ConfigurationError("strategy_period must be positive")
        if max_idletime < 0:
            raise ConfigurationError("max_idletime must be >= 0")
        if checkpoint_period <= 0:
            raise ConfigurationError("checkpoint_period must be positive")
        if dispatch_batch_size < 1:
            raise ConfigurationError("dispatch_batch_size must be >= 1")
        if dispatch_drain_interval <= 0:
            raise ConfigurationError("dispatch_drain_interval must be positive")
        if router_backpressure is not None and router_backpressure < 1:
            raise ConfigurationError("router_backpressure must be >= 1 when set")
        if service_max_inflight_per_tenant < 1:
            raise ConfigurationError("service_max_inflight_per_tenant must be >= 1")
        if service_window < 1:
            raise ConfigurationError("service_window must be >= 1")
        if service_session_ttl_s <= 0:
            raise ConfigurationError("service_session_ttl_s must be positive")
        if service_replay_limit < 1:
            raise ConfigurationError("service_replay_limit must be >= 1")
        if service_default_weight < 1:
            raise ConfigurationError("service_default_weight must be >= 1")
        if service_tenant_weights is not None:
            for tenant, weight in service_tenant_weights.items():
                if not isinstance(weight, int) or isinstance(weight, bool) or weight < 1:
                    raise ConfigurationError(
                        f"service tenant weight for {tenant!r} must be a positive integer, got {weight!r}"
                    )
        if service_http_max_body < 1024:
            raise ConfigurationError("service_http_max_body must be >= 1024 bytes")
        if service_http_keepalive_s <= 0:
            raise ConfigurationError("service_http_keepalive_s must be positive")
        if service_store_flush_ms < 0:
            raise ConfigurationError("service_store_flush_ms must be >= 0")
        if service_shard_vnodes < 1:
            raise ConfigurationError("service_shard_vnodes must be >= 1")
        if service_shard_spillover < 1.0:
            raise ConfigurationError("service_shard_spillover must be >= 1.0")
        if service_tenant_slos is not None:
            # The SLO engine's parser is the single source of truth for the
            # per-tenant spec shape; surface its complaints at config time.
            from repro.observability.slo import parse_tenant_slos
            try:
                parse_tenant_slos(service_tenant_slos)
            except (TypeError, ValueError, AttributeError) as exc:
                raise ConfigurationError(f"service_tenant_slos invalid: {exc}")
        if service_store_degraded_ms <= 0:
            raise ConfigurationError("service_store_degraded_ms must be positive")
        if service_straggler_factor <= 0:
            raise ConfigurationError("service_straggler_factor must be positive")
        if service_straggler_min_age_s < 0:
            raise ConfigurationError("service_straggler_min_age_s must be >= 0")
        if service_straggler_min_samples < 1:
            raise ConfigurationError("service_straggler_min_samples must be >= 1")
        if not 0.0 <= trace_sampling <= 1.0:
            raise ConfigurationError("trace_sampling must be within [0.0, 1.0]")
        if metrics_latency_buckets is not None:
            buckets = list(metrics_latency_buckets)
            if not buckets or buckets != sorted(buckets) or buckets[0] <= 0:
                raise ConfigurationError(
                    "metrics_latency_buckets must be a non-empty ascending "
                    "sequence of positive upper bounds"
                )

        self.executors: List[ReproExecutor] = executors
        self.app_cache = app_cache
        self.checkpoint_mode = checkpoint_mode
        self.checkpoint_files = list(checkpoint_files or [])
        self.checkpoint_period = checkpoint_period
        self.retries = retries
        self.retry_backoff_s = retry_backoff_s
        # The policy classifies failures (fail-fast vs transient vs ordinary)
        # and computes per-attempt backoff; None means "derive from the
        # legacy retry_backoff_s knob", which the DFK does at construction.
        self.retry_policy = retry_policy if retry_policy is not None else RetryPolicy.from_config(retry_backoff_s)
        self.retain_task_records = bool(retain_task_records)
        self.dispatch_batch_size = dispatch_batch_size
        self.dispatch_drain_interval = dispatch_drain_interval
        self.router_backpressure = router_backpressure
        self.strategy = strategy
        self.strategy_period = strategy_period
        self.max_idletime = max_idletime
        self.run_dir = run_dir
        self.monitoring = monitoring
        self.usage_tracking = usage_tracking
        self.initialize_logging = initialize_logging
        self.service_host = service_host
        self.service_port = service_port
        self.service_max_inflight_per_tenant = service_max_inflight_per_tenant
        self.service_window = service_window
        self.service_session_ttl_s = service_session_ttl_s
        self.service_replay_limit = service_replay_limit
        self.service_default_weight = service_default_weight
        self.service_tenant_weights = dict(service_tenant_weights or {})
        self.service_http_host = service_http_host
        self.service_http_port = service_http_port
        self.service_http_max_body = service_http_max_body
        self.service_http_keepalive_s = service_http_keepalive_s
        self.service_store_path = service_store_path
        self.service_store_flush_ms = service_store_flush_ms
        self.service_shard_vnodes = service_shard_vnodes
        self.service_shard_spillover = service_shard_spillover
        self.service_tenant_slos = dict(service_tenant_slos or {})
        self.service_store_degraded_ms = float(service_store_degraded_ms)
        self.service_straggler_factor = float(service_straggler_factor)
        self.service_straggler_min_age_s = float(service_straggler_min_age_s)
        self.service_straggler_min_samples = int(service_straggler_min_samples)
        self.metrics_enabled = bool(metrics_enabled)
        self.metrics_latency_buckets = (
            list(metrics_latency_buckets) if metrics_latency_buckets is not None else None
        )
        self.trace_enabled = bool(trace_enabled)
        self.trace_sampling = float(trace_sampling)

    # ------------------------------------------------------------------
    @staticmethod
    def _validate_executors(executors: Sequence[ReproExecutor]) -> None:
        labels = set()
        for executor in executors:
            if not isinstance(executor, ReproExecutor):
                raise ConfigurationError(f"{executor!r} is not an executor")
            if executor.label in labels:
                raise DuplicateExecutorLabelError(executor.label)
            labels.add(executor.label)

    @property
    def executor_labels(self) -> List[str]:
        return [e.label for e in self.executors]

    def get_executor(self, label: str) -> ReproExecutor:
        for executor in self.executors:
            if executor.label == label:
                return executor
        raise ConfigurationError(f"no executor labelled {label!r}")

    def __repr__(self) -> str:
        return (
            f"Config(executors={self.executor_labels}, retries={self.retries}, "
            f"app_cache={self.app_cache}, checkpoint_mode={self.checkpoint_mode!r}, "
            f"strategy={self.strategy!r}, run_dir={self.run_dir!r})"
        )
