"""The paper's primary contribution: the DataFlowKernel and its supporting machinery.

``DataFlowKernel`` / ``DataFlowKernelLoader`` are exposed lazily to avoid a
circular import: the Config module needs :mod:`repro.core.checkpoint` while
the DFK module needs Config.
"""

from repro.core.states import States, FINAL_STATES, FINAL_FAILURE_STATES
from repro.core.futures import AppFuture, DataFuture
from repro.core.guidelines import recommend_executor

__all__ = [
    "States",
    "FINAL_STATES",
    "FINAL_FAILURE_STATES",
    "AppFuture",
    "DataFuture",
    "DataFlowKernel",
    "DataFlowKernelLoader",
    "recommend_executor",
]


def __getattr__(name):
    if name in ("DataFlowKernel", "DataFlowKernelLoader"):
        from repro.core import dflow

        return getattr(dflow, name)
    raise AttributeError(f"module 'repro.core' has no attribute {name!r}")
