"""Checkpointing (§3.7, §4.1).

Parsl provides fault tolerance at the level of programs: tasks are the unit
of checkpointing, and a checkpoint records the memoization table (hash →
result) so that re-running a program skips every App already executed with
the same arguments. Checkpoint *modes* control when checkpoints are written:

* ``task_exit``   — after every task completes,
* ``periodic``    — on a timer (``checkpoint_period``),
* ``dfk_exit``    — when the DataFlowKernel is cleaned up,
* ``manual``      — only when the user calls ``dfk.checkpoint()``.

A checkpoint is two files under ``<run_dir>/checkpoint/``:

* ``tasks.pkl`` — a full snapshot of the memo table, written atomically
  (temp file + fsync + rename) so a reader never sees a torn snapshot;
* ``tasks.delta.pkl`` — an append-only log of pickled *segments*, each the
  entries added since the previous write. ``task_exit`` and ``periodic``
  modes append here, so checkpointing the Nth task costs O(delta) bytes,
  not O(N). Writing a full snapshot supersedes (and removes) the log.

Loading replays the snapshot then the delta segments; a truncated trailing
segment (a crash mid-append) is ignored, keeping everything before it.
Checkpoints can be loaded into a later run via ``Config.checkpoint_files``.
"""

from __future__ import annotations

import logging
import os
import pickle
import time
from typing import Any, Dict, Iterable, List, Optional

logger = logging.getLogger(__name__)

#: Recognized checkpoint modes (None disables checkpointing).
CHECKPOINT_MODES = (None, "task_exit", "periodic", "dfk_exit", "manual")

_CHECKPOINT_FILENAME = "tasks.pkl"
_DELTA_FILENAME = "tasks.delta.pkl"


def checkpoint_dir_for_run(run_dir: str) -> str:
    return os.path.join(run_dir, "checkpoint")


def write_checkpoint(run_dir: str, table: Dict[str, Any]) -> str:
    """Atomically write a full memo-table snapshot; returns the path.

    The payload lands in a temp file which is fsync'd and renamed over
    ``tasks.pkl``, so a concurrent or post-crash reader sees either the old
    or the new snapshot, never a partial one. Any delta log is removed —
    the snapshot covers everything the log recorded.
    """
    cp_dir = checkpoint_dir_for_run(run_dir)
    os.makedirs(cp_dir, exist_ok=True)
    path = os.path.join(cp_dir, _CHECKPOINT_FILENAME)
    tmp_path = path + ".tmp"
    payload = {"written_at": time.time(), "entries": table}
    with open(tmp_path, "wb") as fh:
        pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp_path, path)
    delta_path = os.path.join(cp_dir, _DELTA_FILENAME)
    try:
        os.remove(delta_path)
    except FileNotFoundError:
        pass
    logger.info("wrote checkpoint with %d entries to %s", len(table), path)
    return path


def append_checkpoint(run_dir: str, entries: Dict[str, Any]) -> Optional[str]:
    """Append one delta segment (entries since the last write) to the log.

    This is the O(delta) path used by ``task_exit`` and ``periodic``
    checkpoint modes. Empty deltas are a no-op. Appends are flushed but not
    fsync'd — a crash can lose the tail segment, which the loader tolerates.
    """
    if not entries:
        return None
    cp_dir = checkpoint_dir_for_run(run_dir)
    os.makedirs(cp_dir, exist_ok=True)
    path = os.path.join(cp_dir, _DELTA_FILENAME)
    segment = {"written_at": time.time(), "entries": entries}
    with open(path, "ab") as fh:
        pickle.dump(segment, fh, protocol=pickle.HIGHEST_PROTOCOL)
        fh.flush()
    logger.debug("appended checkpoint delta with %d entries to %s", len(entries), path)
    return path


def _resolve_checkpoint_path(entry: str) -> Optional[str]:
    """Accept either a checkpoint file, a checkpoint dir, or a run dir."""
    if os.path.isfile(entry):
        return entry
    candidate = os.path.join(entry, _CHECKPOINT_FILENAME)
    if os.path.isfile(candidate):
        return candidate
    candidate = os.path.join(entry, "checkpoint", _CHECKPOINT_FILENAME)
    if os.path.isfile(candidate):
        return candidate
    # A run that only ever appended deltas has no snapshot file.
    for candidate in (os.path.join(entry, _DELTA_FILENAME),
                      os.path.join(entry, "checkpoint", _DELTA_FILENAME)):
        if os.path.isfile(candidate):
            return candidate
    return None


def _load_snapshot(path: str) -> Dict[str, Any]:
    with open(path, "rb") as fh:
        payload = pickle.load(fh)
    return payload.get("entries", {}) if isinstance(payload, dict) else {}


def _load_delta(path: str) -> Dict[str, Any]:
    """Replay an append-only delta log; a truncated tail segment is dropped."""
    merged: Dict[str, Any] = {}
    with open(path, "rb") as fh:
        while True:
            try:
                segment = pickle.load(fh)
            except EOFError:
                break
            except (pickle.UnpicklingError, AttributeError, ValueError) as exc:
                logger.warning(
                    "truncated/corrupt delta segment in %s (%s); keeping %d entries loaded so far",
                    path, exc, len(merged),
                )
                break
            if isinstance(segment, dict):
                merged.update(segment.get("entries", {}))
    return merged


def load_checkpoints(sources: Optional[Iterable[str]]) -> Dict[str, Any]:
    """Merge the memo tables from the given checkpoint files/dirs.

    For each source the full snapshot (if any) is loaded first, then the
    delta log replayed over it, so the result reflects every completed write.
    """
    merged: Dict[str, Any] = {}
    for entry in sources or []:
        path = _resolve_checkpoint_path(entry)
        if path is None:
            logger.warning("no checkpoint found at %s; skipping", entry)
            continue
        loaded: Dict[str, Any] = {}
        try:
            if os.path.basename(path) == _DELTA_FILENAME:
                loaded.update(_load_delta(path))
            else:
                loaded.update(_load_snapshot(path))
                delta_path = os.path.join(os.path.dirname(path), _DELTA_FILENAME)
                if os.path.isfile(delta_path):
                    loaded.update(_load_delta(delta_path))
        except (OSError, pickle.UnpicklingError) as exc:
            logger.warning("failed to load checkpoint %s: %s", path, exc)
            continue
        merged.update(loaded)
        logger.info("loaded %d checkpoint entries from %s", len(loaded), path)
    return merged


def most_recent_run_dirs(base_dir: str, limit: int = 1) -> List[str]:
    """Return the newest run directories under ``base_dir`` (for get_all_checkpoints-style use)."""
    if not os.path.isdir(base_dir):
        return []
    candidates = [
        os.path.join(base_dir, d) for d in os.listdir(base_dir) if os.path.isdir(os.path.join(base_dir, d))
    ]
    candidates.sort(key=os.path.getmtime, reverse=True)
    return candidates[:limit]


def get_all_checkpoints(base_dir: str = "runinfo") -> List[str]:
    """Every checkpoint file found under ``base_dir`` (newest runs first)."""
    found = []
    for run_dir in most_recent_run_dirs(base_dir, limit=10**6):
        path = _resolve_checkpoint_path(run_dir)
        if path is not None:
            found.append(path)
    return found
