"""Checkpointing (§3.7, §4.1).

Parsl provides fault tolerance at the level of programs: tasks are the unit
of checkpointing, and a checkpoint records the memoization table (hash →
result) so that re-running a program skips every App already executed with
the same arguments. Checkpoint *modes* control when checkpoints are written:

* ``task_exit``   — after every task completes,
* ``periodic``    — on a timer (``checkpoint_period``),
* ``dfk_exit``    — when the DataFlowKernel is cleaned up,
* ``manual``      — only when the user calls ``dfk.checkpoint()``.

Checkpoints are plain pickle files under ``<run_dir>/checkpoint/`` and can be
loaded into a later run via ``Config.checkpoint_files``.
"""

from __future__ import annotations

import logging
import os
import pickle
import time
from typing import Any, Dict, Iterable, List, Optional

logger = logging.getLogger(__name__)

#: Recognized checkpoint modes (None disables checkpointing).
CHECKPOINT_MODES = (None, "task_exit", "periodic", "dfk_exit", "manual")

_CHECKPOINT_FILENAME = "tasks.pkl"


def checkpoint_dir_for_run(run_dir: str) -> str:
    return os.path.join(run_dir, "checkpoint")


def write_checkpoint(run_dir: str, table: Dict[str, Any]) -> str:
    """Write the memo table to ``<run_dir>/checkpoint/tasks.pkl``; returns the path."""
    cp_dir = checkpoint_dir_for_run(run_dir)
    os.makedirs(cp_dir, exist_ok=True)
    path = os.path.join(cp_dir, _CHECKPOINT_FILENAME)
    tmp_path = path + ".tmp"
    payload = {"written_at": time.time(), "entries": table}
    with open(tmp_path, "wb") as fh:
        pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
    os.replace(tmp_path, path)
    logger.info("wrote checkpoint with %d entries to %s", len(table), path)
    return path


def _resolve_checkpoint_path(entry: str) -> Optional[str]:
    """Accept either a checkpoint file, a checkpoint dir, or a run dir."""
    if os.path.isfile(entry):
        return entry
    candidate = os.path.join(entry, _CHECKPOINT_FILENAME)
    if os.path.isfile(candidate):
        return candidate
    candidate = os.path.join(entry, "checkpoint", _CHECKPOINT_FILENAME)
    if os.path.isfile(candidate):
        return candidate
    return None


def load_checkpoints(sources: Optional[Iterable[str]]) -> Dict[str, Any]:
    """Merge the memo tables from the given checkpoint files/dirs."""
    merged: Dict[str, Any] = {}
    for entry in sources or []:
        path = _resolve_checkpoint_path(entry)
        if path is None:
            logger.warning("no checkpoint found at %s; skipping", entry)
            continue
        try:
            with open(path, "rb") as fh:
                payload = pickle.load(fh)
        except (OSError, pickle.UnpicklingError) as exc:
            logger.warning("failed to load checkpoint %s: %s", path, exc)
            continue
        entries = payload.get("entries", {}) if isinstance(payload, dict) else {}
        merged.update(entries)
        logger.info("loaded %d checkpoint entries from %s", len(entries), path)
    return merged


def most_recent_run_dirs(base_dir: str, limit: int = 1) -> List[str]:
    """Return the newest run directories under ``base_dir`` (for get_all_checkpoints-style use)."""
    if not os.path.isdir(base_dir):
        return []
    candidates = [
        os.path.join(base_dir, d) for d in os.listdir(base_dir) if os.path.isdir(os.path.join(base_dir, d))
    ]
    candidates.sort(key=os.path.getmtime, reverse=True)
    return candidates[:limit]


def get_all_checkpoints(base_dir: str = "runinfo") -> List[str]:
    """Every checkpoint file found under ``base_dir`` (newest runs first)."""
    found = []
    for run_dir in most_recent_run_dirs(base_dir, limit=10**6):
        path = _resolve_checkpoint_path(run_dir)
        if path is not None:
            found.append(path)
    return found
