"""The DataFlowKernel (DFK): Parsl's execution-management engine (§4.1).

The DFK constructs and orchestrates the dynamic task dependency graph:

* every App invocation registers a task (a node); futures passed between
  Apps become edges, encoded as callbacks on the dependency futures, so the
  DFK is event-driven and the cost of executing a graph with *n* tasks and
  *e* edges is O(n + e);
* once all of a task's dependencies resolve successfully the task is placed
  on an internal submission queue; a dedicated dispatcher thread drains that
  queue and hands the chosen executor *batches* of ready tasks via
  ``submit_batch``, so executor selection and task serialization happen off
  the app submission path and bursts of ready tasks travel as one batch
  (tuned by ``Config.dispatch_batch_size`` /
  ``Config.dispatch_drain_interval``);
* executor choice goes through the scheduling subsystem's
  :class:`~repro.scheduling.router.ExecutorRouter`: label match (the spec's
  affinity, else the decorator's ``executors=`` hint) → load-aware spillover
  → the ``Config.router_backpressure`` cap; per-task
  :class:`~repro.scheduling.spec.ResourceSpec` objects (cores, memory and
  walltime hints, priority) ride along to the executor;
* failures are retried up to ``Config.retries`` times; exhausted retries (or
  failed dependencies) surface through the AppFuture as wrapped exceptions;
* memoization and checkpointing short-circuit tasks whose function body and
  arguments hash to a previously recorded execution;
* remote Files appearing in ``inputs``/``outputs`` cause transparent staging
  tasks to be injected into the graph ahead of / behind the task;
* task state transitions and (optionally) per-task resource usage are sent
  to the monitoring hub;
* an elasticity strategy runs on a timer, growing and shrinking executor
  blocks to match the outstanding load.

Per-task overhead is O(1) in time and resident memory: completion tracking
is counter-based (no table scans — see ``_set_task_status``), finished task
records are *retired* to compact shells (``Config.retain_task_records``
keeps them whole), and ``task_exit``/``periodic`` checkpoints append only
the delta since the last write.
"""

from __future__ import annotations

import atexit
import logging
import os
import queue
import random
import threading
import time
from concurrent.futures import CancelledError, Future
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.config.config import Config
from repro.core import retry as retry_mod
from repro.core.checkpoint import append_checkpoint, load_checkpoints, write_checkpoint
from repro.core.futures import AppFuture, DataFuture
from repro.core.memoization import Memoizer, _MemoHit
from repro.core.states import FINAL_STATES, States
from repro.core.strategy import Strategy
from repro.core.taskrecord import TaskRecord
from repro.data.data_manager import DataManager
from repro.data.files import File
from repro.errors import (
    DataFlowKernelClosedError,
    DependencyError,
    JoinError,
)
from repro.monitoring.messages import MessageType
from repro.observability.metrics import NULL_REGISTRY, Counter, MetricsRegistry
from repro.observability.trace import flush_spans, new_trace, next_attempt, stamp
from repro.scheduling.router import ExecutorRouter
from repro.scheduling.spec import ResourceSpec, ResourceSpecLike
from repro.utils.ids import make_uid
from repro.utils.timers import RepeatedTimer

logger = logging.getLogger(__name__)


class DataFlowKernel:
    """Manage the parallel execution of a Parsl-style program."""

    def __init__(self, config: Optional[Config] = None):
        self.config = config or Config()
        #: Failure classification + backoff (Config builds a default from
        #: retry_backoff_s when no explicit policy is given).
        self.retry_policy = self.config.retry_policy
        self.run_id = make_uid("run")
        timestamp = time.strftime("%Y%m%d-%H%M%S")
        self.run_dir = os.path.join(self.config.run_dir, f"{timestamp}-{self.run_id[-6:]}")
        os.makedirs(self.run_dir, exist_ok=True)

        # Monitoring -----------------------------------------------------
        self.monitoring = self.config.monitoring
        if self.monitoring is not None:
            self.monitoring.start()
            self.monitoring.send(
                MessageType.WORKFLOW_INFO,
                {"run_id": self.run_id, "run_dir": self.run_dir, "started_at": time.time()},
            )

        # Live metrics ---------------------------------------------------
        # One registry per kernel; executors share it (the interchange
        # registers callback gauges over its existing plain-int counters).
        # With metrics off the shared null registry makes every record call
        # a no-op, so instrument sites never branch.
        if self.config.metrics_enabled:
            buckets = self.config.metrics_latency_buckets
            self.metrics = MetricsRegistry(default_buckets=buckets) if buckets else MetricsRegistry()
        else:
            self.metrics = NULL_REGISTRY
        self._m_submitted = self.metrics.counter(
            "repro_dfk_tasks_submitted_total", "Tasks registered with the DataFlowKernel"
        )
        self._m_retries = self.metrics.counter(
            "repro_dfk_task_retries_total", "Task attempts re-enqueued by the retry policy"
        )
        self._m_duration = self.metrics.histogram(
            "repro_dfk_task_duration_seconds", "Submit-to-final-state latency per task"
        )
        self.metrics.gauge(
            "repro_dfk_dispatch_queue_depth",
            "Ready tasks waiting for the batching dispatcher",
            callback=lambda: self._dispatch_queue.qsize(),
        )
        self.metrics.gauge(
            "repro_dfk_outstanding_tasks",
            "Submitted tasks not yet in a final state",
            callback=self.outstanding_tasks,
        )
        #: Per-final-state children of repro_dfk_tasks_completed_total, cached
        #: so the completion path never touches the registry lock.
        self._m_completed: Dict[str, Counter] = {}

        # Executors ------------------------------------------------------
        self.executors: Dict[str, Any] = {}
        for executor in self.config.executors:
            executor.run_dir = self.run_dir
            # Wire monitoring before start() so block state changes made
            # while bringing up init_blocks are captured as BLOCK_INFO.
            executor.monitoring_radio = self.monitoring
            executor.metrics = self.metrics
            executor.start()
            self.executors[executor.label] = executor

        # Data management --------------------------------------------------
        self.data_manager = DataManager(dfk=self, working_dir=os.path.join(self.run_dir, "staging"))
        self.data_manager.ensure_worker_visibility()

        # Memoization / checkpointing -------------------------------------
        seed_table = load_checkpoints(self.config.checkpoint_files)
        self.memoizer = Memoizer(
            enabled=self.config.app_cache,
            seed_table=seed_table,
            # Dirty-delta tracking only pays off for modes that write while
            # the run is live; with checkpointing off it would just be a
            # second, never-drained copy of the table.
            track_dirty=self.config.checkpoint_mode in ("task_exit", "periodic", "manual"),
        )
        self._checkpoint_lock = threading.Lock()
        self._checkpoint_timer: Optional[RepeatedTimer] = None
        if self.config.checkpoint_mode == "periodic":
            self._checkpoint_timer = RepeatedTimer(
                self.config.checkpoint_period,
                lambda: self.checkpoint(incremental=True),
                name="checkpoint-timer",
            )
            self._checkpoint_timer.start()

        # Elasticity strategy ----------------------------------------------
        self.strategy = Strategy(self.config.strategy, max_idletime=self.config.max_idletime)
        self._strategy_timer = RepeatedTimer(
            self.config.strategy_period,
            lambda: self.strategy.strategize(list(self.executors.values())),
            name="strategy-timer",
        )
        self._strategy_timer.start()

        # Task table -------------------------------------------------------
        self.tasks: Dict[int, TaskRecord] = {}
        self._task_counter = 0
        self._task_counter_lock = threading.Lock()
        self._tasks_lock = threading.Lock()
        self._cleanup_called = False
        self._rng = random.Random()

        # Multi-executor routing (label match → load-aware spillover →
        # backpressure cap) lives in the scheduling subsystem.
        self.router = ExecutorRouter(
            self.executors, rng=self._rng, backpressure=self.config.router_backpressure
        )

        # Pending retry-backoff timers: timer -> (task, args, kwargs). Tracked
        # so cleanup() can cancel them and fail their tasks fast instead of
        # letting a late timer enqueue into a dead dispatcher.
        self._retry_timers: Dict[threading.Timer, Tuple[TaskRecord, tuple, dict]] = {}
        self._retry_timers_lock = threading.Lock()

        # Completion fan-out hooks -----------------------------------------
        # Called once per task when it reaches a final state, *after* its
        # AppFuture has resolved. The gateway service uses this to stream
        # results to remote tenants without polling the task table.
        self._completion_hooks: List[Any] = []
        self._completion_hooks_lock = threading.Lock()

        # Event-driven completion tracking ---------------------------------
        # Per-state counters and the outstanding (non-final) count are kept
        # exact at transition time under this condition, so task_summary(),
        # outstanding_tasks(), and wait_for_current_tasks() are O(1) reads
        # (the latter waking on notification) instead of O(n) table scans.
        self._completion_cv = threading.Condition()
        self._state_counts: Dict[States, int] = {state: 0 for state in States}
        self._outstanding_count = 0

        # Batched dispatch -------------------------------------------------
        # Ready tasks are queued here and drained by the dispatcher thread,
        # which hands executors *batches* via submit_batch — moving executor
        # selection and serialization off the app submission path.
        self._dispatch_queue: "queue.Queue[Tuple[TaskRecord, tuple, dict]]" = queue.Queue()
        self._dispatch_stop = threading.Event()
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="dfk-dispatcher", daemon=True
        )
        self._dispatcher.start()

        atexit.register(self._atexit_cleanup)
        logger.info("DataFlowKernel %s started with executors %s", self.run_id, list(self.executors))

    # ==================================================================
    # Submission
    # ==================================================================
    def submit(
        self,
        func,
        app_args: Sequence[Any] = (),
        app_kwargs: Optional[Dict[str, Any]] = None,
        executors: Union[str, Sequence[str]] = "all",
        cache: bool = True,
        func_name: Optional[str] = None,
        join: bool = False,
        ignore_for_cache: Optional[Sequence[str]] = None,
        is_staging: bool = False,
        resource_spec: ResourceSpecLike = None,
        priority: Optional[int] = None,
        tag: Optional[str] = None,
        trace: Optional[Dict[str, Any]] = None,
    ) -> AppFuture:
        """Register one task with the dataflow graph and return its AppFuture.

        ``resource_spec`` (a mapping or :class:`ResourceSpec`) declares what
        the task asks of the scheduling layer; ``priority`` is a convenience
        override for its ``priority`` field. A *malformed* spec (unknown
        keys, bad types) raises here, in the caller's stack; a well-formed
        spec the chosen executor cannot satisfy (e.g. more cores than its
        managers run) surfaces through the AppFuture as a
        :class:`~repro.errors.ResourceSpecError` without burning retries —
        the failure is deterministic, so the retry machinery skips it.

        ``tag`` is an opaque submitter label (the gateway service sets the
        tenant name): it rides on the task record, survives retirement, and
        lands in every TASK_STATE monitoring row.

        ``trace`` adopts an existing trace context (the gateway mints one at
        admission so the waterfall covers the fair-share wait); when None and
        ``Config.trace_enabled``, a fresh context is minted here — subject to
        ``Config.trace_sampling`` — and stamped ``submitted``.
        """
        if self._cleanup_called:
            raise DataFlowKernelClosedError("cannot submit to a DataFlowKernel after cleanup()")
        app_kwargs = dict(app_kwargs or {})
        func_name = func_name or getattr(func, "__name__", "app")

        spec = ResourceSpec.from_user(resource_spec)
        if priority is not None:
            # with_priority rebuilds the (frozen) spec, so the replacement
            # value goes through the same validation as a spec-borne one —
            # priority=9.7 raises ResourceSpecError rather than truncating.
            spec = spec.with_priority(priority)

        with self._task_counter_lock:
            task_id = self._task_counter
            self._task_counter += 1

        if trace is not None:
            # Adopted from the gateway: "submitted" is already stamped there.
            trace["task"] = task_id
        elif self.config.trace_enabled and (
            self.config.trace_sampling >= 1.0
            or self._rng.random() < self.config.trace_sampling
        ):
            trace = new_trace(task_id)
            stamp(trace, "submitted")
        self._m_submitted.inc()

        executor_label = self._choose_executor(executors, join, spec)

        task = TaskRecord(
            id=task_id,
            func=func,
            func_name=func_name,
            args=tuple(app_args),
            kwargs=app_kwargs,
            executor=executor_label,
            status=States.pending,
            memoize=cache,
            join=join,
            is_staging=is_staging,
            resource_specification=spec.to_wire(),
            priority=spec.priority,
            tag=tag,
            trace=trace,
        )
        app_fu = AppFuture(task_record=task)
        task.app_fu = app_fu
        with self._tasks_lock:
            self.tasks[task_id] = task
        with self._completion_cv:
            self._state_counts[States.pending] += 1
            self._outstanding_count += 1

        # Declared outputs become DataFutures on the AppFuture.
        outputs = app_kwargs.get("outputs", [])
        normalized_outputs = []
        for out in outputs:
            out_file = out if isinstance(out, File) else File(str(out))
            normalized_outputs.append(out_file)
            app_fu.add_output(DataFuture(app_fu, out_file, tid=task_id))
        if normalized_outputs:
            app_kwargs["outputs"] = normalized_outputs
            task.outputs = normalized_outputs

        # Remote input files become staging dependencies.
        self._inject_staging(task)

        # Dependencies: every future appearing in args/kwargs.
        task.depends = self._gather_dependencies(task.args, task.kwargs)
        self._send_task_state(task, States.pending)

        self._register_dependency_callbacks(task)
        self.launch_if_ready(task)
        return app_fu

    # ------------------------------------------------------------------
    def _choose_executor(
        self,
        executors: Union[str, Sequence[str]],
        join: bool,
        spec: Optional[ResourceSpec] = None,
    ) -> str:
        """Route a task to an executor label (see :class:`ExecutorRouter`)."""
        return self.router.route(executors, spec=spec, join=join)

    # ------------------------------------------------------------------
    def _inject_staging(self, task: TaskRecord) -> None:
        """Replace remote Files in ``inputs`` (and positional args) with staging futures."""
        kwargs = task.kwargs
        inputs = kwargs.get("inputs")
        if isinstance(inputs, (list, tuple)):
            staged_inputs = []
            for item in inputs:
                if isinstance(item, File) and self.data_manager.requires_staging(item):
                    executor_label = None if task.executor in ("all", "_dfk_internal") else task.executor
                    staged_inputs.append(self.data_manager.stage_in(item, executor_label))
                else:
                    staged_inputs.append(item)
            kwargs["inputs"] = staged_inputs
        new_args = []
        for item in task.args:
            if isinstance(item, File) and self.data_manager.requires_staging(item):
                executor_label = None if task.executor in ("all", "_dfk_internal") else task.executor
                new_args.append(self.data_manager.stage_in(item, executor_label))
            else:
                new_args.append(item)
        task.args = tuple(new_args)

    # ------------------------------------------------------------------
    @staticmethod
    def _iter_values(args: Sequence[Any], kwargs: Dict[str, Any]):
        for value in args:
            yield value
            if isinstance(value, (list, tuple)):
                yield from value
        for value in kwargs.values():
            yield value
            if isinstance(value, (list, tuple)):
                yield from value

    def _gather_dependencies(self, args: Sequence[Any], kwargs: Dict[str, Any]) -> List[Future]:
        return [value for value in self._iter_values(args, kwargs) if isinstance(value, Future)]

    def _register_dependency_callbacks(self, task: TaskRecord) -> None:
        for dep in task.depends:
            if not dep.done():
                dep.add_done_callback(lambda _fut, t=task: self.launch_if_ready(t))

    # ------------------------------------------------------------------
    def _set_task_status(self, task: TaskRecord, new_state: States) -> None:
        """The single place task states change: keeps the per-state counters
        and the outstanding count exact, and wakes ``wait_for_current_tasks``
        waiters when the last outstanding task reaches a final state."""
        with self._completion_cv:
            old_state = task.status
            if old_state == new_state:
                return
            task.status = new_state
            self._state_counts[old_state] -= 1
            self._state_counts[new_state] += 1
            if old_state not in FINAL_STATES and new_state in FINAL_STATES:
                self._outstanding_count -= 1
                if self._outstanding_count == 0:
                    self._completion_cv.notify_all()
            elif old_state in FINAL_STATES and new_state not in FINAL_STATES:
                self._outstanding_count += 1

    def _retire_task(self, task: TaskRecord) -> None:
        """Release a finished task's heavy references (unless retention is on)."""
        if not self.config.retain_task_records:
            task.retire()

    # ==================================================================
    # Launching
    # ==================================================================
    def launch_if_ready(self, task: TaskRecord) -> None:
        """Launch the task if every dependency has resolved (edge-triggered)."""
        if task.status != States.pending:
            return
        if any(not dep.done() for dep in task.depends):
            return
        with task.task_launch_lock:
            if task.status != States.pending:
                return
            failed_deps = [
                (dep.exception(), getattr(dep, "tid", None))
                for dep in task.depends
                if dep.exception() is not None
            ]
            if failed_deps:
                self._fail_task(task, DependencyError(failed_deps, task.id), States.dep_fail)
                return
            # All dependencies succeeded: substitute results for futures.
            args, kwargs = self._sanitize_inputs(task)
            self._launch_task(task, args, kwargs)

    def _sanitize_inputs(self, task: TaskRecord):
        def resolve(value):
            if isinstance(value, Future):
                return value.result()
            if isinstance(value, list):
                return [resolve(v) for v in value]
            if isinstance(value, tuple):
                return tuple(resolve(v) for v in value)
            return value

        args = tuple(resolve(v) for v in task.args)
        kwargs = {k: resolve(v) for k, v in task.kwargs.items()}
        return args, kwargs

    def _launch_task(self, task: TaskRecord, args, kwargs) -> None:
        # Memoization / checkpoint lookup (synchronous, so repeated
        # invocations short-circuit without a trip through the dispatcher).
        memo = self.memoizer.check(task)
        if isinstance(memo, _MemoHit):
            task.from_memo = True
            self._complete_task(task, memo.result, States.memo_done)
            self._retire_task(task)
            return

        if task.join:
            self._launch_join_task(task, args, kwargs)
            return

        self._enqueue_for_dispatch(task, args, kwargs)

    def _enqueue_for_dispatch(self, task: TaskRecord, args, kwargs) -> None:
        """Mark the task launched and queue it for the batching dispatcher."""
        if self._dispatch_stop.is_set():
            # The kernel is (or has finished) cleaning up — e.g. a retry
            # backoff timer fired after shutdown. Fail rather than enqueue
            # onto a queue nobody drains, so the AppFuture always resolves.
            self._fail_task(
                task, CancelledError(f"task {task.id} not dispatched: DataFlowKernel is shut down"), States.failed
            )
            return
        self._set_task_status(task, States.launched)
        self._send_task_state(task, States.launched)
        stamp(task.trace, "queued")
        self._dispatch_queue.put((task, args, kwargs))

    # ------------------------------------------------------------------
    # Batched dispatch (the submission hot path)
    # ------------------------------------------------------------------
    def _dispatch_loop(self) -> None:
        """Drain ready tasks and hand executors batches instead of singles.

        Blocks for the first ready task, then greedily collects whatever else
        is already queued (up to ``Config.dispatch_batch_size``), so bursts of
        ready tasks — wide fan-outs, many independent submissions — reach the
        executor as one ``submit_batch`` call while a lone task is dispatched
        immediately.
        """
        batch_size = self.config.dispatch_batch_size
        drain_interval = self.config.dispatch_drain_interval
        while not self._dispatch_stop.is_set():
            try:
                entry = self._dispatch_queue.get(timeout=drain_interval)
            except queue.Empty:
                continue
            entries = [entry]
            while len(entries) < batch_size:
                try:
                    entries.append(self._dispatch_queue.get_nowait())
                except queue.Empty:
                    break
            try:
                self._dispatch_entries(entries)
            except Exception:  # noqa: BLE001 - the dispatcher must not die
                logger.exception("dispatcher failed on a batch of %d tasks", len(entries))
            finally:
                # Drop the batch before blocking again: these loop locals
                # would otherwise pin the last batch's callables and
                # arguments for as long as the dispatcher sits idle,
                # defeating task-record retirement.
                del entry, entries

    def _dispatch_entries(self, entries: List[Tuple[TaskRecord, tuple, dict]]) -> None:
        """Group a drained batch by executor and submit each group in one call."""
        groups: Dict[str, List[Tuple[TaskRecord, tuple, dict]]] = {}
        for task, args, kwargs in entries:
            executor = self.executors.get(task.executor)
            if executor is None or (executor.bad_state_is_set and task.fail_count > 0):
                # Unresolvable label, or a retry whose executor has gone bad:
                # re-route (the spec's affinity still applies). A first launch
                # keeps its requested placement even on a bad executor — the
                # submission failure flows through the normal retry path,
                # which re-routes then.
                task.executor = self._choose_executor(
                    "all", join=False, spec=ResourceSpec.from_wire(task.resource_specification)
                )
            groups.setdefault(task.executor, []).append((task, args, kwargs))
        for label, group in groups.items():
            executor = self.executors[label]
            for t, _a, _k in group:
                stamp(t.trace, "routed")
            requests = [(t.func, t.resource_specification, a, k, t.trace) for t, a, k in group]
            try:
                exec_futures = executor.submit_batch(requests)
            except Exception as exc:  # noqa: BLE001 - whole-batch submission failure
                for t, a, k in group:
                    self._handle_failure(t, exc, a, k)
                continue
            for (t, a, k), exec_fu in zip(group, exec_futures):
                t.exec_fu = exec_fu
                exec_fu.add_done_callback(
                    lambda fut, t=t, a=a, k=k: self._handle_exec_update(t, fut, a, k)
                )

    # ------------------------------------------------------------------
    def _launch_join_task(self, task: TaskRecord, args, kwargs) -> None:
        """Run a join app's body locally; its result must be a future (or list of futures)."""
        self._set_task_status(task, States.joining)
        self._send_task_state(task, States.joining)
        try:
            inner = task.func(*args, **kwargs)
        except Exception as exc:  # noqa: BLE001
            self._fail_task(task, exc, States.failed)
            return
        futures: List[Future]
        if isinstance(inner, Future):
            futures = [inner]
            scalar = True
        elif isinstance(inner, (list, tuple)) and all(isinstance(f, Future) for f in inner) and inner:
            futures = list(inner)
            scalar = False
        else:
            self._fail_task(
                task, JoinError(f"join app {task.func_name} must return a future or non-empty list of futures"), States.failed
            )
            return
        task.joins = inner
        remaining = {"count": len(futures)}
        lock = threading.Lock()

        def _joined(_fut):
            with lock:
                remaining["count"] -= 1
                if remaining["count"] > 0:
                    return
            errors = [f.exception() for f in futures if f.exception() is not None]
            if errors:
                self._fail_task(task, errors[0], States.failed)
            else:
                result = futures[0].result() if scalar else [f.result() for f in futures]
                self._complete_task(task, result, States.exec_done)
                self._retire_task(task)

        for fut in futures:
            fut.add_done_callback(_joined)

    # ==================================================================
    # Completion handling
    # ==================================================================
    def _handle_exec_update(self, task: TaskRecord, exec_fu: Future, args, kwargs) -> None:
        placed = getattr(exec_fu, "placed_manager", None)
        if placed is not None:
            task.placed_manager = placed
        if exec_fu.cancelled():
            # Executor shutdown cancelled the task (Future.exception() would
            # raise here, not return). Cancellation is deliberate — fail the
            # task without retrying so its AppFuture always resolves.
            self._fail_task(task, CancelledError(f"task {task.id} cancelled at executor shutdown"), States.failed)
            return
        exc = exec_fu.exception()
        if exc is not None:
            self._handle_failure(task, exc, args, kwargs)
            return
        result = exec_fu.result()
        self.memoizer.update(task, result)
        if self.config.checkpoint_mode in ("task_exit",):
            try:
                # O(delta): append only the entries recorded since the last
                # checkpoint write, never the whole table.
                self.checkpoint(incremental=True)
            except Exception:  # noqa: BLE001 - the entries stay dirty for the
                # next append/snapshot; a checkpoint hiccup must not stop this
                # task's completion from being delivered.
                logger.exception("task_exit checkpoint failed for task %s", task.id)
        self._complete_task(task, result, States.exec_done)
        self._stage_outputs(task)
        self._retire_task(task)

    def _handle_failure(self, task: TaskRecord, exc: BaseException, args, kwargs) -> None:
        task.fail_count += 1
        task.fail_history.append(repr(exc))
        policy = self.retry_policy
        if policy.classify(exc) == retry_mod.FAIL_FAST:
            # Deterministic failures — a quarantined poison task, a spec no
            # manager can ever satisfy, a feature the executor categorically
            # rejects, a task killed for exceeding its own walltime spec —
            # would re-fail identically N times; retrying with backoff only
            # delays the same answer. Fail fast instead.
            self._fail_task(task, exc, States.failed)
            return
        if task.fail_count <= self.config.retries:
            delay = policy.delay_for(exc, task.fail_count)
            logger.info(
                "task %s (%s) failed (attempt %d); retrying in %.2fs",
                task.id, task.func_name, task.fail_count, delay,
            )
            self._set_task_status(task, States.retry)
            self._send_task_state(task, States.retry)
            self._m_retries.inc()
            # Close out this attempt's span rows now, so the retry's rows
            # (same trace id, attempt+1) form their own waterfall.
            flush_spans(task.trace, self.monitoring, self.run_id, task.id)
            next_attempt(task.trace)
            if delay > 0:
                # Schedule the re-enqueue instead of sleeping: this callback
                # may run on the dispatcher thread, and a sleep there would
                # stall dispatch for every task on every executor. The timer
                # is tracked so cleanup() can cancel it and fail the task
                # fast — an untracked timer firing after shutdown would
                # enqueue into a dead dispatcher and strand the AppFuture.
                timer = threading.Timer(delay, lambda: self._fire_retry_timer(timer))
                timer.daemon = True
                with self._retry_timers_lock:
                    self._retry_timers[timer] = (task, args, kwargs)
                timer.start()
            else:
                self._launch_task_retry(task, args, kwargs)
        else:
            self._fail_task(task, exc, States.failed)

    def _fire_retry_timer(self, timer: threading.Timer) -> None:
        """A backoff timer elapsed: claim its entry and re-enqueue the task.

        The pop is the ownership handshake with cleanup(): whichever side
        removes the entry settles the task (here by re-enqueueing — which
        itself fail-fasts if the kernel has shut down meanwhile — and in
        cleanup() by cancelling and failing), so the AppFuture resolves
        exactly once either way.
        """
        with self._retry_timers_lock:
            entry = self._retry_timers.pop(timer, None)
        if entry is None:
            return  # cleanup() claimed (cancelled + failed) this retry
        task, args, kwargs = entry
        self._launch_task_retry(task, args, kwargs)

    def _launch_task_retry(self, task: TaskRecord, args, kwargs) -> None:
        # Retries rejoin the batched dispatch path; the dispatcher re-chooses
        # the executor if the original one has since gone bad.
        self._enqueue_for_dispatch(task, args, kwargs)

    def _complete_task(self, task: TaskRecord, result: Any, state: States) -> None:
        task.time_returned = time.time()
        self._set_task_status(task, state)
        self._send_task_state(task, state)
        self._record_final(task, state)
        if task.app_fu is not None and not task.app_fu.done():
            task.app_fu.set_result(result)
        self._run_completion_hooks(task, state)

    def _fail_task(self, task: TaskRecord, exc: BaseException, state: States) -> None:
        task.time_returned = time.time()
        self._set_task_status(task, state)
        self._send_task_state(task, state)
        self._record_final(task, state)
        logger.info("task %s (%s) marked %s: %r", task.id, task.func_name, state.name, exc)
        if task.app_fu is not None and not task.app_fu.done():
            task.app_fu.set_exception(exc)
        self._run_completion_hooks(task, state)
        self._retire_task(task)

    def _record_final(self, task: TaskRecord, state: States) -> None:
        """Observability at a task's final transition: spans + metrics.

        Runs before the AppFuture resolves and before completion hooks, so
        by the time the gateway's hook stamps ``delivered`` every earlier
        span row is already flushed and the metrics reflect this task.
        """
        stamp(task.trace, "result_committed")
        flush_spans(task.trace, self.monitoring, self.run_id, task.id)
        counter = self._m_completed.get(state.name)
        if counter is None:
            counter = self.metrics.counter(
                "repro_dfk_tasks_completed_total",
                "Tasks reaching a final state, by state",
                labels={"state": state.name},
            )
            self._m_completed[state.name] = counter
        counter.inc()
        if task.time_returned is not None:
            self._m_duration.observe(task.time_returned - task.time_invoked)

    # ------------------------------------------------------------------
    # Completion fan-out hooks
    # ------------------------------------------------------------------
    def add_completion_hook(self, hook) -> None:
        """Register ``hook(task_record, final_state)`` to run once per task.

        Hooks fire after the task's AppFuture has resolved (so
        ``task.app_fu.result()`` / ``.exception()`` never block) and before
        the record is retired. They run on the completing thread — keep them
        short or hand off to a queue. A raising hook is logged, never fatal.
        """
        with self._completion_hooks_lock:
            self._completion_hooks.append(hook)

    def remove_completion_hook(self, hook) -> None:
        with self._completion_hooks_lock:
            try:
                self._completion_hooks.remove(hook)
            except ValueError:
                pass

    def _run_completion_hooks(self, task: TaskRecord, state: States) -> None:
        with self._completion_hooks_lock:
            hooks = list(self._completion_hooks)
        for hook in hooks:
            try:
                hook(task, state)
            except Exception:  # noqa: BLE001 - a hook must not break completion
                logger.exception("completion hook failed for task %s", task.id)

    def _stage_outputs(self, task: TaskRecord) -> None:
        """Publish remote-scheme output files after a successful task."""
        for out_file in task.outputs:
            if isinstance(out_file, File) and out_file.is_remote():
                local_candidate = out_file.local_path or os.path.join(
                    self.data_manager.working_dir, out_file.filename
                )
                if os.path.exists(local_candidate):
                    out_file.local_path = local_candidate
                    try:
                        self.data_manager.stage_out(out_file, local_candidate, None)
                    except Exception:  # noqa: BLE001 - stage-out failures are logged, not fatal
                        logger.exception("stage-out failed for %s", out_file.url)

    # ------------------------------------------------------------------
    def _send_task_state(self, task: TaskRecord, state: States) -> None:
        if self.monitoring is None:
            return
        self.monitoring.send(
            MessageType.TASK_STATE,
            {
                "run_id": self.run_id,
                "task_id": task.id,
                "state": state.name,
                "func_name": task.func_name,
                "executor": task.executor,
                "fail_count": task.fail_count,
                "priority": task.priority,
                "manager": task.placed_manager,
                "tag": task.tag,
            },
        )

    # ==================================================================
    # Checkpointing
    # ==================================================================
    def checkpoint(self, incremental: bool = False) -> Optional[str]:
        """Write the memoization table to the run's checkpoint files.

        ``incremental=True`` (used by the ``task_exit`` and ``periodic``
        modes) appends only the entries recorded since the last write to the
        delta log — O(delta) bytes per call. The default writes a full
        atomic snapshot, which supersedes and clears the delta log.
        """
        if self.config.checkpoint_mode is None and not self.memoizer.enabled:
            return None
        with self._checkpoint_lock:
            # Both paths drain the dirty delta first and put it back if the
            # write fails, so a transient failure (disk full, permissions)
            # never silently drops entries from future checkpoints.
            delta = self.memoizer.checkpoint_delta()
            try:
                if incremental:
                    return append_checkpoint(self.run_dir, delta)
                # The full snapshot (taken after the drain, so it covers every
                # drained entry) supersedes the delta log.
                return write_checkpoint(self.run_dir, self.memoizer.table_snapshot())
            except Exception:
                self.memoizer.restore_delta(delta)
                raise

    # ==================================================================
    # Introspection / lifecycle
    # ==================================================================
    def task_summary(self) -> Dict[str, int]:
        """Count of tasks per state (useful in notebooks and tests).

        O(states), not O(tasks): read from the transition-time counters.
        """
        with self._completion_cv:
            return {state.name: count for state, count in self._state_counts.items() if count}

    def outstanding_tasks(self) -> int:
        """Number of submitted tasks not yet in a final state — an O(1) read."""
        with self._completion_cv:
            return self._outstanding_count

    def wait_for_current_tasks(self, timeout: Optional[float] = None) -> bool:
        """Block until every submitted task reaches a final state.

        Event-driven: sleeps on the completion condition and is woken by the
        state transition that drops the outstanding count to zero — no
        polling loop, no O(n) scans.
        """
        with self._completion_cv:
            return self._completion_cv.wait_for(
                lambda: self._outstanding_count == 0, timeout=timeout
            )

    def cleanup(self) -> None:
        """Shut down executors, timers, monitoring, and write a final checkpoint."""
        if self._cleanup_called:
            return
        self._cleanup_called = True
        # Stop the elasticity engine FIRST — close() joins the timer thread,
        # so no strategize round (and no scale_out) can race the executor
        # shutdowns below and leak freshly provisioned blocks.
        self._strategy_timer.close()
        self._dispatch_stop.set()
        self._dispatcher.join(timeout=2)
        # Pending retry-backoff timers must not outlive the kernel: cancel
        # each and fail its task fast so the AppFuture resolves now instead
        # of a late timer enqueueing into the dead dispatcher. The lock-held
        # pop hands ownership to exactly one side (see _fire_retry_timer).
        with self._retry_timers_lock:
            pending_retries = list(self._retry_timers.items())
            self._retry_timers.clear()
        for timer, (task, _args, _kwargs) in pending_retries:
            timer.cancel()
            self._fail_task(
                task,
                CancelledError(f"task {task.id} retry abandoned: DataFlowKernel is shut down"),
                States.failed,
            )
        # Hand any still-queued tasks to their executors (which are still up
        # at this point) so no AppFuture is left dangling: executor shutdown
        # below either runs or cancels them, exactly as with the old
        # synchronous launch path.
        leftovers: List[Tuple[TaskRecord, tuple, dict]] = []
        while True:
            try:
                leftovers.append(self._dispatch_queue.get_nowait())
            except queue.Empty:
                break
        if leftovers:
            try:
                self._dispatch_entries(leftovers)
            except Exception:  # noqa: BLE001
                logger.exception("failed to flush %d queued tasks during cleanup", len(leftovers))
        if self._checkpoint_timer is not None:
            self._checkpoint_timer.close()
        if self.config.checkpoint_mode in ("dfk_exit", "periodic", "task_exit"):
            try:
                self.checkpoint()
            except Exception:  # noqa: BLE001
                logger.exception("final checkpoint failed")
        for executor in self.executors.values():
            try:
                executor.shutdown()
            except Exception:  # noqa: BLE001
                logger.exception("executor %s failed to shut down", executor.label)
        # Belt and braces: anything enqueued concurrently with shutdown (a
        # racing retry timer) is failed here so its AppFuture resolves.
        while True:
            try:
                task, args, kwargs = self._dispatch_queue.get_nowait()
            except queue.Empty:
                break
            self._fail_task(
                task, CancelledError(f"task {task.id} not dispatched: DataFlowKernel is shut down"), States.failed
            )
        if self.monitoring is not None:
            self.monitoring.send(
                MessageType.WORKFLOW_INFO,
                {"run_id": self.run_id, "completed_at": time.time(), "tasks": len(self.tasks)},
            )
            self.monitoring.close()
        logger.info("DataFlowKernel %s cleaned up", self.run_id)

    def _atexit_cleanup(self) -> None:
        try:
            self.cleanup()
        except Exception:  # noqa: BLE001 - interpreter is exiting
            pass

    def __enter__(self) -> "DataFlowKernel":
        return self

    def __exit__(self, *exc) -> None:
        self.cleanup()


class DataFlowKernelLoader:
    """Process-wide access to 'the' DataFlowKernel, as used by the decorators."""

    _dfk: Optional[DataFlowKernel] = None

    @classmethod
    def load(cls, config: Optional[Config] = None) -> DataFlowKernel:
        """Create and install a DataFlowKernel from a Config."""
        if cls._dfk is not None and not cls._dfk._cleanup_called:
            raise RuntimeError("a DataFlowKernel is already loaded; call clear() first")
        cls._dfk = DataFlowKernel(config)
        return cls._dfk

    @classmethod
    def dfk(cls) -> DataFlowKernel:
        if cls._dfk is None:
            raise RuntimeError("no DataFlowKernel loaded; call repro.load(config) first")
        return cls._dfk

    @classmethod
    def clear(cls) -> None:
        """Clean up and forget the current DataFlowKernel."""
        if cls._dfk is not None:
            cls._dfk.cleanup()
            cls._dfk = None

    @classmethod
    def wait_for_current_tasks(cls, timeout: Optional[float] = None) -> bool:
        return cls.dfk().wait_for_current_tasks(timeout)
