"""Futures (§3.1.2).

Futures are the only synchronization primitive Parsl offers. Two kinds exist:

* :class:`AppFuture` — returned by every App invocation; resolves to the
  App's return value (or its exception). It is a *single-update variable*:
  only the DataFlowKernel ever completes it, exactly once, even across
  retries (the underlying executor future may be replaced on each retry
  without the AppFuture changing identity).
* :class:`DataFuture` — wraps one declared output :class:`~repro.data.files.File`
  of an App; it resolves to the File when the producing App finishes, which
  is what lets file-passing Apps be chained without explicit synchronization.
"""

from __future__ import annotations

from concurrent.futures import Future
from typing import List, Optional

from repro.data.files import File


class AppFuture(Future):
    """The future returned by invoking an App."""

    def __init__(self, task_record=None):
        super().__init__()
        self.task_record = task_record
        self._outputs: List["DataFuture"] = []

    # ------------------------------------------------------------------
    @property
    def tid(self) -> Optional[int]:
        """Task id of the underlying task (None for detached futures)."""
        return self.task_record.id if self.task_record is not None else None

    @property
    def outputs(self) -> List["DataFuture"]:
        """DataFutures for the Files declared in the App's ``outputs`` kwarg."""
        return self._outputs

    def add_output(self, data_future: "DataFuture") -> None:
        self._outputs.append(data_future)

    # ------------------------------------------------------------------
    def task_status(self) -> str:
        """The DFK-side state name for this task (e.g. 'pending', 'exec_done')."""
        if self.task_record is None:
            return "unknown"
        return self.task_record.status.name

    def __repr__(self) -> str:
        state = "done" if self.done() else "pending"
        return f"<AppFuture task={self.tid} {state}>"


class DataFuture(Future):
    """A future File produced by an App."""

    def __init__(self, app_future: AppFuture, file_obj: File, tid: Optional[int] = None):
        super().__init__()
        if not isinstance(file_obj, File):
            raise TypeError("DataFuture requires a File object")
        self._app_future = app_future
        self.file_obj = file_obj
        self._tid = tid if tid is not None else app_future.tid
        # Resolve when the producing app resolves.
        app_future.add_done_callback(self._parent_done)

    def _parent_done(self, parent: Future) -> None:
        if self.done():
            return
        exc = parent.exception()
        if exc is not None:
            self.set_exception(exc)
        else:
            self.set_result(self.file_obj)

    # ------------------------------------------------------------------
    @property
    def tid(self) -> Optional[int]:
        return self._tid

    @property
    def filepath(self) -> str:
        return self.file_obj.filepath

    @property
    def filename(self) -> str:
        return self.file_obj.filename

    def cancel(self) -> bool:
        """DataFutures cannot be cancelled independently of their producing app."""
        return False

    def __repr__(self) -> str:
        state = "done" if self.done() else "pending"
        return f"<DataFuture task={self.tid} file={self.file_obj.url!r} {state}>"
