"""Executor-selection guidelines (paper Figure 7).

The paper closes with concrete guidance:

* **LLEX** for interactive computations on at most ~10 nodes;
* **HTEX** for batch computations on up to ~1000 nodes, provided
  ``task_duration / nodes >= 0.01`` (e.g. on 10 nodes, tasks of at least
  0.1 s);
* **EXEX** for batch computations on more than 1000 nodes, with task
  durations of at least one minute for good performance.

:func:`recommend_executor` encodes those rules so programs (and tests) can
ask for the recommendation programmatically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass
class Recommendation:
    """The recommended executor plus the reasoning and any caveats."""

    executor: str
    reason: str
    caveat: Optional[str] = None

    def __str__(self) -> str:
        text = f"{self.executor}: {self.reason}"
        if self.caveat:
            text += f" (caveat: {self.caveat})"
        return text


#: Thresholds from Figure 7.
LLEX_MAX_NODES = 10
HTEX_MAX_NODES = 1000
HTEX_DURATION_PER_NODE_RATIO = 0.01
EXEX_MIN_TASK_DURATION_S = 60.0


def recommend_executor(
    nodes: int,
    task_duration_s: float,
    interactive: bool = False,
) -> Recommendation:
    """Apply the Figure 7 guidelines to a workload description."""
    if nodes < 1:
        raise ValueError("nodes must be >= 1")
    if task_duration_s < 0:
        raise ValueError("task_duration_s must be >= 0")

    if interactive and nodes <= LLEX_MAX_NODES:
        return Recommendation(
            "llex",
            f"interactive computations on <= {LLEX_MAX_NODES} nodes",
        )
    if nodes > HTEX_MAX_NODES:
        caveat = None
        if task_duration_s < EXEX_MIN_TASK_DURATION_S:
            caveat = (
                f"task durations below {EXEX_MIN_TASK_DURATION_S:.0f}s will underperform at this scale"
            )
        return Recommendation("exex", f"batch computations on > {HTEX_MAX_NODES} nodes", caveat)
    caveat = None
    if nodes > 0 and task_duration_s / nodes < HTEX_DURATION_PER_NODE_RATIO:
        caveat = (
            f"task-duration/nodes = {task_duration_s / nodes:.4f} < {HTEX_DURATION_PER_NODE_RATIO}; "
            "HTEX throughput will limit performance — use longer tasks or fewer nodes"
        )
    if interactive:
        # Interactive but too large for LLEX: HTEX is the fallback.
        return Recommendation("htex", f"interactive workload too large for LLEX ({nodes} nodes)", caveat)
    return Recommendation("htex", f"batch computations on <= {HTEX_MAX_NODES} nodes", caveat)
