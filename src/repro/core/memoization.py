"""App memoization (§4.6).

When memoization (or checkpointing) is enabled, the DFK computes a hash of
the App's *function body*, its name, and its arguments, and looks that hash
up in the memoization table before launching. A hit returns the stored
result immediately; a miss records the result after execution. Hashing the
function body (not just the name) means editing an App's code invalidates
its cached results, while re-running an identical program reuses them.

Memoization can be controlled at the program level (``Config.app_cache``)
and per-App (``cache=True/False`` on the decorator), because caching is
rarely useful for non-deterministic Apps.
"""

from __future__ import annotations

import hashlib
import inspect
import logging
import pickle
import threading
from typing import Any, Dict, Optional

from repro.core.taskrecord import TaskRecord

logger = logging.getLogger(__name__)


def _stable_bytes(obj: Any) -> bytes:
    """Best-effort deterministic byte representation of an argument."""
    try:
        return pickle.dumps(obj, protocol=4)
    except Exception:
        return repr(obj).encode("utf-8")


def _function_body_bytes(func) -> bytes:
    """The function's source when available, else its bytecode."""
    target = getattr(func, "__wrapped__", func)
    try:
        return inspect.getsource(target).encode("utf-8")
    except (OSError, TypeError):
        code = getattr(target, "__code__", None)
        if code is not None:
            return code.co_code
        return repr(target).encode("utf-8")


def make_hash(task: TaskRecord) -> str:
    """Compute the memoization key for a task."""
    hasher = hashlib.sha256()
    hasher.update(task.func_name.encode("utf-8"))
    hasher.update(_function_body_bytes(task.func))
    for arg in task.args:
        hasher.update(_stable_bytes(arg))
    for key in sorted(task.kwargs):
        if key in ("stdout", "stderr"):
            # Redirection targets do not affect the computed result.
            continue
        hasher.update(key.encode("utf-8"))
        hasher.update(_stable_bytes(task.kwargs[key]))
    return hasher.hexdigest()


class Memoizer:
    """The memoization table consulted and updated by the DataFlowKernel."""

    def __init__(self, enabled: bool = True, seed_table: Optional[Dict[str, Any]] = None):
        self.enabled = enabled
        self._table: Dict[str, Any] = dict(seed_table or {})
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def applies_to(self, task: TaskRecord) -> bool:
        """Whether memoization should be consulted for this task."""
        return self.enabled and task.memoize and not task.is_staging

    def check(self, task: TaskRecord) -> Optional[Any]:
        """Return ``(True, result)``-style hit via a sentinel wrapper, or None on miss."""
        if not self.applies_to(task):
            return None
        if task.hashsum is None:
            task.hashsum = make_hash(task)
        with self._lock:
            if task.hashsum in self._table:
                self.hits += 1
                return _MemoHit(self._table[task.hashsum])
            self.misses += 1
            return None

    def update(self, task: TaskRecord, result: Any) -> None:
        """Record a completed task's result."""
        if not self.applies_to(task):
            return
        if task.hashsum is None:
            task.hashsum = make_hash(task)
        with self._lock:
            self._table[task.hashsum] = result

    # ------------------------------------------------------------------
    def table_snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return dict(self._table)

    def load_table(self, table: Dict[str, Any]) -> int:
        """Merge entries (e.g. from checkpoint files); returns the number loaded."""
        with self._lock:
            before = len(self._table)
            self._table.update(table)
            return len(self._table) - before

    def __len__(self) -> int:
        with self._lock:
            return len(self._table)


class _MemoHit:
    """Wrapper distinguishing 'hit with value None' from 'miss'."""

    __slots__ = ("result",)

    def __init__(self, result: Any):
        self.result = result
