"""App memoization (§4.6).

When memoization (or checkpointing) is enabled, the DFK computes a hash of
the App's *function body*, its name, and its arguments, and looks that hash
up in the memoization table before launching. A hit returns the stored
result immediately; a miss records the result after execution. Hashing the
function body (not just the name) means editing an App's code invalidates
its cached results, while re-running an identical program reuses them.

Memoization can be controlled at the program level (``Config.app_cache``)
and per-App (``cache=True/False`` on the decorator), because caching is
rarely useful for non-deterministic Apps.

Hashing is on the task-submission hot path, so the expensive, per-callable
part of the hash — reading and tokenizing the function's source — is done
once per callable: a :class:`weakref.WeakKeyDictionary` maps each callable
to a ``hashlib`` hasher pre-seeded with the function name and body, and
``make_hash`` clones that seed (``hasher.copy()``) before folding in the
task's arguments. Submitting N tasks of the same App therefore costs one
source read plus N cheap argument updates, not N source reads.

Hash *values* are process-portable: arguments are serialized with a pinned
pickle protocol (:data:`PICKLE_PROTOCOL`, the interpreter's
``HIGHEST_PROTOCOL``, matching the rest of the codebase), so two processes
running the same Python version compute identical hashes for identical
calls and checkpoints transfer between them. A checkpoint written under a
*different* pickle protocol simply misses — memoization degrades to
re-execution, never to a wrong hit.
"""

from __future__ import annotations

import hashlib
import inspect
import logging
import pickle
import threading
import weakref
from typing import Any, Dict, Optional

from repro.core.taskrecord import TaskRecord

logger = logging.getLogger(__name__)

#: Pinned argument-serialization protocol. The executors and checkpoint
#: writer use ``HIGHEST_PROTOCOL`` throughout; the memo hash pins the same
#: value so hashes are stable across processes of one Python version.
PICKLE_PROTOCOL = pickle.HIGHEST_PROTOCOL


def _stable_bytes(obj: Any) -> bytes:
    """Best-effort deterministic byte representation of an argument."""
    try:
        return pickle.dumps(obj, protocol=PICKLE_PROTOCOL)
    except Exception:
        return repr(obj).encode("utf-8")


def _function_body_bytes(func) -> bytes:
    """The function's source when available, else its bytecode."""
    target = getattr(func, "__wrapped__", func)
    try:
        return inspect.getsource(target).encode("utf-8")
    except (OSError, TypeError):
        code = getattr(target, "__code__", None)
        if code is not None:
            return code.co_code
        return repr(target).encode("utf-8")


# ----------------------------------------------------------------------
# Per-callable hash-seed cache
# ----------------------------------------------------------------------
#: callable -> {func_name: hasher seeded with name + body}. Weak keys mean
#: a dynamically created App that goes out of scope releases its seed.
_seed_cache: "weakref.WeakKeyDictionary[Any, Dict[str, Any]]" = weakref.WeakKeyDictionary()
_seed_cache_lock = threading.Lock()


def _fresh_seed(func, func_name: str):
    hasher = hashlib.sha256()
    hasher.update(func_name.encode("utf-8"))
    hasher.update(_function_body_bytes(func))
    return hasher


def _seeded_hasher_uncached(func, func_name: str):
    """The pre-cache seed path: re-reads the source on every call.

    Kept as a named function so the overhead benchmark can measure the
    cached fast path against this baseline in the same run.
    """
    return _fresh_seed(func, func_name)


def _seeded_hasher(func, func_name: str):
    """A sha256 hasher pre-fed with the callable's name and body, cached.

    Callers MUST ``.copy()`` the returned hasher before updating it. Falls
    back to an uncached seed for callables that cannot be weak-referenced
    or hashed (rare: some builtins, exotic callables).
    """
    try:
        with _seed_cache_lock:
            seeds = _seed_cache.get(func)
            if seeds is not None:
                cached = seeds.get(func_name)
                if cached is not None:
                    return cached
    except TypeError:
        return _fresh_seed(func, func_name)
    hasher = _fresh_seed(func, func_name)
    try:
        with _seed_cache_lock:
            _seed_cache.setdefault(func, {})[func_name] = hasher
    except TypeError:
        pass
    return hasher


def clear_seed_cache() -> None:
    """Drop all cached per-callable hash seeds (tests/benchmarks)."""
    with _seed_cache_lock:
        _seed_cache.clear()


def make_hash(task: TaskRecord) -> str:
    """Compute the memoization key for a task.

    Keyword arguments are folded in sorted-key order, so two calls whose
    kwarg dicts differ only in insertion order hash identically.
    """
    hasher = _seeded_hasher(task.func, task.func_name).copy()
    for arg in task.args:
        hasher.update(_stable_bytes(arg))
    for key in sorted(task.kwargs):
        if key in ("stdout", "stderr"):
            # Redirection targets do not affect the computed result.
            continue
        hasher.update(key.encode("utf-8"))
        hasher.update(_stable_bytes(task.kwargs[key]))
    return hasher.hexdigest()


class Memoizer:
    """The memoization table consulted and updated by the DataFlowKernel."""

    def __init__(
        self,
        enabled: bool = True,
        seed_table: Optional[Dict[str, Any]] = None,
        track_dirty: bool = True,
    ):
        self.enabled = enabled
        self._table: Dict[str, Any] = dict(seed_table or {})
        # Entries added since the last checkpoint drain; lets task_exit /
        # periodic checkpointing append O(delta) instead of rewriting O(n).
        # Callers that never checkpoint pass track_dirty=False so the delta
        # dict doesn't shadow the table's growth for nothing.
        self.track_dirty = track_dirty
        self._dirty: Dict[str, Any] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def applies_to(self, task: TaskRecord) -> bool:
        """Whether memoization should be consulted for this task."""
        return self.enabled and task.memoize and not task.is_staging

    def check(self, task: TaskRecord) -> Optional[Any]:
        """Return ``(True, result)``-style hit via a sentinel wrapper, or None on miss."""
        if not self.applies_to(task):
            return None
        if task.hashsum is None:
            task.hashsum = make_hash(task)
        with self._lock:
            if task.hashsum in self._table:
                self.hits += 1
                return _MemoHit(self._table[task.hashsum])
            self.misses += 1
            return None

    def update(self, task: TaskRecord, result: Any) -> None:
        """Record a completed task's result."""
        if not self.applies_to(task):
            return
        if task.hashsum is None:
            task.hashsum = make_hash(task)
        with self._lock:
            self._table[task.hashsum] = result
            if self.track_dirty:
                self._dirty[task.hashsum] = result

    # ------------------------------------------------------------------
    def table_snapshot(self) -> Dict[str, Any]:
        """A copy of the full table."""
        with self._lock:
            return dict(self._table)

    def checkpoint_delta(self) -> Dict[str, Any]:
        """Atomically drain and return the entries added since the last drain
        (or full snapshot). The basis of O(delta) incremental checkpoints."""
        with self._lock:
            delta, self._dirty = self._dirty, {}
            return delta

    def restore_delta(self, entries: Dict[str, Any]) -> None:
        """Put a drained delta back (the append that consumed it failed), so
        the entries reappear in the next incremental checkpoint. Entries
        re-dirtied since the drain keep their newer values."""
        with self._lock:
            for key, value in entries.items():
                self._dirty.setdefault(key, value)

    def load_table(self, table: Dict[str, Any]) -> int:
        """Merge entries (e.g. from checkpoint files); returns the number loaded."""
        with self._lock:
            before = len(self._table)
            self._table.update(table)
            return len(self._table) - before

    def __len__(self) -> int:
        with self._lock:
            return len(self._table)


class _MemoHit:
    """Wrapper distinguishing 'hit with value None' from 'miss'."""

    __slots__ = ("result",)

    def __init__(self, result: Any):
        self.result = result
