"""Retry classification and backoff policy for the DataFlowKernel.

The paper sells retries as the first line of fault tolerance, but not every
failure deserves one. A :class:`RetryPolicy` splits failures into three
classes:

* **fail-fast** — deterministic failures that would re-fail identically on
  every attempt: a quarantined poison task
  (:class:`~repro.errors.WorkerPoisonError`), an unsatisfiable resource spec
  (:class:`~repro.errors.ResourceSpecError`), a categorical executor
  rejection (:class:`~repro.errors.UnsupportedFeatureError`), a task that
  ran out of its own walltime
  (:class:`~repro.errors.TaskWalltimeExceeded`). Retrying only delays the
  same answer, so the AppFuture fails on the first attempt.
* **transient** — infrastructure faults where the task itself is presumed
  innocent: a crashed worker (:class:`~repro.errors.WorkerLost`), a lost
  manager (:class:`~repro.errors.ManagerLost`), every gateway shard briefly
  down (:class:`~repro.errors.ShardUnavailableError`). Retried under
  capped exponential backoff with jitter, so a thousand tasks orphaned by
  one dead node do not re-dispatch in one synchronized thundering herd.
* **everything else** — user-code exceptions. Retried (Parsl semantics:
  ``Config.retries`` bounds attempts for *any* failure) using the flat
  ``base_backoff_s`` delay without growth, preserving the pre-policy
  behaviour of ``Config.retry_backoff_s``.

Delays follow ``base * factor**(attempt-1)`` capped at ``cap_s``, then
spread by up to ``jitter`` (a fraction of the delay) of equal-jitter noise:
``delay * (1 - jitter/2) + U(0, delay * jitter)``. The expected delay is
unchanged by jitter; only the synchronization is broken.
"""

from __future__ import annotations

import random
import threading
from typing import Optional, Tuple, Type

from repro.errors import (
    ConfigurationError,
    ManagerLost,
    ResourceSpecError,
    ShardUnavailableError,
    TaskWalltimeExceeded,
    UnsupportedFeatureError,
    WorkerLost,
    WorkerPoisonError,
)

#: Failures presumed transient: the task is innocent, the infrastructure died.
DEFAULT_RETRYABLE: Tuple[Type[BaseException], ...] = (
    WorkerLost,
    ManagerLost,
    ShardUnavailableError,
)

#: Failures presumed deterministic: the same attempt would fail the same way.
DEFAULT_FAIL_FAST: Tuple[Type[BaseException], ...] = (
    WorkerPoisonError,
    ResourceSpecError,
    UnsupportedFeatureError,
    TaskWalltimeExceeded,
)

#: Classification labels returned by :meth:`RetryPolicy.classify`.
FAIL_FAST = "fail_fast"
TRANSIENT = "transient"
RETRY = "retry"


class RetryPolicy:
    """Classify failures and schedule their retry delays.

    Parameters
    ----------
    base_backoff_s:
        First-retry delay for *transient* (infrastructure) failures, and the
        flat per-retry delay for ordinary user-code failures. ``0`` retries
        immediately (the historical default).
    factor:
        Exponential growth per transient attempt (``>= 1``).
    cap_s:
        Ceiling on any computed delay.
    jitter:
        Fraction of the delay randomized (``0`` disables, ``1`` spreads the
        delay across ``[delay/2, 3*delay/2)``). Jitter keeps the *expected*
        delay unchanged while desynchronizing mass retries.
    retryable / fail_fast:
        Exception-class tuples overriding the default classification.
        ``fail_fast`` wins when a class appears in both.
    rng:
        Seedable randomness source (tests pin it; production leaves it None).
    """

    def __init__(
        self,
        base_backoff_s: float = 0.0,
        factor: float = 2.0,
        cap_s: float = 30.0,
        jitter: float = 0.5,
        retryable: Tuple[Type[BaseException], ...] = DEFAULT_RETRYABLE,
        fail_fast: Tuple[Type[BaseException], ...] = DEFAULT_FAIL_FAST,
        rng: Optional[random.Random] = None,
    ):
        if base_backoff_s < 0:
            raise ConfigurationError("base_backoff_s must be >= 0")
        if factor < 1.0:
            raise ConfigurationError("factor must be >= 1.0")
        if cap_s < 0:
            raise ConfigurationError("cap_s must be >= 0")
        if not 0.0 <= jitter <= 1.0:
            raise ConfigurationError("jitter must be in [0.0, 1.0]")
        self.base_backoff_s = float(base_backoff_s)
        self.factor = float(factor)
        self.cap_s = float(cap_s)
        self.jitter = float(jitter)
        self.retryable = tuple(retryable)
        self.fail_fast = tuple(fail_fast)
        self._rng = rng or random.Random()
        # random.Random is documented thread-safe, but the lock also makes
        # seeded test runs deterministic under concurrent failure callbacks.
        self._rng_lock = threading.Lock()

    # ------------------------------------------------------------------
    def classify(self, exc: BaseException) -> str:
        """Return :data:`FAIL_FAST`, :data:`TRANSIENT`, or :data:`RETRY`."""
        if isinstance(exc, self.fail_fast):
            return FAIL_FAST
        if isinstance(exc, self.retryable):
            return TRANSIENT
        return RETRY

    def delay_for(self, exc: BaseException, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based) of this failure.

        Transient failures grow exponentially (jittered, capped); ordinary
        failures reuse the flat base delay, matching the old
        ``retry_backoff_s`` timer. Fail-fast failures never reach here, but
        return ``0`` defensively if they do.
        """
        kind = self.classify(exc)
        if kind == FAIL_FAST:
            return 0.0
        if kind == TRANSIENT:
            delay = min(self.cap_s, self.base_backoff_s * (self.factor ** max(attempt - 1, 0)))
        else:
            delay = min(self.cap_s, self.base_backoff_s)
        if delay <= 0.0:
            return 0.0
        if self.jitter > 0.0:
            with self._rng_lock:
                noise = self._rng.random()
            delay = delay * (1.0 - self.jitter / 2.0) + delay * self.jitter * noise
        return delay

    # ------------------------------------------------------------------
    @classmethod
    def from_config(cls, retry_backoff_s: float) -> "RetryPolicy":
        """Build the default policy from the legacy ``retry_backoff_s`` knob."""
        return cls(base_backoff_s=retry_backoff_s)

    def __repr__(self) -> str:
        return (
            f"RetryPolicy(base_backoff_s={self.base_backoff_s}, factor={self.factor}, "
            f"cap_s={self.cap_s}, jitter={self.jitter})"
        )
