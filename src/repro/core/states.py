"""Task states tracked by the DataFlowKernel.

The lifecycle of a task in the dynamic task graph::

    pending ──▶ launched ──▶ running ──▶ exec_done
       │            │                        ▲
       │            └──▶ failed ──(retry)────┘
       │            └──▶ memo_done  (memoization/checkpoint hit)
       └──▶ dep_fail  (a dependency failed; task never launched)

State transitions are reported to the monitoring hub, which is how the task
lifecycle plots (paper Fig. 6, bottom panel) are reconstructed.
"""

from __future__ import annotations

import enum


class States(enum.Enum):
    """All states a task can be in."""

    unsched = 0
    pending = 1
    launched = 2
    running = 3
    exec_done = 4
    failed = 5
    dep_fail = 6
    retry = 7
    memo_done = 8
    joining = 9

    def __str__(self) -> str:
        return self.name


#: States from which a task will never leave.
FINAL_STATES = frozenset({States.exec_done, States.memo_done, States.failed, States.dep_fail})

#: Final states that represent failure.
FINAL_FAILURE_STATES = frozenset({States.failed, States.dep_fail})
