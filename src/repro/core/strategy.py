"""The block-aware elasticity engine (§3.6, §4.4).

Parsl implements a cloud-like elasticity model in which resource *blocks* are
provisioned and de-provisioned in response to workload pressure. This module
is the decision engine: each round it computes, per executor, a **target
block count** from the outstanding-task depth and the provider's block shape
(``min_blocks`` / ``max_blocks`` / ``parallelism``), then closes the gap —
scaling out immediately when demand exceeds capacity, and scaling in with
hysteresis by *selecting specific idle blocks* from the executor's
:class:`~repro.executors.blocks.BlockRegistry`.

Three built-in strategies are provided, selected by ``Config.strategy``:

* ``none``    — never touch blocks after ``init_blocks``;
* ``simple``  — scale out on demand; scale in toward ``min_blocks`` only once
  the executor has been fully idle for ``max_idletime``;
* ``htex_auto_scale`` — like ``simple`` but additionally scales in partially
  while work remains: blocks whose managers report no in-flight tasks for at
  least ``max_idletime`` are drained block-by-block as demand shrinks.

Scale-in never cancels a busy block: eligibility comes from the registry's
per-block ``idle_since`` stamps, which are fed either by the interchange's
per-manager activity reports (HTEX) or, for executors without per-block
telemetry, by the executor-wide outstanding count (whole-executor
hysteresis, exactly the paper's original behaviour). The actual teardown is
the executor's business — HTEX drains the block's managers before the
provider job is cancelled (see ``executors/htex``).
"""

from __future__ import annotations

import logging
import math
import time
from typing import Dict, List

from repro.executors.base import ReproExecutor

logger = logging.getLogger(__name__)


class Strategy:
    """Per-executor block-level elasticity decisions.

    Each round reads the executor's ``outstanding`` property, which every
    executor maintains as a done-callback-fed counter — an O(1) read, so
    the strategy timer's cost per round is independent of how many tasks
    the run has submitted or has in flight.
    """

    def __init__(self, strategy_type: str = "simple", max_idletime: float = 2.0):
        if strategy_type not in ("none", "simple", "htex_auto_scale"):
            raise ValueError(f"unknown strategy {strategy_type!r}")
        self.strategy_type = strategy_type
        self.max_idletime = max_idletime
        #: record of scaling actions, for tests/benchmarks/monitoring.
        self.history: List[dict] = []

    # ------------------------------------------------------------------
    def strategize(self, executors: List[ReproExecutor]) -> None:
        """Make one round of scaling decisions."""
        if self.strategy_type == "none":
            return
        for executor in executors:
            if not executor.scaling_enabled or executor.provider is None:
                continue
            try:
                self._strategize_one(executor)
            except Exception:  # noqa: BLE001 - a scaling hiccup must not kill the timer
                logger.exception("strategy error for executor %s", executor.label)

    # ------------------------------------------------------------------
    def _strategize_one(self, executor: ReproExecutor) -> None:
        provider = executor.provider
        registry = executor.block_registry
        outstanding = executor.outstanding
        workers_per_block = max(executor.workers_per_block, 1)

        # Refresh the registry's busy/idle view. Executors with per-block
        # telemetry (HTEX) report per manager; otherwise fall back to
        # executor-wide idleness, which reproduces whole-executor hysteresis.
        if not executor.update_block_activity():
            if outstanding == 0:
                registry.mark_all_idle()
            else:
                registry.mark_all_busy()

        active = registry.active_count()
        target = self._target_blocks(outstanding, workers_per_block, provider)

        if target > active:
            # Draining blocks still hold live provider jobs until their
            # in-flight tasks settle, so they count against max_blocks:
            # never exceed the provider's concurrent-job ceiling.
            headroom = provider.max_blocks - active - registry.draining_count()
            to_add = min(target - active, headroom)
            if to_add > 0:
                logger.info(
                    "scaling out %s by %d blocks (outstanding=%d, active=%d, target=%d)",
                    executor.label, to_add, outstanding, active, target,
                )
                executor.scale_out(to_add)
                self._record(executor.label, "scale_out", to_add, outstanding, active)
            return

        if target < active and (outstanding == 0 or self.strategy_type == "htex_auto_scale"):
            # Hysteresis: only blocks continuously idle for max_idletime are
            # eligible, and we retire at most the surplus over the target.
            eligible = registry.idle_blocks(min_idle=self.max_idletime)
            to_remove = min(active - target, len(eligible))
            if to_remove <= 0:
                return
            chosen = eligible[:to_remove]
            idle_s = {r.block_id: round(r.idle_for(), 3) for r in chosen}
            logger.info(
                "scaling in %s: draining %d idle blocks %s (outstanding=%d, active=%d, target=%d)",
                executor.label, to_remove, list(idle_s), outstanding, active, target,
            )
            executor.scale_in(
                to_remove,
                block_ids=[r.block_id for r in chosen],
                max_idletime=self.max_idletime,
            )
            self._record(
                executor.label, "scale_in", to_remove, outstanding, active, idle_s=idle_s
            )

    # ------------------------------------------------------------------
    def _target_blocks(self, outstanding: int, workers_per_block: int, provider) -> int:
        """Blocks needed for the current demand, clamped to the provider shape."""
        if outstanding <= 0:
            return provider.min_blocks
        demand = math.ceil((outstanding * provider.parallelism) / workers_per_block)
        return max(provider.min_blocks, min(demand, provider.max_blocks))

    def _record(
        self,
        label: str,
        action: str,
        blocks: int,
        outstanding: int,
        active_blocks: int,
        idle_s: Dict[str, float] | None = None,
    ) -> None:
        entry = {
            "time": time.time(),
            "executor": label,
            "action": action,
            "blocks": blocks,
            "outstanding": outstanding,
            "active_blocks_before": active_blocks,
        }
        if idle_s is not None:
            entry["idle_s"] = idle_s
        self.history.append(entry)
