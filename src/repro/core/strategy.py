"""The elasticity strategy (§3.6, §4.4).

Parsl implements a cloud-like elasticity model in which resource *blocks* are
provisioned and de-provisioned in response to workload pressure. The
strategy module tracks outstanding tasks and available capacity on connected
executors and talks to each executor's provider to scale to match real-time
requirements.

Three built-in strategies are provided, selected by ``Config.strategy``:

* ``none``    — never touch blocks after ``init_blocks``;
* ``simple``  — scale out when demand exceeds capacity (scaled by the
  provider's ``parallelism``); scale in to ``min_blocks`` only when the
  executor has been idle for ``max_idletime``;
* ``htex_auto_scale`` — like ``simple`` but additionally scales in partially
  (block by block) as demand shrinks.

The strategy is deliberately extensible: any object implementing
``strategize(executors)`` can be passed, which is how the LSST-style
program-specific rate limiting described in §2.2 would plug in.
"""

from __future__ import annotations

import logging
import math
import time
from typing import Dict, List, Optional

from repro.executors.base import ReproExecutor
from repro.providers.base import JobState

logger = logging.getLogger(__name__)


class Strategy:
    """Block-level elasticity decisions for a set of executors."""

    def __init__(self, strategy_type: str = "simple", max_idletime: float = 2.0):
        if strategy_type not in ("none", "simple", "htex_auto_scale"):
            raise ValueError(f"unknown strategy {strategy_type!r}")
        self.strategy_type = strategy_type
        self.max_idletime = max_idletime
        #: executor label -> timestamp at which it became idle (None = busy).
        self._idle_since: Dict[str, Optional[float]] = {}
        #: record of scaling actions, for tests/benchmarks/monitoring.
        self.history: List[dict] = []

    # ------------------------------------------------------------------
    def strategize(self, executors: List[ReproExecutor]) -> None:
        """Make one round of scaling decisions."""
        if self.strategy_type == "none":
            return
        for executor in executors:
            if not executor.scaling_enabled or executor.provider is None:
                continue
            try:
                self._strategize_one(executor)
            except Exception:  # noqa: BLE001 - a scaling hiccup must not kill the timer
                logger.exception("strategy error for executor %s", executor.label)

    # ------------------------------------------------------------------
    def _active_blocks(self, executor: ReproExecutor) -> int:
        status = executor.status()
        return sum(1 for s in status.values() if s.state in (JobState.PENDING, JobState.RUNNING))

    def _strategize_one(self, executor: ReproExecutor) -> None:
        provider = executor.provider
        label = executor.label
        outstanding = executor.outstanding
        active_blocks = self._active_blocks(executor)
        workers_per_block = max(executor.workers_per_block, 1)
        active_slots = active_blocks * workers_per_block
        parallelism = provider.parallelism

        if outstanding > 0:
            self._idle_since[label] = None
        # Case 1: nothing to do — consider scaling in to min_blocks.
        if outstanding == 0:
            if active_blocks <= provider.min_blocks:
                return
            idle_since = self._idle_since.get(label)
            if idle_since is None:
                self._idle_since[label] = time.time()
                return
            if time.time() - idle_since >= self.max_idletime:
                excess = active_blocks - provider.min_blocks
                logger.info("scaling in %s by %d idle blocks", label, excess)
                executor.scale_in(excess)
                self._record(label, "scale_in", excess, outstanding, active_blocks)
            return

        # Case 2: demand exceeds capacity — scale out.
        if outstanding > active_slots and active_blocks < provider.max_blocks:
            excess_slots = math.ceil((outstanding - active_slots) * parallelism)
            needed_blocks = math.ceil(excess_slots / workers_per_block)
            headroom = provider.max_blocks - active_blocks
            to_add = min(needed_blocks, headroom)
            if to_add > 0:
                logger.info("scaling out %s by %d blocks (outstanding=%d, slots=%d)", label, to_add, outstanding, active_slots)
                executor.scale_out(to_add)
                self._record(label, "scale_out", to_add, outstanding, active_blocks)
            return

        # Case 3 (htex_auto_scale only): partial scale-in when demand shrank.
        if self.strategy_type == "htex_auto_scale" and active_blocks > provider.min_blocks:
            needed_blocks = max(math.ceil(outstanding / workers_per_block), provider.min_blocks)
            if needed_blocks < active_blocks:
                to_remove = active_blocks - needed_blocks
                logger.info("auto-scaling in %s by %d blocks", label, to_remove)
                executor.scale_in(to_remove)
                self._record(label, "scale_in", to_remove, outstanding, active_blocks)

    def _record(self, label: str, action: str, blocks: int, outstanding: int, active_blocks: int) -> None:
        self.history.append(
            {
                "time": time.time(),
                "executor": label,
                "action": action,
                "blocks": blocks,
                "outstanding": outstanding,
                "active_blocks_before": active_blocks,
            }
        )
