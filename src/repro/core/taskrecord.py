"""The per-task bookkeeping structure held by the DataFlowKernel.

A TaskRecord is a node of the dynamic task graph (§3.4): it carries the
function and arguments, the futures it depends on (the graph's in-edges),
its own AppFuture (through which out-edges are expressed as callbacks), and
all execution metadata (state, chosen executor, retries, memoization hash,
timings).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.core.states import States


@dataclass
class TaskRecord:
    """State for one task in the dynamic task graph."""

    id: int
    func: Callable
    func_name: str
    args: Sequence[Any] = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)
    executor: str = "all"
    status: States = States.unsched
    depends: List[Any] = field(default_factory=list)
    app_fu: Any = None
    exec_fu: Any = None
    fail_count: int = 0
    fail_cost: float = 0.0
    fail_history: List[str] = field(default_factory=list)
    memoize: bool = True
    hashsum: Optional[str] = None
    from_memo: bool = False
    is_staging: bool = False
    join: bool = False
    joins: Any = None
    resource_specification: Dict[str, Any] = field(default_factory=dict)
    outputs: List[Any] = field(default_factory=list)
    time_invoked: float = field(default_factory=time.time)
    time_returned: Optional[float] = None
    task_launch_lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def state_name(self) -> str:
        return self.status.name

    def summary(self) -> Dict[str, Any]:
        """A compact picklable view used by monitoring and debugging."""
        return {
            "task_id": self.id,
            "func_name": self.func_name,
            "status": self.status.name,
            "executor": self.executor,
            "fail_count": self.fail_count,
            "memoize": self.memoize,
            "from_memo": self.from_memo,
            "depends": [getattr(d, "task_record", None) and getattr(d.task_record, "id", None) for d in self.depends],
            "time_invoked": self.time_invoked,
            "time_returned": self.time_returned,
        }
