"""The per-task bookkeeping structure held by the DataFlowKernel.

A TaskRecord is a node of the dynamic task graph (§3.4): it carries the
function and arguments, the futures it depends on (the graph's in-edges),
its own AppFuture (through which out-edges are expressed as callbacks), and
all execution metadata (state, chosen executor, retries, memoization hash,
timings).

Once a task reaches a final state none of the heavy references — the
callable, its arguments, the executor future, the dependency futures — are
needed again, but a naive task table would pin them (and everything they
transitively reference) for the lifetime of the run. :meth:`TaskRecord.retire`
therefore drops them in place, leaving the record as a compact shell whose
immutable essentials are frozen into a :class:`RetiredTaskSummary`, so a
million-task run holds O(1) memory per completed task. Retirement is the
DFK's default; set ``Config(retain_task_records=True)`` to keep full records
for post-run debugging.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple


from repro.core.states import States


@dataclass(frozen=True)
class RetiredTaskSummary:
    """The immutable compact view a retired task leaves behind."""

    task_id: int
    func_name: str
    executor: str
    fail_count: int
    memoize: bool
    from_memo: bool
    hashsum: Optional[str]
    depends_ids: Tuple[Optional[int], ...]
    time_invoked: float
    time_returned: Optional[float]


@dataclass
class TaskRecord:
    """State for one task in the dynamic task graph."""

    id: int
    func: Callable
    func_name: str
    args: Sequence[Any] = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)
    executor: str = "all"
    status: States = States.unsched
    depends: List[Any] = field(default_factory=list)
    app_fu: Any = None
    exec_fu: Any = None
    fail_count: int = 0
    fail_cost: float = 0.0
    fail_history: List[str] = field(default_factory=list)
    memoize: bool = True
    hashsum: Optional[str] = None
    from_memo: bool = False
    is_staging: bool = False
    join: bool = False
    joins: Any = None
    resource_specification: Dict[str, Any] = field(default_factory=dict)
    #: Dispatch priority from the task's resource spec (higher runs sooner);
    #: kept as a scalar so monitoring rows carry it even after retirement.
    priority: int = 0
    #: Opaque submitter tag (the gateway sets the tenant name here); carried
    #: into TASK_STATE monitoring rows and surviving retirement, so a
    #: multi-tenant run's per-tenant timeline is reconstructable post-run.
    tag: Optional[str] = None
    #: Identity of the manager that ran the task (set on completion).
    placed_manager: Optional[str] = None
    #: Trace context (:func:`repro.observability.trace.new_trace` shape):
    #: trace id + per-hop span events, shared by reference with the gateway
    #: item and the interchange dispatch item. None when tracing is off or
    #: the task was not sampled. Survives retirement — it is a small dict
    #: whose spans are already flushed by then, but the gateway still reads
    #: the id for its ``delivered`` stamp.
    trace: Optional[Dict[str, Any]] = None
    outputs: List[Any] = field(default_factory=list)
    time_invoked: float = field(default_factory=time.time)
    time_returned: Optional[float] = None
    task_launch_lock: threading.Lock = field(default_factory=threading.Lock, repr=False)
    retired: Optional[RetiredTaskSummary] = field(default=None, repr=False)

    def state_name(self) -> str:
        return self.status.name

    def _depends_ids(self) -> Tuple[Optional[int], ...]:
        return tuple(
            getattr(d, "task_record", None) and getattr(d.task_record, "id", None)
            for d in self.depends
        )

    def retire(self) -> RetiredTaskSummary:
        """Drop the heavy references, leaving a compact frozen summary.

        Only valid once the task is in a final state: the callable, the raw
        arguments, the executor future, and the dependency futures are all
        released so the garbage collector can reclaim them (and whatever
        they pin). The AppFuture is kept — it holds the user-visible result
        — as are the cheap scalar fields. Idempotent.
        """
        if self.retired is not None:
            return self.retired
        summary = RetiredTaskSummary(
            task_id=self.id,
            func_name=self.func_name,
            executor=self.executor,
            fail_count=self.fail_count,
            memoize=self.memoize,
            from_memo=self.from_memo,
            hashsum=self.hashsum,
            depends_ids=self._depends_ids(),
            time_invoked=self.time_invoked,
            time_returned=self.time_returned,
        )
        self.retired = summary
        self.func = _retired_func
        self.args = ()
        self.kwargs = {}
        self.exec_fu = None
        self.depends = []
        self.joins = None
        self.resource_specification = {}
        return summary

    def summary(self) -> Dict[str, Any]:
        """A compact picklable view used by monitoring and debugging."""
        depends = self.retired.depends_ids if self.retired is not None else self._depends_ids()
        return {
            "task_id": self.id,
            "func_name": self.func_name,
            "status": self.status.name,
            "executor": self.executor,
            "fail_count": self.fail_count,
            "memoize": self.memoize,
            "from_memo": self.from_memo,
            "depends": list(depends),
            "time_invoked": self.time_invoked,
            "time_returned": self.time_returned,
        }


def _retired_func(*_args, **_kwargs):
    """Placeholder installed in ``TaskRecord.func`` after retirement."""
    raise RuntimeError("task record has been retired; its callable was released")
