"""Data management (§4.5): Files, transparent staging, and path translation."""

from repro.data.files import File
from repro.data.object_store import ObjectStore, get_default_store
from repro.data.data_manager import DataManager

__all__ = ["File", "ObjectStore", "get_default_store", "DataManager"]
