"""The DataManager (§4.5).

The data manager is responsible for transferring files to where they are
needed and transparently translating paths. When a remote ``File`` is passed
to an App through ``inputs``/``outputs``:

* if the file is already available locally, nothing happens;
* otherwise a *dynamic data dependency* is created — a transfer task is
  injected ahead of the App. For HTTP/FTP the transfer task is submitted to
  an executor like any other task; for Globus the transfer is carried out by
  the data manager itself (third-party transfer), allowing compute
  provisioning to be deferred until data is staged.

Stage-out mirrors stage-in: Files listed in ``outputs`` whose scheme is
remote are published back to the object store after the App completes.
"""

from __future__ import annotations

import logging
import os
import threading
from concurrent.futures import Future
from typing import List, Optional

from repro.data.files import File
from repro.data.object_store import STORE_ROOT_ENV, ObjectStore, get_default_store
from repro.data.staging.base import Staging
from repro.data.staging.ftp import FTPStaging
from repro.data.staging.globus import GlobusStaging
from repro.data.staging.http import HTTPStaging
from repro.errors import StagingError

logger = logging.getLogger(__name__)


def _executor_stage_in_task(url: str, scheme: str, dest_dir: str, store_root: str) -> str:
    """Module-level transfer task shipped to workers for HTTP/FTP staging."""
    store = ObjectStore(root=store_root)
    dest = os.path.join(dest_dir, os.path.basename(url.rstrip("/")) or "staged_file")
    return store.download_to(url, dest, scheme=scheme)


def _executor_stage_out_task(url: str, scheme: str, source_path: str, store_root: str) -> str:
    """Module-level publish task shipped to workers for FTP stage-out."""
    store = ObjectStore(root=store_root)
    store.put_file(url, source_path)
    return url


class DataManager:
    """Create and track staging tasks on behalf of the DataFlowKernel."""

    def __init__(
        self,
        dfk=None,
        staging_providers: Optional[List[Staging]] = None,
        working_dir: Optional[str] = None,
        store: Optional[ObjectStore] = None,
    ):
        self.dfk = dfk
        self.store = store or get_default_store()
        if staging_providers is None:
            staging_providers = [
                HTTPStaging(store=self.store),
                FTPStaging(store=self.store),
                GlobusStaging(store=self.store),
            ]
        self.staging_providers = list(staging_providers)
        self.working_dir = working_dir or os.path.join(os.getcwd(), "staging")
        os.makedirs(self.working_dir, exist_ok=True)
        self._lock = threading.Lock()
        self.stage_in_count = 0
        self.stage_out_count = 0

    # ------------------------------------------------------------------
    def _provider_for(self, file: File) -> Optional[Staging]:
        for provider in self.staging_providers:
            if provider.can_stage_in(file) or provider.can_stage_out(file):
                return provider
        return None

    def requires_staging(self, file: File) -> bool:
        return isinstance(file, File) and file.is_remote() and file.local_path is None

    # ------------------------------------------------------------------
    # Stage in
    # ------------------------------------------------------------------
    def stage_in(self, file: File, executor_label: Optional[str] = None) -> Future:
        """Return a future that resolves to a staged :class:`File`.

        The future is either an AppFuture for a transfer task submitted to an
        executor, or an already-running data-manager-side transfer (Globus).
        """
        provider = self._provider_for(file)
        if provider is None or not provider.can_stage_in(file):
            raise StagingError(file.scheme, file.url, "no staging provider available")
        staged = file.cleancopy()
        dest_dir = os.path.join(self.working_dir, "inbound")
        os.makedirs(dest_dir, exist_ok=True)

        with self._lock:
            self.stage_in_count += 1

        if provider.stages_on_executor() and self.dfk is not None:
            return self._stage_in_via_executor(staged, dest_dir, executor_label)
        return self._stage_in_via_dfk_thread(provider, staged, dest_dir)

    def _stage_in_via_executor(self, staged: File, dest_dir: str, executor_label: Optional[str]) -> Future:
        app_future = self.dfk.submit(
            _executor_stage_in_task,
            app_args=(staged.url, staged.scheme, dest_dir, self.store.root),
            app_kwargs={},
            executors=[executor_label] if executor_label else "all",
            func_name=f"_stage_in[{staged.scheme}]",
            cache=False,
            is_staging=True,
        )
        result_future: Future = Future()

        def _done(fut):
            if fut.exception() is not None:
                result_future.set_exception(fut.exception())
            else:
                staged.local_path = fut.result()
                result_future.set_result(staged)

        app_future.add_done_callback(_done)
        return result_future

    def _stage_in_via_dfk_thread(self, provider: Staging, staged: File, dest_dir: str) -> Future:
        """Globus-style transfer executed by the data manager itself."""
        result_future: Future = Future()

        def _run():
            try:
                staged.local_path = provider.stage_in(staged, dest_dir)
                result_future.set_result(staged)
            except BaseException as exc:  # noqa: BLE001
                result_future.set_exception(exc)

        thread = threading.Thread(target=_run, name=f"stage-in-{staged.filename}", daemon=True)
        thread.start()
        return result_future

    # ------------------------------------------------------------------
    # Stage out
    # ------------------------------------------------------------------
    def stage_out(self, file: File, source_path: Optional[str] = None, executor_label: Optional[str] = None) -> Future:
        """Publish a produced file to its remote destination; returns a future."""
        provider = self._provider_for(file)
        if provider is None or not provider.can_stage_out(file):
            raise StagingError(file.scheme, file.url, "no staging provider supports stage-out for this scheme")
        source = source_path or file.local_path or file.path
        with self._lock:
            self.stage_out_count += 1

        if provider.stages_on_executor() and self.dfk is not None:
            return self.dfk.submit(
                _executor_stage_out_task,
                app_args=(file.url, file.scheme, source, self.store.root),
                app_kwargs={},
                executors=[executor_label] if executor_label else "all",
                func_name=f"_stage_out[{file.scheme}]",
                cache=False,
                is_staging=True,
            )
        result_future: Future = Future()

        def _run():
            try:
                provider.stage_out(file, source)
                result_future.set_result(file.url)
            except BaseException as exc:  # noqa: BLE001
                result_future.set_exception(exc)

        thread = threading.Thread(target=_run, name=f"stage-out-{file.filename}", daemon=True)
        thread.start()
        return result_future

    # ------------------------------------------------------------------
    def ensure_worker_visibility(self) -> None:
        """Export the store root so worker processes resolve the same objects."""
        os.environ[STORE_ROOT_ENV] = self.store.root
