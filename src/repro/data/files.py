"""The File abstraction.

Hard-coding file paths breaks location independence, so Apps reference data
through :class:`File` objects (§4.5). A File carries a URL in one of the
supported schemes (``file``, ``http``, ``https``, ``ftp``, ``globus``); the
data manager decides whether staging is needed and translates the reference
to a local path (``filepath``) in the executing environment.
"""

from __future__ import annotations

import os
from typing import Optional
from urllib.parse import urlparse

_SUPPORTED_SCHEMES = ("file", "http", "https", "ftp", "globus")


class File:
    """A reference to a (possibly remote) file."""

    def __init__(self, url: str):
        self.url = str(url)
        parsed = urlparse(self.url)
        self.scheme = parsed.scheme if parsed.scheme else "file"
        if self.scheme not in _SUPPORTED_SCHEMES:
            raise ValueError(f"unsupported File scheme {self.scheme!r} in {url!r}")
        self.netloc = parsed.netloc
        self.path = parsed.path if parsed.scheme else self.url
        #: Local path assigned after staging; None until the data manager
        #: (or the user, for local files) resolves it.
        self.local_path: Optional[str] = None

    # ------------------------------------------------------------------
    @property
    def filename(self) -> str:
        return os.path.basename(self.path)

    @property
    def filepath(self) -> str:
        """The path an App should use to open this file.

        For ``file://`` URLs this is the path itself; for remote schemes it is
        the staged local path, which only exists after the data manager has
        run the transfer task.
        """
        if self.scheme == "file":
            return self.local_path or self.path
        if self.local_path is None:
            raise ValueError(
                f"remote file {self.url!r} has not been staged; pass it through inputs=[...] so the "
                "data manager can stage it"
            )
        return self.local_path

    def is_remote(self) -> bool:
        return self.scheme != "file"

    def exists_locally(self) -> bool:
        try:
            return os.path.exists(self.filepath)
        except ValueError:
            return False

    # ------------------------------------------------------------------
    def cleancopy(self) -> "File":
        """A fresh copy without any staging state (used per-task)."""
        return File(self.url)

    def __str__(self) -> str:
        return self.filepath if (self.scheme == "file" or self.local_path) else self.url

    def __repr__(self) -> str:
        return f"File({self.url!r}, local_path={self.local_path!r})"

    def __fspath__(self) -> str:
        return self.filepath

    def __eq__(self, other) -> bool:
        return isinstance(other, File) and self.url == other.url

    def __hash__(self) -> int:
        return hash(self.url)
