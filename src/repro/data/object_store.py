"""A simulated remote-data substrate.

The paper's data manager moves files over HTTP, FTP, and Globus. This module
provides the "remote side" those protocols talk to: a filesystem-backed
object store keyed by URL, with configurable per-protocol latency and
bandwidth so staging costs are non-zero and measurable.

The store is **disk-backed** (one file per URL under a shared root) so that
transfer tasks running inside worker *processes* see the same objects the
submitting process published — the same way a real HTTP server would be
visible from every node.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import FileNotAvailable

#: Environment variable that pins the store root (set for worker processes).
STORE_ROOT_ENV = "REPRO_OBJECT_STORE_DIR"


@dataclass
class TransferCostModel:
    """Latency/bandwidth model applied to simulated transfers."""

    latency_s: float = 0.01
    bandwidth_bytes_per_s: float = 100e6

    def transfer_time(self, nbytes: int) -> float:
        return self.latency_s + nbytes / self.bandwidth_bytes_per_s


DEFAULT_COST_MODELS = {
    "http": TransferCostModel(latency_s=0.02, bandwidth_bytes_per_s=50e6),
    "https": TransferCostModel(latency_s=0.02, bandwidth_bytes_per_s=50e6),
    "ftp": TransferCostModel(latency_s=0.05, bandwidth_bytes_per_s=20e6),
    "globus": TransferCostModel(latency_s=0.1, bandwidth_bytes_per_s=200e6),
}


def default_store_root() -> str:
    return os.environ.get(STORE_ROOT_ENV, os.path.join(tempfile.gettempdir(), "repro-object-store"))


def _url_key(url: str) -> str:
    return hashlib.sha256(url.encode("utf-8")).hexdigest()


class ObjectStore:
    """URL-addressed byte storage standing in for remote HTTP/FTP/Globus endpoints."""

    def __init__(
        self,
        root: Optional[str] = None,
        name: str = "object-store",
        cost_models: Optional[Dict[str, TransferCostModel]] = None,
        max_simulated_delay_s: float = 2.0,
    ):
        self.name = name
        self.root = root or default_store_root()
        os.makedirs(self.root, exist_ok=True)
        self.cost_models = dict(cost_models or DEFAULT_COST_MODELS)
        self.max_simulated_delay_s = max_simulated_delay_s
        self._lock = threading.Lock()
        self.transfer_log: List[dict] = []

    # ------------------------------------------------------------------
    def _object_path(self, url: str) -> str:
        return os.path.join(self.root, _url_key(url) + ".obj")

    def _meta_path(self, url: str) -> str:
        return os.path.join(self.root, _url_key(url) + ".meta")

    def put(self, url: str, content) -> None:
        """Publish ``content`` (bytes or str) at ``url``."""
        if isinstance(content, str):
            content = content.encode("utf-8")
        with self._lock:
            with open(self._object_path(url), "wb") as fh:
                fh.write(bytes(content))
            with open(self._meta_path(url), "w") as fh:
                json.dump({"url": url, "bytes": len(content), "published_at": time.time()}, fh)

    def put_file(self, url: str, local_path: str) -> None:
        with open(local_path, "rb") as fh:
            self.put(url, fh.read())

    def exists(self, url: str) -> bool:
        return os.path.exists(self._object_path(url))

    def get(self, url: str, scheme: Optional[str] = None, simulate_cost: bool = True) -> bytes:
        """Fetch the bytes at ``url``, paying the protocol's transfer cost."""
        path = self._object_path(url)
        if not os.path.exists(path):
            raise FileNotAvailable(f"no object published at {url!r}")
        with open(path, "rb") as fh:
            content = fh.read()
        if simulate_cost:
            scheme = scheme or url.split(":", 1)[0]
            model = self.cost_models.get(scheme)
            if model is not None:
                duration = model.transfer_time(len(content))
                time.sleep(min(duration, self.max_simulated_delay_s))
                self.transfer_log.append({"url": url, "bytes": len(content), "duration": duration})
        return content

    def download_to(self, url: str, dest_path: str, scheme: Optional[str] = None) -> str:
        dest_dir = os.path.dirname(os.path.abspath(dest_path))
        os.makedirs(dest_dir, exist_ok=True)
        content = self.get(url, scheme=scheme)
        with open(dest_path, "wb") as fh:
            fh.write(content)
        return dest_path

    def size(self, url: str) -> int:
        path = self._object_path(url)
        if not os.path.exists(path):
            raise FileNotAvailable(f"no object published at {url!r}")
        return os.path.getsize(path)

    def delete(self, url: str) -> None:
        for path in (self._object_path(url), self._meta_path(url)):
            try:
                os.remove(path)
            except FileNotFoundError:
                pass

    def clear(self) -> None:
        for entry in os.listdir(self.root):
            if entry.endswith((".obj", ".meta")):
                try:
                    os.remove(os.path.join(self.root, entry))
                except FileNotFoundError:
                    pass
        self.transfer_log.clear()

    def urls(self) -> List[str]:
        found = []
        for entry in os.listdir(self.root):
            if entry.endswith(".meta"):
                try:
                    with open(os.path.join(self.root, entry)) as fh:
                        found.append(json.load(fh)["url"])
                except (OSError, ValueError, KeyError):
                    continue
        return found


_DEFAULT_STORE: Optional[ObjectStore] = None
_DEFAULT_STORE_LOCK = threading.Lock()


def get_default_store() -> ObjectStore:
    """The process-wide object store (shared on disk with worker processes)."""
    global _DEFAULT_STORE
    with _DEFAULT_STORE_LOCK:
        if _DEFAULT_STORE is None:
            _DEFAULT_STORE = ObjectStore()
        return _DEFAULT_STORE
