"""Staging providers: per-scheme transfer implementations used by the DataManager."""

from repro.data.staging.base import Staging
from repro.data.staging.http import HTTPStaging
from repro.data.staging.ftp import FTPStaging
from repro.data.staging.globus import GlobusStaging

__all__ = ["Staging", "HTTPStaging", "FTPStaging", "GlobusStaging"]
