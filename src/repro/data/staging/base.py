"""Staging provider interface.

A staging provider knows how to move one scheme's files. Two execution modes
exist, mirroring §4.5:

* ``stages_on_executor() == True`` — the transfer is itself a task submitted
  to an executor (HTTP and FTP work this way: the fetch happens on the
  compute resource),
* ``stages_on_executor() == False`` — the transfer is performed directly by
  the data manager (Globus third-party transfer), which lets resource
  provisioning be deferred until the data is already in place.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

from repro.data.files import File
from repro.data.object_store import ObjectStore, get_default_store


class Staging(ABC):
    """Base class for scheme-specific staging providers."""

    #: URL scheme(s) this provider handles.
    schemes = ()

    def __init__(self, store: Optional[ObjectStore] = None, working_dir: Optional[str] = None):
        self.store = store or get_default_store()
        self.working_dir = working_dir

    def can_stage_in(self, file: File) -> bool:
        return file.scheme in self.schemes

    def can_stage_out(self, file: File) -> bool:
        return file.scheme in self.schemes

    @abstractmethod
    def stage_in(self, file: File, dest_dir: str) -> str:
        """Fetch ``file`` into ``dest_dir``; returns the local path."""

    @abstractmethod
    def stage_out(self, file: File, source_path: str) -> None:
        """Publish the local ``source_path`` at the file's remote URL."""

    def stages_on_executor(self) -> bool:
        """Whether the transfer should run as an executor task (vs in the DFK)."""
        return True

    def __repr__(self) -> str:
        return f"{type(self).__name__}(schemes={self.schemes})"
