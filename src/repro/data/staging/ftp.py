"""FTP staging: the transfer runs as a task on the executor."""

from __future__ import annotations

import os

from repro.data.files import File
from repro.data.staging.base import Staging
from repro.errors import StagingError, FileNotAvailable


class FTPStaging(Staging):
    """Fetch/publish ftp URLs against the simulated object store."""

    schemes = ("ftp",)

    def stage_in(self, file: File, dest_dir: str) -> str:
        dest = os.path.join(dest_dir, file.filename)
        try:
            return self.store.download_to(file.url, dest, scheme="ftp")
        except FileNotAvailable as exc:
            raise StagingError("ftp", file.url, str(exc)) from exc

    def stage_out(self, file: File, source_path: str) -> None:
        if not os.path.exists(source_path):
            raise StagingError("ftp", file.url, f"local file {source_path} does not exist")
        self.store.put_file(file.url, source_path)
