"""Globus staging: third-party transfer executed by the data manager itself.

Globus (§4.5) differs from HTTP/FTP in that the transfer does not need to run
on the compute resource — the service moves data between endpoints directly.
The reproduction models this by performing the copy inside the DataFlowKernel
process (``stages_on_executor() == False``), still as a task in the graph so
dependent Apps wait on it, and by charging the globus cost model (higher
latency, higher bandwidth) from the object store.

Authentication uses the token-cache flow from :mod:`repro.auth`: when a
token store is supplied, the transfer refuses to run without a valid token,
mirroring Globus Auth integration (§4.6).
"""

from __future__ import annotations

import os

from repro.data.files import File
from repro.data.staging.base import Staging
from repro.errors import StagingError, FileNotAvailable


class GlobusStaging(Staging):
    """Endpoint-to-endpoint transfers driven by the data manager."""

    schemes = ("globus",)

    def __init__(self, endpoint_uuid: str = "local-endpoint", token_store=None, **kwargs):
        super().__init__(**kwargs)
        self.endpoint_uuid = endpoint_uuid
        self.token_store = token_store

    def stages_on_executor(self) -> bool:
        return False

    def _check_auth(self, file: File) -> None:
        if self.token_store is not None and not self.token_store.has_valid_token("transfer.api.globus.org"):
            raise StagingError("globus", file.url, "no valid Globus transfer token")

    def stage_in(self, file: File, dest_dir: str) -> str:
        self._check_auth(file)
        dest = os.path.join(dest_dir, file.filename)
        try:
            return self.store.download_to(file.url, dest, scheme="globus")
        except FileNotAvailable as exc:
            raise StagingError("globus", file.url, str(exc)) from exc

    def stage_out(self, file: File, source_path: str) -> None:
        self._check_auth(file)
        if not os.path.exists(source_path):
            raise StagingError("globus", file.url, f"local file {source_path} does not exist")
        self.store.put_file(file.url, source_path)
