"""HTTP/HTTPS staging: the transfer runs as a task on the executor."""

from __future__ import annotations

import os

from repro.data.files import File
from repro.data.staging.base import Staging
from repro.errors import StagingError, FileNotAvailable


class HTTPStaging(Staging):
    """Fetch http(s) URLs from the simulated object store onto the compute resource."""

    schemes = ("http", "https")

    def can_stage_out(self, file: File) -> bool:
        # Plain HTTP has no standard upload path; stage-out is unsupported,
        # matching the upstream behaviour.
        return False

    def stage_in(self, file: File, dest_dir: str) -> str:
        dest = os.path.join(dest_dir, file.filename)
        try:
            return self.store.download_to(file.url, dest, scheme=file.scheme)
        except FileNotAvailable as exc:
            raise StagingError(file.scheme, file.url, str(exc)) from exc

    def stage_out(self, file: File, source_path: str) -> None:
        raise StagingError(file.scheme, file.url, "HTTP stage-out is not supported")
