"""Exception hierarchy for the repro (Parsl-reproduction) library.

The hierarchy mirrors the failure domains described in the paper:

* configuration errors (bad :class:`~repro.config.Config` objects),
* app-level errors (user function raised, bash app returned non-zero),
* dataflow errors (dependency failures, join errors),
* executor errors (lost managers, scaling failures, serialization issues),
* provider errors (scheduler rejected a submission, unknown job ids),
* data-management errors (staging failures, missing files).

Every exception raised by this package derives from :class:`ReproException`
so that callers can catch library failures separately from user-code
failures, which are always re-raised (possibly wrapped in
:class:`DependencyError` or :class:`RemoteExceptionWrapper`).
"""

from __future__ import annotations

from typing import List, Optional


class ReproException(Exception):
    """Base class for all exceptions raised by the repro library."""


# ---------------------------------------------------------------------------
# Configuration errors
# ---------------------------------------------------------------------------

class ConfigurationError(ReproException):
    """Raised when a :class:`~repro.config.Config` is invalid or misused."""


class DuplicateExecutorLabelError(ConfigurationError):
    """Raised when two executors in a config share the same label."""

    def __init__(self, label: str):
        super().__init__(f"Duplicate executor label: {label!r}")
        self.label = label


class NoSuchExecutorError(ConfigurationError):
    """Raised when an app requests an executor label that is not configured."""

    def __init__(self, label: str, available: Optional[List[str]] = None):
        msg = f"No executor with label {label!r} is configured"
        if available:
            msg += f" (available: {', '.join(sorted(available))})"
        super().__init__(msg)
        self.label = label
        self.available = list(available or [])


# ---------------------------------------------------------------------------
# App errors
# ---------------------------------------------------------------------------

class AppException(ReproException):
    """Base class for errors raised on behalf of an App."""


class AppBadFormatting(AppException):
    """A bash app's command-line template could not be formatted."""


class BashAppNoReturn(AppException):
    """A bash app returned ``None`` instead of a command string."""


class BashExitFailure(AppException):
    """A bash app's command exited with a non-zero return code."""

    def __init__(self, app_name: str, exitcode: int):
        super().__init__(f"bash app {app_name!r} failed with unix exit code {exitcode}")
        self.app_name = app_name
        self.exitcode = exitcode


class AppTimeout(AppException):
    """An app exceeded its configured walltime."""


class TaskWalltimeExceeded(AppException):
    """A task ran past the ``walltime_s`` in its resource specification.

    Raised *on the worker* (the spec's walltime is enforced, not advisory):
    the task is killed and the error travels back through the executor
    future. The DataFlowKernel treats it as deterministic and fails the
    AppFuture without burning retries — a task that ran out of time once
    will run out of time again.
    """

    def __init__(self, message: str = "task exceeded its walltime"):
        # Single-positional-arg constructor so the exception round-trips
        # through pickle (RemoteExceptionWrapper ships it off the worker).
        super().__init__(message)


class MissingOutputs(AppException):
    """An app completed but did not produce one or more declared output files."""

    def __init__(self, reason: str, outputs):
        super().__init__(f"Missing outputs: {reason}: {outputs}")
        self.reason = reason
        self.outputs = outputs


# ---------------------------------------------------------------------------
# Dataflow errors
# ---------------------------------------------------------------------------

class DataFlowException(ReproException):
    """Base class for errors raised by the DataFlowKernel."""


class DependencyError(DataFlowException):
    """One or more dependencies of a task failed, so the task was not run.

    The failed dependencies are recorded so a user can walk the chain of
    failures back to the root cause.
    """

    def __init__(self, dependent_exceptions_tids, task_id):
        self.dependent_exceptions_tids = list(dependent_exceptions_tids)
        self.task_id = task_id
        deps = ", ".join(str(tid) for _, tid in self.dependent_exceptions_tids)
        super().__init__(
            f"Dependency failure for task {task_id} with failed dependencies from tasks [{deps}]"
        )


class JoinError(DataFlowException):
    """A join app returned something that is not a future (or list of futures)."""


class TaskNotFoundError(DataFlowException):
    """An operation referenced a task id unknown to the DFK."""


class DataFlowKernelClosedError(DataFlowException):
    """A task was submitted after the DataFlowKernel was cleaned up."""


# ---------------------------------------------------------------------------
# Executor errors
# ---------------------------------------------------------------------------

class ExecutorError(ReproException):
    """Base class for executor failures."""

    def __init__(self, executor_label: str, reason: str):
        super().__init__(f"Executor {executor_label!r} failed: {reason}")
        self.executor_label = executor_label
        self.reason = reason


class ScalingFailed(ExecutorError):
    """The executor could not scale out/in through its provider."""


class BadMessage(ReproException):
    """A malformed message was received on an executor channel."""


class ManagerLost(ReproException):
    """A manager (pilot agent) stopped heartbeating while holding tasks.

    Mirrors the HTEX behaviour in §4.3.1: the interchange notices the missing
    heartbeat and raises this on behalf of every outstanding task on that
    manager so the DFK can retry them.
    """

    def __init__(self, manager_id: str, hostname: str = "unknown"):
        super().__init__(f"Manager {manager_id!r} on host {hostname} was lost (missed heartbeats)")
        self.manager_id = manager_id
        self.hostname = hostname


class WorkerLost(ReproException):
    """A worker process died while executing a task.

    The manager's supervisor thread detects the death (``Process.exitcode``
    went non-None without a shutdown being requested), synthesizes this
    failure for the task the worker had claimed, and respawns the worker.
    The interchange counts the kill against the task (see
    :class:`WorkerPoisonError`) and redispatches it while the count stays
    under the poison threshold. Classified *retryable* by the default
    :class:`~repro.core.retry.RetryPolicy` — one crash is circumstance, not
    destiny.
    """

    def __init__(self, worker_id, hostname: str = "unknown", exitcode: "int | None" = None):
        detail = f" (exit code {exitcode})" if exitcode is not None else ""
        super().__init__(f"Worker {worker_id} on host {hostname} was lost{detail}")
        self.worker_id = worker_id
        self.hostname = hostname
        self.exitcode = exitcode

    def __reduce__(self):
        return (type(self), (self.worker_id, self.hostname, self.exitcode))


class WorkerPoisonError(ReproException):
    """A task's execution killed workers ``poison_threshold`` times.

    Raised by the interchange *instead of redispatching* once the per-task
    worker-kill count reaches the threshold: one bad task (a segfaulting
    extension, an ``os._exit`` in user code, a reliable OOM) must not
    serially murder every worker in a block. Deterministic by presumption,
    so the DataFlowKernel's retry policy fails the AppFuture fast without
    burning retries.
    """

    def __init__(self, task_id, kills: int = 0, hostname: str = "unknown"):
        super().__init__(
            f"Task {task_id} was quarantined as poison: its execution killed "
            f"{kills} worker(s) (last on host {hostname})"
        )
        self.task_id = task_id
        self.kills = kills
        self.hostname = hostname

    def __reduce__(self):
        return (type(self), (self.task_id, self.kills, self.hostname))


class SerializationError(ReproException):
    """A task's function, arguments, or result could not be serialized."""

    def __init__(self, what: str, underlying: Optional[Exception] = None):
        msg = f"Failed to serialize {what}"
        if underlying is not None:
            msg += f": {underlying!r}"
        super().__init__(msg)
        self.what = what
        self.underlying = underlying


class DeserializationError(ReproException):
    """A message or result could not be deserialized."""


class UnsupportedFeatureError(ReproException):
    """A feature not supported by the selected executor was requested."""


class ResourceSpecError(ReproException):
    """A per-task resource specification is malformed or unsatisfiable."""


# ---------------------------------------------------------------------------
# Provider / channel / launcher errors
# ---------------------------------------------------------------------------

class ProviderException(ReproException):
    """Base class for execution-provider failures."""


class SubmitException(ProviderException):
    """The resource manager rejected a block submission."""

    def __init__(self, label: str, reason: str):
        super().__init__(f"Provider {label!r} failed to submit block: {reason}")
        self.label = label
        self.reason = reason


class JobNotFoundError(ProviderException):
    """A job id was not known to the resource manager."""


class InsufficientResources(ProviderException):
    """The requested block cannot ever be satisfied by the resource pool."""


class WalltimeExceeded(ProviderException):
    """A block exceeded its requested walltime and was killed by the LRM."""


class ChannelError(ReproException):
    """Base class for channel failures (connection, auth, file movement)."""

    def __init__(self, reason: str, hostname: str = "localhost"):
        super().__init__(f"Channel to {hostname} failed: {reason}")
        self.reason = reason
        self.hostname = hostname


class ChannelRequiredError(ChannelError):
    """An operation requiring a channel was attempted without one."""

    def __init__(self):
        super().__init__("a channel is required but none was configured")


class LauncherError(ReproException):
    """A launcher could not construct or run its wrapped command."""


# ---------------------------------------------------------------------------
# Data management errors
# ---------------------------------------------------------------------------

class DataManagerError(ReproException):
    """Base class for data-management failures."""


class StagingError(DataManagerError):
    """A file could not be staged in or out."""

    def __init__(self, protocol: str, url: str, reason: str = ""):
        msg = f"Failed to stage {protocol} file {url}"
        if reason:
            msg += f": {reason}"
        super().__init__(msg)
        self.protocol = protocol
        self.url = url
        self.reason = reason


class FileNotAvailable(DataManagerError):
    """A remote file was requested that does not exist in the object store."""


# ---------------------------------------------------------------------------
# Monitoring errors
# ---------------------------------------------------------------------------

class MonitoringError(ReproException):
    """A monitoring component failed (hub, router, or database)."""


# ---------------------------------------------------------------------------
# Gateway service errors
# ---------------------------------------------------------------------------

class ServiceError(ReproException):
    """Base class for workflow-gateway failures (server or client side)."""


class AuthenticationError(ServiceError):
    """The gateway rejected a client's tenant token or session credentials."""


class SessionExpiredError(ServiceError):
    """A resume attempt referenced a session the gateway has evicted."""


class TaskCancelledError(ServiceError):
    """A queued gateway task was cancelled before it was dispatched."""


class ShardUnavailableError(ServiceError):
    """No live DFK shard could take the task, though the gateway is up.

    Raised on the client side when the gateway answers a submit with a
    ``shard_unavailable`` error frame. Distinguishes *retry-later* (the
    gateway is reachable but every shard that could serve this tenant is
    down or draining — the task was never admitted, so resubmitting once a
    shard returns is safe) from *re-route* (the gateway itself is gone,
    which surfaces as :class:`ServiceError`/connection failures instead).
    """

    def __init__(self, reason: str, shard: "int | None" = None):
        super().__init__(reason)
        #: Index of the tenant's home shard when the gateway reported one.
        self.shard = shard


class HttpEdgeError(ServiceError):
    """The HTTP edge rejected or could not complete a request.

    Carries the HTTP status code the edge answered (or would answer) with,
    so SDK callers can branch on e.g. 429 (backpressure) vs 410 (session
    expired) without string matching.
    """

    def __init__(self, status: int, reason: str):
        super().__init__(f"HTTP {status}: {reason}")
        self.status = status
        self.reason = reason


# ---------------------------------------------------------------------------
# Remote exception wrapping
# ---------------------------------------------------------------------------

class RemoteExceptionWrapper:
    """Carry an exception raised on a remote worker back to the submit side.

    Tracebacks are not picklable, so we capture the formatted traceback text
    and re-raise the original exception (when it is picklable) or a
    :class:`ReproException` describing it (when it is not).
    """

    def __init__(self, e_type, e_value, traceback_str: str):
        self.e_type = e_type
        self.e_value = e_value
        self.traceback_str = traceback_str

    @classmethod
    def from_exception(cls, exc: BaseException) -> "RemoteExceptionWrapper":
        import traceback

        tb = "".join(traceback.format_exception(type(exc), exc, exc.__traceback__))
        return cls(type(exc), exc, tb)

    def reraise(self):
        """Re-raise the wrapped exception on the caller's side."""
        raise self.e_value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RemoteExceptionWrapper({self.e_type.__name__}: {self.e_value})"
