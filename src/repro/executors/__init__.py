"""Executors (§4.3): pluggable mechanisms that move tasks to resources and results back."""

from repro.executors.base import ReproExecutor
from repro.executors.threads import ThreadPoolExecutor
from repro.executors.htex.executor import HighThroughputExecutor
from repro.executors.llex.executor import LowLatencyExecutor
from repro.executors.exex.executor import ExtremeScaleExecutor

__all__ = [
    "ReproExecutor",
    "ThreadPoolExecutor",
    "HighThroughputExecutor",
    "LowLatencyExecutor",
    "ExtremeScaleExecutor",
]
