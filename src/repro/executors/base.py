"""Executor base class.

Parsl executors extend the ``concurrent.futures.Executor`` interface (§4.3)
with the capabilities the DataFlowKernel and the elasticity strategy need:
block-oriented scaling through a provider, status reporting, monitoring
hooks, and deferred initialization (``start()`` is separate from
construction so a Config can be built cheaply and inspected).
"""

from __future__ import annotations

import concurrent.futures as cf
import threading
from abc import ABC, abstractmethod
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ScalingFailed
from repro.providers.base import ExecutionProvider, JobStatus
from repro.utils.ids import make_block_id

#: One entry of a batched submission: (func, resource_specification, args, kwargs).
SubmitRequest = Tuple[Callable, Dict[str, Any], Tuple[Any, ...], Dict[str, Any]]


class ReproExecutor(ABC):
    """Base class for all executors.

    Subclasses implement :meth:`start`, :meth:`submit`, and :meth:`shutdown`.
    Scaling (:meth:`scale_out` / :meth:`scale_in`) has a common implementation
    driven by the executor's provider and ``launch_cmd``; executors without a
    provider (e.g. the thread pool) simply report that scaling is disabled.
    """

    #: Default label; overridden per instance via the constructor.
    label: str = "executor"

    def __init__(self, label: str, provider: Optional[ExecutionProvider] = None):
        self.label = label
        self.provider = provider
        self.blocks: Dict[str, str] = {}          # block_id -> provider job id
        self.block_mapping: Dict[str, str] = {}   # provider job id -> block_id
        self._executor_bad_state = threading.Event()
        self._executor_exception: Optional[Exception] = None
        self.run_dir: str = "."
        self.monitoring_radio = None              # set by the DFK when monitoring is on

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @abstractmethod
    def start(self) -> None:
        """Bring up any executor-side infrastructure (interchange, pools)."""

    @abstractmethod
    def submit(self, func: Callable, resource_specification: Dict[str, Any], *args, **kwargs) -> cf.Future:
        """Submit a callable for asynchronous execution, returning a future."""

    @abstractmethod
    def shutdown(self, block: bool = True) -> None:
        """Tear down the executor and release all resources."""

    def submit_batch(self, requests: Sequence[SubmitRequest]) -> List[cf.Future]:
        """Submit many tasks at once, returning one future per request.

        Executors with a batched wire protocol (HTEX) override this to move
        the whole batch in one hop. The default simply loops over
        :meth:`submit`, converting a raised submission error into an exception
        set on that request's future — so callers (the DFK dispatcher) always
        get exactly ``len(requests)`` futures and handle failures uniformly.
        """
        futures: List[cf.Future] = []
        for func, resource_specification, args, kwargs in requests:
            try:
                futures.append(self.submit(func, resource_specification, *args, **kwargs))
            except Exception as exc:  # noqa: BLE001 - surfaced via the future
                failed: cf.Future = cf.Future()
                failed.set_exception(exc)
                futures.append(failed)
        return futures

    # ------------------------------------------------------------------
    # Error state
    # ------------------------------------------------------------------
    def set_bad_state_and_fail_all(self, exception: Exception) -> None:
        """Mark the executor as failed; the DFK stops routing tasks to it."""
        self._executor_exception = exception
        self._executor_bad_state.set()

    @property
    def bad_state_is_set(self) -> bool:
        return self._executor_bad_state.is_set()

    @property
    def executor_exception(self) -> Optional[Exception]:
        return self._executor_exception

    # ------------------------------------------------------------------
    # Introspection used by the strategy
    # ------------------------------------------------------------------
    @property
    def outstanding(self) -> int:
        """Number of tasks submitted to this executor but not yet complete."""
        return 0

    @property
    def connected_workers(self) -> int:
        """Number of workers currently connected / available."""
        return 0

    @property
    def workers_per_block(self) -> int:
        """Estimated workers provided by one block (used for scaling decisions)."""
        return 1

    @property
    def scaling_enabled(self) -> bool:
        """Whether the strategy may scale this executor through its provider."""
        return self.provider is not None

    def status(self) -> Dict[str, JobStatus]:
        """Status of every block owned by this executor, keyed by block id."""
        if self.provider is None or not self.blocks:
            return {}
        job_ids = list(self.blocks.values())
        statuses = self.provider.status(job_ids)
        return {block_id: status for block_id, status in zip(self.blocks.keys(), statuses)}

    # ------------------------------------------------------------------
    # Block scaling
    # ------------------------------------------------------------------
    def _launch_block_command(self, block_id: str) -> str:
        """Return the command line a block should run (worker pool start)."""
        raise NotImplementedError(f"{type(self).__name__} does not launch blocks")

    def scale_out(self, blocks: int = 1) -> List[str]:
        """Request ``blocks`` new blocks from the provider; returns new block ids."""
        if self.provider is None:
            raise ScalingFailed(self.label, "no execution provider configured")
        new_blocks = []
        for _ in range(blocks):
            block_id = make_block_id()
            cmd = self._launch_block_command(block_id)
            job_id = self.provider.submit(cmd, tasks_per_node=1, job_name=f"{self.label}.{block_id}")
            self.blocks[block_id] = job_id
            self.block_mapping[job_id] = block_id
            new_blocks.append(block_id)
        return new_blocks

    def scale_in(self, blocks: int = 1, block_ids: Optional[List[str]] = None) -> List[str]:
        """Cancel ``blocks`` blocks (most recently started first unless ids given)."""
        if self.provider is None:
            raise ScalingFailed(self.label, "no execution provider configured")
        if block_ids is None:
            block_ids = list(self.blocks.keys())[-blocks:] if blocks else []
        job_ids = [self.blocks[b] for b in block_ids if b in self.blocks]
        if job_ids:
            self.provider.cancel(job_ids)
        for b in block_ids:
            job_id = self.blocks.pop(b, None)
            if job_id is not None:
                self.block_mapping.pop(job_id, None)
        return block_ids

    def __repr__(self) -> str:
        return f"{type(self).__name__}(label={self.label!r})"
