"""Executor base class.

Parsl executors extend the ``concurrent.futures.Executor`` interface (§4.3)
with the capabilities the DataFlowKernel and the elasticity strategy need:
block-oriented scaling through a provider, status reporting, monitoring
hooks, and deferred initialization (``start()`` is separate from
construction so a Config can be built cheaply and inspected).
"""

from __future__ import annotations

import concurrent.futures as cf
import logging
import threading
from abc import ABC, abstractmethod
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ScalingFailed
from repro.executors.blocks import BlockRecord, BlockRegistry, BlockState
from repro.providers.base import ExecutionProvider, JobStatus
from repro.utils.ids import make_block_id
from repro.utils.timers import RepeatedTimer

logger = logging.getLogger(__name__)

#: One entry of a batched submission: (func, resource_specification, args,
#: kwargs) plus an optional trailing trace context dict (see
#: :mod:`repro.observability.trace`) — executors that don't propagate traces
#: may ignore it, so unpack with ``request[:4]``.
SubmitRequest = Tuple[Any, ...]


class ReproExecutor(ABC):
    """Base class for all executors.

    Subclasses implement :meth:`start`, :meth:`submit`, and :meth:`shutdown`.
    Scaling (:meth:`scale_out` / :meth:`scale_in`) has a common implementation
    driven by the executor's provider and ``launch_cmd``; executors without a
    provider (e.g. the thread pool) simply report that scaling is disabled.
    """

    #: Default label; overridden per instance via the constructor.
    label: str = "executor"

    def __init__(self, label: str, provider: Optional[ExecutionProvider] = None):
        self.label = label
        self.provider = provider
        self.blocks: Dict[str, str] = {}          # block_id -> provider job id
        self.block_mapping: Dict[str, str] = {}   # provider job id -> block_id
        self.block_registry = BlockRegistry(label=label, on_transition=self._on_block_transition)
        self._status_poller: Optional[RepeatedTimer] = None
        self._executor_bad_state = threading.Event()
        self._executor_exception: Optional[Exception] = None
        self.run_dir: str = "."
        self.monitoring_radio = None              # set by the DFK when monitoring is on
        # Shared metrics registry; the DFK swaps in its real one before
        # start() when Config.metrics_enabled. Imported lazily-by-value here
        # so a bare executor (tests, standalone pools) records into a no-op.
        from repro.observability.metrics import NULL_REGISTRY

        self.metrics = NULL_REGISTRY

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @abstractmethod
    def start(self) -> None:
        """Bring up any executor-side infrastructure (interchange, pools)."""

    @abstractmethod
    def submit(self, func: Callable, resource_specification: Dict[str, Any], *args, **kwargs) -> cf.Future:
        """Submit a callable for asynchronous execution, returning a future."""

    @abstractmethod
    def shutdown(self, block: bool = True) -> None:
        """Tear down the executor and release all resources."""

    def submit_batch(self, requests: Sequence[SubmitRequest]) -> List[cf.Future]:
        """Submit many tasks at once, returning one future per request.

        Executors with a batched wire protocol (HTEX) override this to move
        the whole batch in one hop. The default simply loops over
        :meth:`submit`, converting a raised submission error into an exception
        set on that request's future — so callers (the DFK dispatcher) always
        get exactly ``len(requests)`` futures and handle failures uniformly.
        """
        futures: List[cf.Future] = []
        for request in requests:
            func, resource_specification, args, kwargs = request[:4]
            try:
                futures.append(self.submit(func, resource_specification, *args, **kwargs))
            except Exception as exc:  # noqa: BLE001 - surfaced via the future
                failed: cf.Future = cf.Future()
                failed.set_exception(exc)
                futures.append(failed)
        return futures

    # ------------------------------------------------------------------
    # Error state
    # ------------------------------------------------------------------
    def set_bad_state_and_fail_all(self, exception: Exception) -> None:
        """Mark the executor as failed; the DFK stops routing tasks to it."""
        self._executor_exception = exception
        self._executor_bad_state.set()

    @property
    def bad_state_is_set(self) -> bool:
        return self._executor_bad_state.is_set()

    @property
    def executor_exception(self) -> Optional[Exception]:
        return self._executor_exception

    # ------------------------------------------------------------------
    # Introspection used by the strategy
    # ------------------------------------------------------------------
    @property
    def outstanding(self) -> int:
        """Number of tasks submitted to this executor but not yet complete."""
        return 0

    @property
    def connected_workers(self) -> int:
        """Number of workers currently connected / available."""
        return 0

    @property
    def workers_per_block(self) -> int:
        """Estimated workers provided by one block (used for scaling decisions)."""
        return 1

    @property
    def scaling_enabled(self) -> bool:
        """Whether the strategy may scale this executor through its provider."""
        return self.provider is not None

    @property
    def supports_resource_specs(self) -> bool:
        """Whether this executor honors per-task resource specifications.

        The DFK router only sends a task carrying a non-default spec to an
        executor that can honor it (when any is configured): an executor
        that rejects specs (LLEX) would fail the task terminally, and one
        that ignores them (the thread pool) would silently drop the cores
        reservation and priority.
        """
        return False

    def status(self) -> Dict[str, JobStatus]:
        """Status of every block owned by this executor, keyed by block id."""
        if self.provider is None or not self.blocks:
            return {}
        job_ids = list(self.blocks.values())
        statuses = self.provider.status(job_ids)
        return {block_id: status for block_id, status in zip(self.blocks.keys(), statuses)}

    # ------------------------------------------------------------------
    # Block scaling
    # ------------------------------------------------------------------
    def _launch_block_command(self, block_id: str) -> str:
        """Return the command line a block should run (worker pool start)."""
        raise NotImplementedError(f"{type(self).__name__} does not launch blocks")

    def scale_out(self, blocks: int = 1) -> List[str]:
        """Request ``blocks`` new blocks from the provider; returns new block ids."""
        if self.provider is None:
            raise ScalingFailed(self.label, "no execution provider configured")
        new_blocks = []
        for _ in range(blocks):
            block_id = make_block_id()
            cmd = self._launch_block_command(block_id)
            job_id = self.provider.submit(cmd, tasks_per_node=1, job_name=f"{self.label}.{block_id}")
            self.blocks[block_id] = job_id
            self.block_mapping[job_id] = block_id
            self.block_registry.add(block_id, job_id)
            new_blocks.append(block_id)
        return new_blocks

    def scale_in(
        self,
        blocks: int = 1,
        block_ids: Optional[List[str]] = None,
        max_idletime: Optional[float] = None,
    ) -> List[str]:
        """Retire ``blocks`` blocks, targeting *idle* blocks first.

        Selection order when ``block_ids`` is not given: blocks the registry
        reports IDLE (longest idle first, and — when ``max_idletime`` is set —
        only those idle at least that long), then PENDING blocks that have not
        started working, then, only when no idleness information exists at
        all, the most recently started blocks (the legacy behaviour).

        Each selected block goes through :meth:`_terminate_block`, which
        executors with a drain protocol (HTEX) override to stop dispatch,
        let in-flight tasks settle, and only then cancel the provider job.
        """
        if self.provider is None:
            raise ScalingFailed(self.label, "no execution provider configured")
        if block_ids is None:
            block_ids = self._select_blocks_for_scale_in(blocks, max_idletime)
        self._terminate_blocks(block_ids, reason="scale-in")
        return block_ids

    def _select_blocks_for_scale_in(self, blocks: int, max_idletime: Optional[float]) -> List[str]:
        selected: List[str] = []
        idle = self.block_registry.idle_blocks(min_idle=max_idletime or 0.0)
        selected.extend(r.block_id for r in idle[:blocks])
        if len(selected) < blocks and max_idletime is None:
            # No hysteresis requested (a direct scale_in call): fall back to
            # pending blocks, then newest-first over whatever remains. Blocks
            # already draining (or otherwise non-active) are never re-selected
            # — terminating a draining block again would kill the in-flight
            # tasks its drain is waiting on.
            pending = [
                r.block_id
                for r in reversed(self.block_registry.active_blocks())
                if r.state is BlockState.PENDING and r.block_id not in selected
            ]
            selected.extend(pending[: blocks - len(selected)])
            if len(selected) < blocks:
                remaining = []
                for block_id in reversed(list(self.blocks.keys())):
                    record = self.block_registry.get(block_id)
                    if block_id not in selected and (record is None or record.state.active):
                        remaining.append(block_id)
                selected.extend(remaining[: blocks - len(selected)])
        return selected[:blocks]

    def _terminate_blocks(self, block_ids: List[str], reason: str = "") -> None:
        """Cancel blocks' provider jobs immediately (no drain protocol).

        All selected jobs go to the provider in ONE ``cancel`` call — batch
        schedulers are often rate-limited, and a wide scale-in should not
        turn into N sequential RPCs on the strategy thread. Executors with a
        drain protocol (HTEX) override this.
        """
        job_ids: List[str] = []
        for block_id in block_ids:
            job_id = self.blocks.pop(block_id, None)
            if job_id is not None:
                self.block_mapping.pop(job_id, None)
                job_ids.append(job_id)
        if job_ids:
            try:
                self.provider.cancel(job_ids)
            except Exception:  # noqa: BLE001 - record the orphaned jobs, keep scaling
                logger.exception(
                    "executor %s failed to cancel jobs %s during scale-in; "
                    "the provider may still be running them", self.label, job_ids,
                )
        for block_id in block_ids:
            self.block_registry.mark_terminated(block_id, reason=reason)

    # ------------------------------------------------------------------
    # Block observation (provider polls, activity reports, monitoring)
    # ------------------------------------------------------------------
    def start_block_monitoring(self) -> None:
        """Start the background provider-status poll feeding the registry."""
        if self.provider is None or self._status_poller is not None:
            return
        self._status_poller = RepeatedTimer(
            max(self.provider.status_polling_interval, 0.05),
            self._poll_provider_status,
            name=f"{self.label}-block-poller",
        )
        self._status_poller.start()

    def stop_block_monitoring(self) -> None:
        if self._status_poller is not None:
            self._status_poller.close()
            self._status_poller = None

    def _poll_provider_status(self) -> None:
        """One provider status sweep: fold job states into the registry.

        A block whose job reached a terminal state without the strategy asking
        for it (crash, walltime) is retired here so the strategy sees reduced
        capacity and can replace it.
        """
        if self.provider is None:
            return
        items = list(self.blocks.items())
        if not items:
            return
        try:
            statuses = self.provider.status([job_id for _, job_id in items])
        except Exception:  # noqa: BLE001 - a flaky scheduler must not kill the poller
            logger.exception("executor %s: provider status poll failed", self.label)
            return
        for (block_id, job_id), status in zip(items, statuses):
            self.block_registry.observe_provider(block_id, status.state)
            record = self.block_registry.get(block_id)
            if record is not None and record.state.terminal:
                self.blocks.pop(block_id, None)
                self.block_mapping.pop(job_id, None)

    def update_block_activity(self) -> bool:
        """Refresh per-block busy/idle data in the registry.

        Returns ``True`` when the executor supplied per-block telemetry (HTEX
        overrides this with the interchange's per-manager report); the base
        implementation has none, so the strategy falls back to executor-wide
        idleness.
        """
        return False

    def _on_block_transition(self, record: BlockRecord, old, new) -> None:
        """Emit a BLOCK_INFO monitoring event for every block state change."""
        if self.monitoring_radio is None:
            return
        from repro.monitoring.messages import MessageType

        self.monitoring_radio.send(
            MessageType.BLOCK_INFO,
            {
                "executor": self.label,
                "block_id": record.block_id,
                "job_id": record.job_id,
                "old_state": old.value if old is not None else None,
                "new_state": new.value,
                "idle_since": record.idle_since,
                "reason": record.reason,
            },
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(label={self.label!r})"
