"""Block lifecycle tracking for the elasticity engine (§3.6, §4.4).

Every provider-backed executor owns a :class:`BlockRegistry`: the
authoritative, thread-safe record of each pilot-job block it has requested.
A block moves through a small state machine::

    PENDING ──▶ RUNNING ◀──▶ IDLE ──▶ DRAINING ──▶ TERMINATED
       │           │           │          │
       └───────────┴───────────┴──────────┴──────▶ FAILED / TERMINATED
                  (provider reports a terminal job state)

Two information sources feed the registry:

* **provider status polls** — a background timer on the executor calls the
  provider's ``status()`` and maps job states onto block states (a terminal
  job state retires the block even if the strategy never asked for it);
* **activity reports** — per-manager idle/capacity data from the HTEX
  interchange (or, for executors without per-block telemetry, the strategy's
  executor-wide outstanding count) drives the RUNNING ⟷ IDLE edge and stamps
  ``idle_since``, which is what the strategy's ``max_idletime`` hysteresis
  keys off.

The registry is deliberately executor-agnostic: it never talks to a provider
or an interchange itself, it only records what the executor observed, so it
can be unit-tested (and reasoned about) in isolation.
"""

from __future__ import annotations

import enum
import logging
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.providers.base import JobState

logger = logging.getLogger(__name__)


class BlockState(enum.Enum):
    """Lifecycle states of one pilot-job block."""

    PENDING = "PENDING"        # requested from the provider, no activity seen yet
    RUNNING = "RUNNING"        # managers connected and executing tasks
    IDLE = "IDLE"              # managers connected (or block booted) with no work
    DRAINING = "DRAINING"      # selected for scale-in; no new dispatches
    TERMINATED = "TERMINATED"  # cancelled or exited cleanly
    FAILED = "FAILED"          # provider reported a failure

    @property
    def active(self) -> bool:
        """Whether the block still counts toward executor capacity."""
        return self in (BlockState.PENDING, BlockState.RUNNING, BlockState.IDLE)

    @property
    def terminal(self) -> bool:
        return self in (BlockState.TERMINATED, BlockState.FAILED)


#: Provider job states that retire a block outright.
_TERMINAL_FAILURES = (JobState.FAILED, JobState.TIMEOUT, JobState.MISSING)


@dataclass
class BlockRecord:
    """Everything the executor knows about one block."""

    block_id: str
    job_id: str
    state: BlockState = BlockState.PENDING
    created_at: float = field(default_factory=time.time)
    state_since: float = field(default_factory=time.time)
    #: When the block was last observed to have no outstanding work
    #: (``None`` while busy / pending). The strategy's hysteresis input.
    idle_since: Optional[float] = None
    #: Managers currently connected for this block (interchange report).
    managers: int = 0
    #: Tasks in flight on this block's managers (interchange report).
    outstanding_tasks: int = 0
    #: Last job state the provider reported.
    provider_state: Optional[JobState] = None
    #: How long the block had been idle when scale-in selected it.
    idle_at_drain: Optional[float] = None
    #: Human-readable reason for the final transition.
    reason: str = ""

    def idle_for(self, now: Optional[float] = None) -> float:
        """Seconds this block has been continuously idle (0.0 while busy)."""
        if self.idle_since is None:
            return 0.0
        return max((now or time.time()) - self.idle_since, 0.0)


class BlockRegistry:
    """Thread-safe block table with state-transition notifications.

    ``on_transition(record, old_state, new_state)`` is invoked *outside* the
    registry lock for every state change — the executor uses it to emit
    ``BLOCK_INFO`` monitoring events.
    """

    def __init__(
        self,
        label: str = "executor",
        on_transition: Optional[Callable[[BlockRecord, BlockState, BlockState], None]] = None,
        max_terminal_records: int = 256,
    ):
        self.label = label
        self.on_transition = on_transition
        #: Retired records kept for introspection (benchmarks, monitoring
        #: snapshots); beyond this many, the oldest are pruned so a long
        #: elastic run cycling thousands of blocks cannot grow the table —
        #: and the strategy's per-round scans — without bound.
        self.max_terminal_records = max_terminal_records
        self._records: Dict[str, BlockRecord] = {}
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # Bookkeeping primitives
    # ------------------------------------------------------------------
    def add(self, block_id: str, job_id: str) -> BlockRecord:
        """Register a freshly requested block in the PENDING state."""
        record = BlockRecord(block_id=block_id, job_id=job_id)
        with self._lock:
            self._records[block_id] = record
        self._notify(record, None, BlockState.PENDING)
        return record

    def get(self, block_id: str) -> Optional[BlockRecord]:
        with self._lock:
            return self._records.get(block_id)

    def __contains__(self, block_id: str) -> bool:
        with self._lock:
            return block_id in self._records

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def snapshot(self) -> List[BlockRecord]:
        """A point-in-time copy of all records (including terminated ones)."""
        with self._lock:
            return list(self._records.values())

    # ------------------------------------------------------------------
    # Queries used by the strategy
    # ------------------------------------------------------------------
    def active_blocks(self) -> List[BlockRecord]:
        with self._lock:
            return [r for r in self._records.values() if r.state.active]

    def active_count(self) -> int:
        with self._lock:
            return sum(1 for r in self._records.values() if r.state.active)

    def draining_count(self) -> int:
        with self._lock:
            return sum(1 for r in self._records.values() if r.state is BlockState.DRAINING)

    def idle_blocks(self, min_idle: float = 0.0, now: Optional[float] = None) -> List[BlockRecord]:
        """Blocks eligible for scale-in: idle at least ``min_idle`` seconds.

        Sorted longest-idle first, so the strategy retires the block that has
        wasted allocation time the longest.
        """
        now = now or time.time()
        with self._lock:
            eligible = [
                r
                for r in self._records.values()
                if r.state is BlockState.IDLE and r.idle_for(now) >= min_idle
            ]
        eligible.sort(key=lambda r: r.idle_for(now), reverse=True)
        return eligible

    # ------------------------------------------------------------------
    # Observations
    # ------------------------------------------------------------------
    def observe_provider(self, block_id: str, job_state: JobState) -> None:
        """Fold one provider status poll into the block's state."""
        with self._lock:
            record = self._records.get(block_id)
            if record is None or record.state.terminal:
                return
            record.provider_state = job_state
            old = record.state
            if job_state in _TERMINAL_FAILURES:
                new = BlockState.FAILED
            elif job_state.terminal:
                # COMPLETED / CANCELLED: the block exited.
                new = BlockState.TERMINATED
            elif job_state is JobState.RUNNING and record.state is BlockState.PENDING:
                # The job is up but no manager has reported yet: treat the
                # boot window as idle so a block that never receives work is
                # still reclaimable by the max_idletime hysteresis.
                new = BlockState.IDLE
            else:
                return
            self._transition_locked(record, new, reason=f"provider reported {job_state.value}")
        self._notify(record, old, record.state)

    def observe_activity(self, block_id: str, managers: int, outstanding: int) -> None:
        """Fold one interchange activity report into the block's state."""
        with self._lock:
            record = self._records.get(block_id)
            if record is None or record.state.terminal or record.state is BlockState.DRAINING:
                return
            record.managers = managers
            record.outstanding_tasks = outstanding
            old = record.state
            if managers <= 0:
                return
            new = BlockState.RUNNING if outstanding > 0 else BlockState.IDLE
            if new is old:
                return
            self._transition_locked(record, new)
        self._notify(record, old, record.state)

    def observe_managers_lost(self, block_id: str) -> None:
        """All managers of a previously reporting block are gone.

        The provider job may still be alive (e.g. the managers were
        OOM-killed inside a batch job whose launcher survives). The block can
        do no work in that state, so it counts as idle from now — making it
        reclaimable by the ``max_idletime`` hysteresis instead of burning
        allocation until walltime.
        """
        with self._lock:
            record = self._records.get(block_id)
            if record is None or record.state.terminal or record.state is BlockState.DRAINING:
                return
            record.managers = 0
            record.outstanding_tasks = 0
            if record.state is not BlockState.RUNNING:
                return
            old = record.state
            self._transition_locked(record, BlockState.IDLE, reason="managers lost")
        self._notify(record, old, record.state)

    def mark_all_idle(self) -> None:
        """Executor-wide fallback: no outstanding work anywhere.

        Used by the strategy for executors without per-block telemetry;
        already-idle blocks keep their original ``idle_since``.
        """
        self._mark_all(BlockState.IDLE)

    def mark_all_busy(self) -> None:
        """Executor-wide fallback: there is outstanding work somewhere.

        Without per-block telemetry we cannot tell *which* blocks are busy,
        so the conservative reading is that none are reclaimable — this is
        exactly the whole-executor hysteresis the paper's ``simple`` strategy
        uses.
        """
        self._mark_all(BlockState.RUNNING)

    def _mark_all(self, state: BlockState) -> None:
        changed = []
        with self._lock:
            for record in self._records.values():
                if not record.state.active or record.state is state:
                    continue
                old = record.state
                self._transition_locked(record, state)
                changed.append((record, old))
        for record, old in changed:
            self._notify(record, old, record.state)

    # ------------------------------------------------------------------
    # Scale-in bookkeeping
    # ------------------------------------------------------------------
    def mark_draining(self, block_id: str, reason: str = "selected for scale-in") -> None:
        with self._lock:
            record = self._records.get(block_id)
            if record is None or record.state.terminal:
                return
            old = record.state
            record.idle_at_drain = record.idle_for()
            self._transition_locked(record, BlockState.DRAINING, reason=reason)
        self._notify(record, old, record.state)

    def mark_terminated(self, block_id: str, reason: str = "", failed: bool = False) -> None:
        with self._lock:
            record = self._records.get(block_id)
            if record is None or record.state.terminal:
                return
            old = record.state
            new = BlockState.FAILED if failed else BlockState.TERMINATED
            self._transition_locked(record, new, reason=reason)
        self._notify(record, old, record.state)

    # ------------------------------------------------------------------
    def _transition_locked(self, record: BlockRecord, new: BlockState, reason: str = "") -> None:
        """Apply one transition; caller holds the lock and handles notify."""
        now = time.time()
        if new is BlockState.IDLE:
            if record.idle_since is None:
                record.idle_since = now
        elif new in (BlockState.RUNNING, BlockState.PENDING):
            record.idle_since = None
        record.state = new
        record.state_since = now
        if reason:
            record.reason = reason
        if new.terminal:
            self._prune_terminal_locked()

    def _prune_terminal_locked(self) -> None:
        terminal = [r for r in self._records.values() if r.state.terminal]
        excess = len(terminal) - self.max_terminal_records
        if excess <= 0:
            return
        terminal.sort(key=lambda r: r.state_since)
        for record in terminal[:excess]:
            del self._records[record.block_id]

    def _notify(self, record: BlockRecord, old: Optional[BlockState], new: BlockState) -> None:
        if old is new or self.on_transition is None:
            return
        try:
            self.on_transition(record, old, new)
        except Exception:  # noqa: BLE001 - observers must not break scaling
            logger.exception(
                "block transition observer failed for %s/%s (%s -> %s)",
                self.label, record.block_id,
                old.value if old is not None else None, new.value,
            )
