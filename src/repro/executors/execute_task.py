"""The common execution kernel (§4.3).

Every executor shares this kernel: it deserializes a task bundle (the App
function and its arguments), executes it in a sandboxed namespace, and
serializes either the result or a :class:`RemoteExceptionWrapper` capturing
the failure. Resource usage around the call is sampled so the monitoring
system can record per-task usage.
"""

from __future__ import annotations

import os
import resource
import signal
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import RemoteExceptionWrapper, TaskWalltimeExceeded
from repro.serialize import pack_apply_message, serialize, deserialize, unpack_apply_message


def _run_with_walltime(func, args, kwargs, walltime_s: float) -> Any:
    """Run ``func`` but kill it once ``walltime_s`` elapses.

    Two enforcement mechanisms, picked by context:

    * **signal** — in the main thread of a worker process, ``SIGALRM``
      interrupts the user code wherever it is (even a C-level sleep) and
      raises :class:`TaskWalltimeExceeded` inside it; the worker slot is
      genuinely reclaimed.
    * **watchdog thread** — thread-mode workers cannot receive per-thread
      signals, so the call runs in a daemon thread joined with a timeout.
      On expiry the worker moves on (the slot is reclaimed and the failure
      reported) while the overrun code is abandoned to finish in the
      background — the closest Python gets to killing a thread.
    """
    use_signal = (
        hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if use_signal:
        completed = False

        def _expired(_signum, _frame):
            if completed:
                # The task returned just under the wire and the pending
                # alarm fired before the timer was disarmed: its (real)
                # result must stand — raising here would discard a success
                # as a never-retried TaskWalltimeExceeded.
                return
            raise TaskWalltimeExceeded(
                f"task exceeded its walltime_s resource spec of {walltime_s}s"
            )

        previous = signal.signal(signal.SIGALRM, _expired)
        signal.setitimer(signal.ITIMER_REAL, walltime_s)
        try:
            result = func(*args, **kwargs)
            completed = True
            return result
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0)
            signal.signal(signal.SIGALRM, previous)

    outcome: List[Any] = [None, None]  # [result, exception]
    finished = threading.Event()

    def _call() -> None:
        try:
            outcome[0] = func(*args, **kwargs)
        except BaseException as exc:  # noqa: BLE001 - travels back to the caller
            outcome[1] = exc
        finally:
            finished.set()

    runner = threading.Thread(target=_call, name="walltime-runner", daemon=True)
    runner.start()
    if not finished.wait(timeout=walltime_s):
        raise TaskWalltimeExceeded(
            f"task exceeded its walltime_s resource spec of {walltime_s}s"
        )
    if outcome[1] is not None:
        raise outcome[1]
    return outcome[0]


def execute_task(
    buffer: bytes,
    sandbox_dir: Optional[str] = None,
    walltime_s: Optional[float] = None,
) -> bytes:
    """Run one serialized task and return a serialized outcome.

    The returned buffer deserializes to a dict with keys:

    * ``result`` — the function's return value (present on success),
    * ``exception`` — a :class:`RemoteExceptionWrapper` (present on failure),
    * ``resource`` — a small resource-usage record (always present).

    ``walltime_s`` (from the task's resource spec) is *enforced*: a task
    still running when it elapses is killed and the outcome carries a
    :class:`TaskWalltimeExceeded`, which the DataFlowKernel fails through
    the AppFuture without retrying.
    """
    start = time.perf_counter()
    usage_start = _sample_usage()
    cwd = os.getcwd()
    outcome: Dict[str, Any] = {}
    try:
        func, args, kwargs = unpack_apply_message(buffer)
        if sandbox_dir:
            os.makedirs(sandbox_dir, exist_ok=True)
            os.chdir(sandbox_dir)
        if walltime_s:
            result = _run_with_walltime(func, args, kwargs, float(walltime_s))
        else:
            result = func(*args, **kwargs)
        outcome["result"] = result
    except BaseException as exc:  # noqa: BLE001 - user exceptions must travel back
        outcome["exception"] = RemoteExceptionWrapper.from_exception(exc)
    finally:
        if sandbox_dir:
            try:
                os.chdir(cwd)
            except OSError:
                pass
    outcome["resource"] = _usage_record(start, usage_start)
    try:
        return serialize(outcome)
    except Exception:
        # The user's result was not picklable: report that as the failure.
        fallback = {
            "exception": RemoteExceptionWrapper.from_exception(
                TypeError("app returned a result that could not be serialized")
            ),
            "resource": outcome["resource"],
        }
        return serialize(fallback)


def execute_task_inline(func, args, kwargs) -> Tuple[Any, Optional[RemoteExceptionWrapper]]:
    """Run a task without a serialization round trip (thread executor path)."""
    try:
        return func(*args, **kwargs), None
    except BaseException as exc:  # noqa: BLE001
        return None, RemoteExceptionWrapper.from_exception(exc)


def roundtrip_task(func, args, kwargs, sandbox_dir: Optional[str] = None) -> Dict[str, Any]:
    """Convenience used in tests: pack, execute, and unpack one task locally."""
    buffer = pack_apply_message(func, args, kwargs)
    return deserialize(execute_task(buffer, sandbox_dir=sandbox_dir))


def _sample_usage() -> Dict[str, float]:
    ru = resource.getrusage(resource.RUSAGE_SELF)
    return {"utime": ru.ru_utime, "stime": ru.ru_stime, "maxrss_kb": float(ru.ru_maxrss)}


def _usage_record(start_perf: float, usage_start: Dict[str, float]) -> Dict[str, float]:
    ru = resource.getrusage(resource.RUSAGE_SELF)
    return {
        "psutil_process_time_user": ru.ru_utime - usage_start["utime"],
        "psutil_process_time_system": ru.ru_stime - usage_start["stime"],
        "psutil_process_memory_resident_kb": float(ru.ru_maxrss),
        "run_duration_s": time.perf_counter() - start_perf,
        "hostname": os.uname().nodename,
        "pid": float(os.getpid()),
    }
