"""The common execution kernel (§4.3).

Every executor shares this kernel: it deserializes a task bundle (the App
function and its arguments), executes it in a sandboxed namespace, and
serializes either the result or a :class:`RemoteExceptionWrapper` capturing
the failure. Resource usage around the call is sampled so the monitoring
system can record per-task usage.
"""

from __future__ import annotations

import os
import resource
import time
from typing import Any, Dict, Optional, Tuple

from repro.errors import RemoteExceptionWrapper
from repro.serialize import pack_apply_message, serialize, deserialize, unpack_apply_message


def execute_task(buffer: bytes, sandbox_dir: Optional[str] = None) -> bytes:
    """Run one serialized task and return a serialized outcome.

    The returned buffer deserializes to a dict with keys:

    * ``result`` — the function's return value (present on success),
    * ``exception`` — a :class:`RemoteExceptionWrapper` (present on failure),
    * ``resource`` — a small resource-usage record (always present).
    """
    start = time.perf_counter()
    usage_start = _sample_usage()
    cwd = os.getcwd()
    outcome: Dict[str, Any] = {}
    try:
        func, args, kwargs = unpack_apply_message(buffer)
        if sandbox_dir:
            os.makedirs(sandbox_dir, exist_ok=True)
            os.chdir(sandbox_dir)
        result = func(*args, **kwargs)
        outcome["result"] = result
    except BaseException as exc:  # noqa: BLE001 - user exceptions must travel back
        outcome["exception"] = RemoteExceptionWrapper.from_exception(exc)
    finally:
        if sandbox_dir:
            try:
                os.chdir(cwd)
            except OSError:
                pass
    outcome["resource"] = _usage_record(start, usage_start)
    try:
        return serialize(outcome)
    except Exception:
        # The user's result was not picklable: report that as the failure.
        fallback = {
            "exception": RemoteExceptionWrapper.from_exception(
                TypeError("app returned a result that could not be serialized")
            ),
            "resource": outcome["resource"],
        }
        return serialize(fallback)


def execute_task_inline(func, args, kwargs) -> Tuple[Any, Optional[RemoteExceptionWrapper]]:
    """Run a task without a serialization round trip (thread executor path)."""
    try:
        return func(*args, **kwargs), None
    except BaseException as exc:  # noqa: BLE001
        return None, RemoteExceptionWrapper.from_exception(exc)


def roundtrip_task(func, args, kwargs, sandbox_dir: Optional[str] = None) -> Dict[str, Any]:
    """Convenience used in tests: pack, execute, and unpack one task locally."""
    buffer = pack_apply_message(func, args, kwargs)
    return deserialize(execute_task(buffer, sandbox_dir=sandbox_dir))


def _sample_usage() -> Dict[str, float]:
    ru = resource.getrusage(resource.RUSAGE_SELF)
    return {"utime": ru.ru_utime, "stime": ru.ru_stime, "maxrss_kb": float(ru.ru_maxrss)}


def _usage_record(start_perf: float, usage_start: Dict[str, float]) -> Dict[str, float]:
    ru = resource.getrusage(resource.RUSAGE_SELF)
    return {
        "psutil_process_time_user": ru.ru_utime - usage_start["utime"],
        "psutil_process_time_system": ru.ru_stime - usage_start["stime"],
        "psutil_process_memory_resident_kb": float(ru.ru_maxrss),
        "run_duration_s": time.perf_counter() - start_perf,
        "hostname": os.uname().nodename,
        "pid": float(os.getpid()),
    }
