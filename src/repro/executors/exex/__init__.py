"""Extreme Scale Executor (EXEX): MPI-style hierarchical task distribution for the largest machines."""

from repro.executors.exex.executor import ExtremeScaleExecutor

__all__ = ["ExtremeScaleExecutor"]
