"""ExtremeScaleExecutor (EXEX).

EXEX shares the interchange and the client-side submission machinery with
HTEX (the difference the paper describes is entirely on the node side): each
block is an MPI job whose rank 0 acts as the manager and whose remaining
ranks are workers. Task distribution inside the pool is hierarchical —
interchange → rank-0 manager → worker ranks — which is what lets the design
reach hundreds of thousands of workers.

When no provider is configured the executor starts an in-process simulated
MPI pool (thread ranks), which exercises the same rank-0/worker-rank code.
"""

from __future__ import annotations

import logging
import sys
from typing import List, Optional

from repro.executors.htex.executor import HighThroughputExecutor
from repro.executors.exex.mpi_worker_pool import exex_pool_main
from repro.mpisim import MPIJob, launch_threads
from repro.providers.base import ExecutionProvider

logger = logging.getLogger(__name__)


class ExtremeScaleExecutor(HighThroughputExecutor):
    """MPI-style executor for the largest machines (§4.3.2)."""

    def __init__(
        self,
        label: str = "exex",
        provider: Optional[ExecutionProvider] = None,
        address: str = "127.0.0.1",
        ranks_per_node: int = 4,
        ranks_per_pool: Optional[int] = None,
        internal_pools: int = 1,
        pool_mode: str = "processes",
        heartbeat_period: float = 1.0,
        heartbeat_threshold: float = 5.0,
        batch_size: int = 8,
        launch_cmd: Optional[str] = None,
    ):
        if ranks_per_node < 2:
            raise ValueError("ranks_per_node must be >= 2 (rank 0 is the manager)")
        super().__init__(
            label=label,
            provider=provider,
            address=address,
            workers_per_node=ranks_per_node - 1,
            heartbeat_period=heartbeat_period,
            heartbeat_threshold=heartbeat_threshold,
            batch_size=batch_size,
        )
        self.ranks_per_node = ranks_per_node
        #: The paper recommends breaking a large allocation into several
        #: smaller MPI pools to limit the blast radius of a rank failure.
        self.ranks_per_pool = ranks_per_pool or ranks_per_node
        self.internal_pools = internal_pools
        self.pool_mode = pool_mode
        self.launch_cmd = launch_cmd or (
            "{python} -m repro.executors.exex.mpi_worker_pool "
            "--host {host} --port {port} --ranks {ranks} --block-id {block_id} "
            "--mode {mode} --heartbeat-period {heartbeat_period} "
            "--heartbeat-threshold {heartbeat_threshold}"
        )
        self._internal_jobs: List[MPIJob] = []

    # ------------------------------------------------------------------
    def _start_internal_managers(self) -> None:
        """Without a provider, run simulated MPI pools inside this process."""
        assert self.interchange is not None
        for i in range(self.internal_pools):
            job = launch_threads(
                self.ranks_per_pool,
                exex_pool_main,
                self.interchange.host,
                self.interchange.port,
                f"internal-pool-{i}",
                self.heartbeat_period,
                max(self.heartbeat_threshold * 4, 30.0),
            )
            self._internal_jobs.append(job)

    def _launch_block_command(self, block_id: str) -> str:
        assert self.interchange is not None
        return self.launch_cmd.format(
            python=sys.executable,
            host=self.interchange.host,
            port=self.interchange.port,
            ranks=self.ranks_per_node,
            block_id=block_id,
            mode=self.pool_mode,
            heartbeat_period=self.heartbeat_period,
            heartbeat_threshold=self.heartbeat_threshold,
        )

    def shutdown(self, block: bool = True) -> None:
        super().shutdown(block=block)
        for job in self._internal_jobs:
            try:
                job.terminate()
            except Exception:  # noqa: BLE001 - best effort
                pass
        self._internal_jobs = []

    @property
    def workers_per_block(self) -> int:
        nodes = self.provider.nodes_per_block if self.provider is not None else 1
        return (self.ranks_per_node - 1) * nodes
