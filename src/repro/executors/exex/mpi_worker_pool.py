"""EXEX worker pool: an MPI job whose rank 0 is the manager (§4.3.2).

Deployment matches the paper: the executor submits one multi-node batch job
per block; within that job, rank 0 takes the manager role (talking ZeroMQ —
here, the comms layer — to the interchange) while the remaining ranks are
workers that exchange tasks and results with rank 0 over MPI point-to-point
messages. Because a single rank failure kills the whole MPI job, the paper
recommends several smaller worker pools per scheduler job; the executor's
``ranks_per_pool`` parameter models exactly that.
"""

from __future__ import annotations

import argparse
import collections
import logging
import socket
import sys
import time
from typing import Any, Dict, List, Optional

from repro.comms.client import MessageClient
from repro.executors.execute_task import execute_task
from repro.executors.htex import messages as msg
from repro.mpisim import ANY_SOURCE, MPIAbort, SimComm, launch_processes, launch_threads
from repro.utils.ids import make_manager_id

logger = logging.getLogger(__name__)

#: MPI tags used inside an EXEX pool.
TAG_TASK = 1
TAG_RESULT = 2
TAG_SHUTDOWN = 3


def exex_pool_main(
    comm: SimComm,
    interchange_host: str,
    interchange_port: int,
    block_id: Optional[str] = None,
    heartbeat_period: float = 1.0,
    heartbeat_threshold: float = 10.0,
    result_batch_size: int = 16,
) -> Dict[str, Any]:
    """Entry function for every rank of an EXEX pool."""
    if comm.rank == 0:
        return _manager_rank(
            comm,
            interchange_host,
            interchange_port,
            block_id=block_id,
            heartbeat_period=heartbeat_period,
            heartbeat_threshold=heartbeat_threshold,
            result_batch_size=result_batch_size,
        )
    return _worker_rank(comm)


# ---------------------------------------------------------------------------
# Rank 0: manager
# ---------------------------------------------------------------------------

def _manager_rank(
    comm: SimComm,
    interchange_host: str,
    interchange_port: int,
    block_id: Optional[str],
    heartbeat_period: float,
    heartbeat_threshold: float,
    result_batch_size: int,
) -> Dict[str, Any]:
    worker_ranks = list(range(1, comm.size))
    manager_id = make_manager_id()
    client = MessageClient(
        interchange_host,
        interchange_port,
        identity=manager_id,
        registration_info=msg.manager_registration_info(
            block_id=block_id,
            hostname=socket.gethostname(),
            worker_count=len(worker_ranks),
            kind="exex-manager",
        ),
    )
    idle_ranks = collections.deque(worker_ranks)
    task_backlog: collections.deque = collections.deque()
    rank_task: Dict[int, int] = {}
    result_batch: List[Dict[str, Any]] = []
    tasks_received = 0
    results_sent = 0
    last_heartbeat = 0.0
    last_contact = time.time()
    running = True

    def flush_results(force: bool = False) -> None:
        nonlocal result_batch, results_sent
        if result_batch and (force or len(result_batch) >= result_batch_size):
            client.send(msg.results_message(result_batch))
            client.send(msg.ready_message(len(idle_ranks)))
            results_sent += len(result_batch)
            result_batch = []

    try:
        while running:
            # 1. Interchange -> manager traffic.
            message = client.recv(timeout=0.01)
            if message is not None:
                mtype = message.get("type")
                if mtype == "tasks":
                    last_contact = time.time()
                    for item in message.get("items", []):
                        task_backlog.append(item)
                        tasks_received += 1
                elif mtype == "heartbeat_reply":
                    last_contact = time.time()
                elif mtype in ("shutdown", "connection_lost"):
                    running = False
            # 2. Distribute backlog to idle worker ranks.
            while task_backlog and idle_ranks:
                dest = idle_ranks.popleft()
                item = task_backlog.popleft()
                task = {"task_id": item["task_id"], "buffer": item["buffer"]}
                if item.get("walltime_s") is not None:
                    task["walltime_s"] = item["walltime_s"]
                comm.send(task, dest, tag=TAG_TASK)
                rank_task[dest] = item["task_id"]
            # 3. Collect results from workers.
            while comm.iprobe(source=ANY_SOURCE, tag=TAG_RESULT):
                result = comm.recv(source=ANY_SOURCE, tag=TAG_RESULT)
                source_rank = result["rank"]
                rank_task.pop(source_rank, None)
                idle_ranks.append(source_rank)
                result_batch.append({"task_id": result["task_id"], "buffer": result["buffer"]})
            flush_results(force=bool(result_batch))
            # 4. Heartbeats.
            now = time.time()
            if now - last_heartbeat > heartbeat_period:
                client.send(msg.heartbeat_message())
                client.send(msg.ready_message(len(idle_ranks)))
                last_heartbeat = now
            if now - last_contact > heartbeat_threshold:
                logger.warning("EXEX manager %s: interchange silent for %.1fs; shutting pool down", manager_id, heartbeat_threshold)
                running = False
    except MPIAbort:
        pass
    finally:
        flush_results(force=True)
        for dest in worker_ranks:
            try:
                comm.send({"shutdown": True}, dest, tag=TAG_SHUTDOWN)
            except MPIAbort:
                break
        client.close()
    return {"role": "manager", "tasks_received": tasks_received, "results_sent": results_sent}


# ---------------------------------------------------------------------------
# Ranks 1..N-1: workers
# ---------------------------------------------------------------------------

def _worker_rank(comm: SimComm) -> Dict[str, Any]:
    executed = 0
    try:
        while True:
            if comm.iprobe(source=0, tag=TAG_SHUTDOWN):
                comm.recv(source=0, tag=TAG_SHUTDOWN)
                break
            if not comm.iprobe(source=0, tag=TAG_TASK):
                time.sleep(0.001)
                continue
            item = comm.recv(source=0, tag=TAG_TASK)
            buffer = execute_task(item["buffer"], walltime_s=item.get("walltime_s"))
            comm.send({"task_id": item["task_id"], "buffer": buffer, "rank": comm.rank}, 0, tag=TAG_RESULT)
            executed += 1
    except MPIAbort:
        pass
    return {"role": "worker", "rank": comm.rank, "executed": executed}


# ---------------------------------------------------------------------------
# CLI entry point: one EXEX pool as an OS-level job
# ---------------------------------------------------------------------------

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="repro EXEX MPI worker pool")
    parser.add_argument("--host", required=True)
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--ranks", type=int, default=4, help="total MPI ranks (rank 0 is the manager)")
    parser.add_argument("--block-id", default=None)
    parser.add_argument("--mode", choices=["threads", "processes"], default="processes")
    parser.add_argument("--heartbeat-period", type=float, default=1.0)
    parser.add_argument("--heartbeat-threshold", type=float, default=10.0)
    parser.add_argument("--debug", action="store_true")
    args = parser.parse_args(argv)
    logging.basicConfig(level=logging.DEBUG if args.debug else logging.INFO)
    if args.ranks < 2:
        parser.error("--ranks must be >= 2 (one manager plus at least one worker)")
    launch = launch_processes if args.mode == "processes" else launch_threads
    job = launch(
        args.ranks,
        exex_pool_main,
        args.host,
        args.port,
        args.block_id,
        args.heartbeat_period,
        args.heartbeat_threshold,
    )
    job.wait()
    return 0


if __name__ == "__main__":
    sys.exit(main())
