"""High Throughput Executor (HTEX): pilot-job execution via an interchange and per-node managers."""

from repro.executors.htex.executor import HighThroughputExecutor

__all__ = ["HighThroughputExecutor"]
