"""HighThroughputExecutor (HTEX).

The general-purpose pilot-job executor described in §4.3.1: an interchange
brokers tasks between the executor client and per-node managers, each of
which drives a pool of worker processes. Designed for up to thousands of
nodes, millions of sub-second tasks, and multi-day campaigns, with
heartbeat-based fault detection.

Two deployment modes are supported:

* **provider mode** — blocks are obtained from an
  :class:`~repro.providers.base.ExecutionProvider`; each block node runs
  ``python -m repro.executors.htex.process_worker_pool`` which connects back
  to the interchange over TCP. This is the paper's deployment.
* **internal mode** (no provider) — the executor starts managers inside the
  current process (thread workers) that still talk to the interchange over
  the same protocol. This gives a dependency-free local runtime and is what
  most unit tests use.
"""

from __future__ import annotations

import concurrent.futures as cf
import logging
import sys
import threading
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.errors import ResourceSpecError, SerializationError
from repro.executors.base import ReproExecutor, SubmitRequest
from repro.executors.blocks import BlockState
from repro.executors.htex import messages as msg
from repro.executors.htex.interchange import Interchange
from repro.executors.htex.manager import Manager
from repro.providers.base import ExecutionProvider
from repro.scheduling.queues import DEFAULT_AGING_S
from repro.scheduling.spec import ResourceSpec
from repro.serialize import deserialize, pack_apply_message
from repro.utils.threads import AtomicCounter

logger = logging.getLogger(__name__)

#: Bucket bounds (kB) for the per-task peak-RSS histogram: 1 MB .. 4 GB in
#: powers of four — worker pools are long-lived so maxrss is a high-water
#: mark, and coarse buckets suffice to spot a leaking or oversized app.
MAXRSS_BUCKETS_KB = (
    1024.0, 4096.0, 16384.0, 65536.0, 262144.0, 1048576.0, 4194304.0,
)


class HighThroughputExecutor(ReproExecutor):
    """Pilot-job executor with an interchange and per-node managers (§4.3.1).

    Defaults follow the paper's deployment guidance:

    * ``batch_size=8`` — tasks per interchange→manager message; the dispatch
      loop packs up to this many tasks into one socket write, capped by the
      target manager's advertised free capacity.
    * ``prefetch_capacity=None`` — defaults to ``workers_per_node``, letting a
      manager buffer one extra task per worker so workers never idle between
      result send and next dispatch (the paper's pipelining knob). Pass ``0``
      to disable prefetching.
    * ``poll_period=0.005`` — the interchange's idle poll; under load the loop
      is driven by message arrival, so this only bounds first-dispatch latency.
    * ``scheduling_policy="least_loaded"`` — task→manager placement (see
      :mod:`repro.scheduling.placement`): ``least_loaded``, ``bin_pack``,
      ``spread``, ``random``, ``round_robin``. Tasks carry per-task resource
      specs: ``{"cores": N}`` consumes N worker slots on one manager,
      ``{"priority": P}`` orders the interchange's starvation-safe priority
      queue (``priority_aging_s`` seconds of waiting outweigh one priority
      level; ``placement_lookahead`` bounds how many unplaceable multi-core
      tasks a dispatch round may hold aside while smaller tasks flow past).
    * heartbeats every ``heartbeat_period`` seconds; a manager silent for
      ``heartbeat_threshold`` seconds is declared lost and its in-flight tasks
      are settled individually: requeued onto a surviving manager while each
      has redispatch budget (``max_task_redispatches``, default 1), otherwise
      failed with :class:`~repro.errors.ManagerLost`. Note that loss detection
      is heartbeat-based, so a merely *slow* manager may still complete a task
      that was requeued — redispatch trades at-most-once execution for
      availability. Pass ``max_task_redispatches=0`` for strict at-most-once
      (every in-flight task on a lost manager fails, and ``Config.retries``
      decides what happens next).
    * worker crashes are contained one level below manager loss: each manager
      supervises its workers, synthesizes a :class:`~repro.errors.WorkerLost`
      for the task a dead worker had claimed, and respawns the worker up to
      ``worker_respawn_limit`` times before exiting (handing its remaining
      work to the ManagerLost path). The interchange charges each kill to the
      task itself and quarantines a task that has killed
      ``poison_threshold`` workers (default 2) with a typed
      :class:`~repro.errors.WorkerPoisonError` instead of redispatching it.
    """

    def __init__(
        self,
        label: str = "htex",
        provider: Optional[ExecutionProvider] = None,
        address: str = "127.0.0.1",
        workers_per_node: int = 2,
        prefetch_capacity: Optional[int] = None,
        heartbeat_period: float = 1.0,
        heartbeat_threshold: float = 5.0,
        batch_size: int = 8,
        poll_period: float = 0.005,
        worker_mode: str = "process",
        internal_managers: int = 1,
        scheduling_policy: str = "least_loaded",
        max_task_redispatches: int = 1,
        poison_threshold: int = 2,
        worker_respawn_limit: int = 8,
        drain_timeout: float = 60.0,
        priority_aging_s: float = DEFAULT_AGING_S,
        placement_lookahead: int = 32,
        worker_debug: bool = False,
        launch_cmd: Optional[str] = None,
    ):
        super().__init__(label=label, provider=provider)
        self.address = address
        self.workers_per_node = workers_per_node
        self.prefetch_capacity = workers_per_node if prefetch_capacity is None else prefetch_capacity
        self.heartbeat_period = heartbeat_period
        self.heartbeat_threshold = heartbeat_threshold
        self.batch_size = batch_size
        self.poll_period = poll_period
        self.worker_mode = worker_mode
        self.internal_managers = internal_managers
        self.scheduling_policy = scheduling_policy
        self.max_task_redispatches = max_task_redispatches
        self.poison_threshold = poison_threshold
        self.worker_respawn_limit = worker_respawn_limit
        self.drain_timeout = drain_timeout
        self.priority_aging_s = priority_aging_s
        self.placement_lookahead = placement_lookahead
        self.worker_debug = worker_debug
        self.launch_cmd = launch_cmd or (
            "{python} -m repro.executors.htex.process_worker_pool "
            "--host {host} --port {port} --workers {workers_per_node} "
            "--prefetch {prefetch} --block-id {block_id} "
            "--heartbeat-period {heartbeat_period} --heartbeat-threshold {heartbeat_threshold} "
            "--worker-respawn-limit {worker_respawn_limit}"
            "{debug}"
        )

        self.interchange: Optional[Interchange] = None
        self._internal_manager_objs: List[Manager] = []
        self._tasks: Dict[int, cf.Future] = {}
        self._tasks_lock = threading.Lock()
        self._task_counter = 0
        self._outstanding = AtomicCounter()
        self._started = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._started:
            return
        # Per-task resource-usage histograms, fed from the worker-side
        # ``resource`` record every outcome carries (see execute_task). The
        # DFK swapped its live registry in before start(), so these land on
        # /metrics; a bare executor records into the no-op registry.
        xlabels = {"executor": self.label}
        self._m_task_cpu = self.metrics.histogram(
            "repro_task_cpu_seconds",
            "Per-task worker CPU time, user+system (rusage)",
            labels=xlabels,
        )
        self._m_task_maxrss = self.metrics.histogram(
            "repro_task_maxrss_kb",
            "Worker peak resident set size observed at task completion (kB)",
            labels=xlabels, buckets=MAXRSS_BUCKETS_KB,
        )
        self.interchange = Interchange(
            result_callback=self._handle_result,
            host=self.address,
            heartbeat_period=self.heartbeat_period,
            heartbeat_threshold=self.heartbeat_threshold,
            batch_size=self.batch_size,
            poll_period=self.poll_period,
            scheduling_policy=self.scheduling_policy,
            max_task_redispatches=self.max_task_redispatches,
            poison_threshold=self.poison_threshold,
            block_drained_callback=self._on_block_drained,
            drain_timeout=self.drain_timeout,
            priority_aging_s=self.priority_aging_s,
            placement_lookahead=self.placement_lookahead,
            label=f"{self.label}-interchange",
            metrics=self.metrics,
        )
        self.interchange.start()
        self._started = True
        if self.provider is not None:
            if self.provider.init_blocks > 0:
                self.scale_out(self.provider.init_blocks)
            self.start_block_monitoring()
        else:
            self._start_internal_managers()

    def _start_internal_managers(self) -> None:
        assert self.interchange is not None
        for i in range(self.internal_managers):
            manager = Manager(
                interchange_host=self.interchange.host,
                interchange_port=self.interchange.port,
                worker_count=self.workers_per_node,
                prefetch_capacity=self.prefetch_capacity,
                block_id=f"internal-{i}",
                heartbeat_period=self.heartbeat_period,
                heartbeat_threshold=max(self.heartbeat_threshold * 4, 30.0),
                worker_mode="thread",
                worker_respawn_limit=self.worker_respawn_limit,
            )
            manager.start()
            self._internal_manager_objs.append(manager)

    def _launch_block_command(self, block_id: str) -> str:
        assert self.interchange is not None
        return self.launch_cmd.format(
            python=sys.executable,
            host=self.interchange.host,
            port=self.interchange.port,
            workers_per_node=self.workers_per_node,
            prefetch=self.prefetch_capacity,
            block_id=block_id,
            heartbeat_period=self.heartbeat_period,
            heartbeat_threshold=self.heartbeat_threshold,
            worker_respawn_limit=self.worker_respawn_limit,
            debug=" --debug" if self.worker_debug else "",
        )

    def shutdown(self, block: bool = True) -> None:
        self.stop_block_monitoring()
        for manager in self._internal_manager_objs:
            manager.shutdown()
        self._internal_manager_objs = []
        if self.provider is not None and self.blocks:
            try:
                self.provider.cancel(list(self.blocks.values()))
            except Exception:  # noqa: BLE001 - best-effort cleanup
                logger.exception("failed to cancel blocks during shutdown")
        if self.interchange is not None:
            self.interchange.stop()
        with self._tasks_lock:
            pending = [f for f in self._tasks.values() if not f.done()]
        for future in pending:
            future.cancel()
        self._started = False

    # ------------------------------------------------------------------
    # Submission and results
    # ------------------------------------------------------------------
    @property
    def supports_resource_specs(self) -> bool:
        """HTEX (and its EXEX subclass) honors cores/priority specs."""
        return True

    def _resolve_spec(self, resource_specification: Any) -> ResourceSpec:
        """Validate one task's resource spec against this executor's slots.

        A spec asking for more cores than one manager runs workers could
        never be placed, so it is rejected at submit time rather than left to
        starve in the pending queue. ``memory_mb`` is an advisory hint
        (recorded, not metered); ``walltime_s`` is enforced at the worker —
        a task still running past it is killed and fails with
        :class:`~repro.errors.TaskWalltimeExceeded` (not retried).
        """
        spec = ResourceSpec.from_user(resource_specification)
        if spec.cores > self.workers_per_node:
            raise ResourceSpecError(
                f"task asks for {spec.cores} cores but executor {self.label!r} runs "
                f"{self.workers_per_node} workers per node; no manager could ever fit it"
            )
        return spec

    def submit(self, func: Callable, resource_specification: Dict[str, Any], *args, **kwargs) -> cf.Future:
        if not self._started or self.interchange is None:
            raise RuntimeError(f"executor {self.label!r} has not been started")
        spec = self._resolve_spec(resource_specification)
        if self.bad_state_is_set:
            raise self.executor_exception or RuntimeError("executor is in a failed state")
        try:
            buffer = pack_apply_message(func, args, kwargs)
        except SerializationError:
            raise
        future: cf.Future = cf.Future()
        with self._tasks_lock:
            task_id = self._task_counter
            self._task_counter += 1
            self._tasks[task_id] = future
        self._track_outstanding(future)
        self.interchange.submit_task(
            task_id, buffer, priority=spec.priority, cores=spec.cores, walltime_s=spec.walltime_s
        )
        return future

    def submit_batch(self, requests: Sequence[SubmitRequest]) -> List[cf.Future]:
        """Submit many tasks in one call, handing the interchange one batch.

        Serialization happens here — on the dispatcher's thread, off the app
        submission path — and per-request failures (resource specs, pickling
        errors) surface as exceptions *on that request's future* so one bad
        task never poisons the rest of the batch.
        """
        if not self._started or self.interchange is None:
            raise RuntimeError(f"executor {self.label!r} has not been started")
        futures: List[cf.Future] = []
        items: List[Dict[str, Any]] = []
        for request in requests:
            func, resource_specification, args, kwargs = request[:4]
            trace = request[4] if len(request) > 4 else None
            future: cf.Future = cf.Future()
            futures.append(future)
            if self.bad_state_is_set:
                future.set_exception(self.executor_exception or RuntimeError("executor is in a failed state"))
                continue
            try:
                spec = self._resolve_spec(resource_specification)
                buffer = pack_apply_message(func, args, kwargs)
            except Exception as exc:  # noqa: BLE001 - per-task spec/serialization failure
                future.set_exception(exc)
                continue
            with self._tasks_lock:
                task_id = self._task_counter
                self._task_counter += 1
                self._tasks[task_id] = future
            self._track_outstanding(future)
            items.append(
                msg.task_item(
                    task_id,
                    buffer,
                    priority=spec.priority,
                    cores=spec.cores,
                    walltime_s=spec.walltime_s,
                    trace=trace,
                )
            )
        if items:
            self.interchange.submit_tasks(items)
        return futures

    def _handle_result(self, item: Dict[str, Any]) -> None:
        """Callback invoked by the interchange for every completed task."""
        task_id = item["task_id"]
        with self._tasks_lock:
            future = self._tasks.pop(task_id, None)
        if future is None or future.done():
            return
        # Which manager ran (or lost) the task; the DFK forwards it into the
        # TASK_STATE monitoring row so placement is auditable per task. The
        # trace rides along too (same dict the DFK holds, now carrying the
        # worker-side span stamps the interchange merged in).
        future.placed_manager = item.get("manager")  # type: ignore[attr-defined]
        future.trace = item.get("trace")  # type: ignore[attr-defined]
        if "exception" in item and "buffer" not in item:
            future.set_exception(item["exception"])
            return
        try:
            outcome = deserialize(item["buffer"])
        except Exception as exc:  # noqa: BLE001
            future.set_exception(exc)
            return
        self._observe_resource(outcome.get("resource"))
        if "exception" in outcome:
            wrapper = outcome["exception"]
            future.set_exception(wrapper.e_value)
        else:
            future.set_result(outcome.get("result"))

    def _observe_resource(self, record: Optional[Dict[str, Any]]) -> None:
        """Fold one task's worker-side rusage record into the histograms."""
        if not record:
            return
        try:
            cpu = (float(record.get("psutil_process_time_user") or 0.0)
                   + float(record.get("psutil_process_time_system") or 0.0))
            self._m_task_cpu.observe(cpu)
            rss = record.get("psutil_process_memory_resident_kb")
            if rss is not None:
                self._m_task_maxrss.observe(float(rss))
        except (TypeError, ValueError):
            pass  # malformed record from an old worker: not worth a crash

    # ------------------------------------------------------------------
    # Block lifecycle (scale-in by draining)
    # ------------------------------------------------------------------
    def update_block_activity(self) -> bool:
        """Feed the interchange's per-manager report into the block registry.

        Gives the strategy real per-block busy/idle data: a block is IDLE only
        when its managers are connected and hold no in-flight tasks, so
        scale-in can target specific blocks without touching busy ones.
        """
        if self.interchange is None or self.provider is None:
            return False
        report = self.interchange.block_report()
        for block_id in list(self.blocks):
            activity = report.get(block_id)
            if activity is None:
                # No manager connected. For a booting block the provider
                # polls cover it; but if managers HAD reported and are now
                # gone (crashed while the provider job survives), the block
                # can do no work — record it idle so it stays reclaimable.
                record = self.block_registry.get(block_id)
                if record is not None and record.managers > 0:
                    self.block_registry.observe_managers_lost(block_id)
                continue
            self.block_registry.observe_activity(
                block_id, activity["managers"], activity["outstanding"]
            )
        return True

    def _terminate_blocks(self, block_ids, reason: str = "") -> None:
        for block_id in block_ids:
            self._terminate_block(block_id, reason=reason)

    def _terminate_block(self, block_id: str, reason: str = "") -> None:
        """Retire one block gracefully: drain its managers, then cancel.

        The interchange immediately stops dispatching to the block's managers;
        once their in-flight tasks settle it shuts them down and invokes
        :meth:`_on_block_drained`, which cancels the provider job. A block with
        no connected managers (still booting, or already dead) is cancelled
        outright — there is nothing to drain.
        """
        record = self.block_registry.get(block_id)
        if record is not None and record.state is BlockState.DRAINING:
            return  # drain already in progress; terminating again would kill its in-flight tasks
        if self.interchange is None:
            self._cancel_block_job(block_id, reason=reason or "scale-in")
            return
        self.block_registry.mark_draining(block_id, reason=reason or "scale-in")
        managers_draining = self.interchange.command("drain_block", block_id=block_id)
        if managers_draining == 0:
            self._cancel_block_job(block_id, reason=reason or "scale-in (no managers)")

    def _on_block_drained(self, block_id: str) -> None:
        """Interchange callback: the block's managers settled and shut down."""
        self._cancel_block_job(block_id, reason="drained")

    def _cancel_block_job(self, block_id: str, reason: str) -> None:
        job_id = self.blocks.pop(block_id, None)
        if job_id is not None:
            self.block_mapping.pop(job_id, None)
            if self.provider is not None:
                try:
                    self.provider.cancel([job_id])
                except Exception:  # noqa: BLE001 - the job may already have exited
                    logger.exception("failed to cancel job %s for block %s", job_id, block_id)
        self.block_registry.mark_terminated(block_id, reason=reason)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def _track_outstanding(self, future: cf.Future) -> None:
        self._outstanding.increment()
        future.add_done_callback(lambda _f: self._outstanding.decrement())

    @property
    def outstanding(self) -> int:
        # An exact counter fed by future done-callbacks: the strategy timer
        # reads this every round, so it must not scan the task table.
        return self._outstanding.value

    @property
    def connected_workers(self) -> int:
        if self.interchange is None:
            return 0
        return self.interchange.connected_worker_count

    @property
    def connected_managers(self) -> List[Dict[str, Any]]:
        if self.interchange is None:
            return []
        return self.interchange.command("connected_managers")

    @property
    def workers_per_block(self) -> int:
        nodes = self.provider.nodes_per_block if self.provider is not None else 1
        return self.workers_per_node * nodes
