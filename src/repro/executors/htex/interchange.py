"""The interchange: the broker between the executor client and its managers (§4.3.1).

The interchange owns a :class:`~repro.comms.server.MessageServer` to which
managers connect over TCP. The executor client in the same process hands it
tasks through an in-memory queue (the equivalent of Parsl's client-side
ZeroMQ pipe) and receives results through a callback.

Responsibilities reproduced from the paper (plus the resource-aware
scheduling subsystem layered on top):

* order queued tasks by priority: the pending queue is a
  :class:`~repro.scheduling.queues.PriorityTaskQueue` (heap keyed on
  priority then submit order, starvation-safe via aging), so a high-priority
  task submitted behind a bulk backlog overtakes it, and a requeued task
  re-enters at its *original* position,
* match queued tasks to managers through a pluggable placement policy
  (:mod:`repro.scheduling.placement`): ``least_loaded`` (default),
  ``bin_pack``, ``spread``, ``random``, ``round_robin``. Capacity is
  accounted in worker *core-slots*: a task whose resource spec asks for
  ``cores`` consumes that many slots on the one manager it is placed on, and
  the interchange's own accounting (not the managers' advertisements) is
  authoritative, so no manager is ever handed more in-flight cores than it
  advertises,
* coalesce task dispatch: each round snapshots manager capacity once, places
  a whole window of tasks through the policy's index (O(batch · log
  managers)), and ships each manager's share in messages of up to
  ``batch_size`` tasks so one socket write carries a whole batch,
* exchange heartbeats with managers and declare a manager lost when it misses
  ``heartbeat_threshold`` seconds of heartbeats, settling that manager's
  in-flight tasks *individually* — each is requeued onto a surviving manager
  while it has redispatch budget (``max_task_redispatches``), else fails with
  its own :class:`~repro.errors.ManagerLost`,
* quarantine poison tasks: managers report workers that die mid-task
  (``worker_lost`` result items); the kill count rides in the dispatched
  task record, and a task that has killed workers ``poison_threshold``
  times fails with a typed :class:`~repro.errors.WorkerPoisonError` instead
  of being redispatched yet again,
* expose a synchronous *command channel* (outstanding-task info, connected
  managers, blacklisting, shutdown) with campaign fault counters
  (``scheduling_stats`` → ``faults``).
"""

from __future__ import annotations

import logging
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.comms.server import MessageServer
from repro.errors import ManagerLost, WorkerLost, WorkerPoisonError
from repro.executors.htex import messages as msg
from repro.observability.metrics import NULL_REGISTRY, MetricsRegistry
from repro.observability.trace import stamp
from repro.scheduling.placement import ManagerSlot, make_placement_view
from repro.scheduling.queues import DEFAULT_AGING_S, PriorityTaskQueue

logger = logging.getLogger(__name__)


@dataclass
class ManagerRecord:
    """Interchange-side view of one connected manager."""

    identity: str
    block_id: Optional[str]
    hostname: str
    worker_count: int
    prefetch_capacity: int = 0
    #: task_id -> the dispatched task item, kept so a lost manager's
    #: in-flight tasks can be requeued individually.
    outstanding: Dict[int, Dict[str, Any]] = field(default_factory=dict)
    #: Core-slots currently consumed by the outstanding tasks. Maintained by
    #: the interchange itself at dispatch/result time, which makes it immune
    #: to advertisement reordering — this is what the no-oversubscription
    #: guarantee is asserted from.
    in_flight_cores: int = 0
    peak_in_flight_cores: int = 0
    last_heartbeat: float = field(default_factory=time.time)
    active: bool = True
    blacklisted: bool = False
    #: Draining managers receive no new dispatches; once their in-flight
    #: tasks settle the interchange shuts them down (block scale-in).
    draining: bool = False

    @property
    def max_queue_depth(self) -> int:
        return self.worker_count + self.prefetch_capacity

    @property
    def capacity_remaining(self) -> int:
        """Queue slots still dispatchable, by the interchange's own accounting."""
        return max(self.max_queue_depth - self.in_flight_cores, 0)

    @property
    def exec_slots_remaining(self) -> int:
        """Execution slots (actual workers) not yet reserved by in-flight cores.

        Multi-core placement is constrained by this, not by
        :attr:`capacity_remaining`: prefetch slots are buffer space, and
        reserving N cores against buffer would let two multi-core tasks
        co-schedule on the same workers.
        """
        return max(self.worker_count - self.in_flight_cores, 0)

    @property
    def free_capacity(self) -> int:
        """Reporting alias for :attr:`capacity_remaining`.

        The managers' ``ready`` advertisements are *telemetry*; the
        interchange's own in-flight accounting is authoritative for both
        dispatch and reporting, so the two can never drift.
        """
        return self.capacity_remaining


class Interchange:
    """Broker tasks between one executor client and many managers."""

    def __init__(
        self,
        result_callback: Callable[[Dict[str, Any]], None],
        host: str = "127.0.0.1",
        port: int = 0,
        heartbeat_period: float = 1.0,
        heartbeat_threshold: float = 5.0,
        batch_size: int = 8,
        poll_period: float = 0.01,
        selection_seed: Optional[int] = None,
        scheduling_policy: str = "least_loaded",
        max_task_redispatches: int = 1,
        poison_threshold: int = 2,
        block_drained_callback: Optional[Callable[[str], None]] = None,
        drain_timeout: float = 60.0,
        priority_aging_s: float = DEFAULT_AGING_S,
        placement_lookahead: int = 32,
        label: str = "interchange",
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.result_callback = result_callback
        self.heartbeat_period = heartbeat_period
        self.heartbeat_threshold = heartbeat_threshold
        self.batch_size = batch_size
        self.poll_period = poll_period
        self.max_task_redispatches = max_task_redispatches
        if poison_threshold < 1:
            raise ValueError("poison_threshold must be >= 1")
        #: Worker kills a single task may cause before it is quarantined:
        #: at the threshold the task fails with WorkerPoisonError instead of
        #: being redispatched, so one bad task cannot serially murder every
        #: worker in a block.
        self.poison_threshold = poison_threshold
        self.scheduling_policy = scheduling_policy
        self.placement_lookahead = placement_lookahead
        self.block_drained_callback = block_drained_callback
        self.drain_timeout = drain_timeout
        #: block_id -> time the drain was requested.
        self._draining_blocks: Dict[str, float] = {}
        self.label = label
        self.server = MessageServer(host=host, port=port, name=f"{label}-server")
        self.pending_tasks = PriorityTaskQueue(aging_s=priority_aging_s)
        self._managers: Dict[str, ManagerRecord] = {}
        self._managers_lock = threading.RLock()
        self._rng = random.Random(selection_seed)
        self._rr_cursor = [0]
        self._stop_event = threading.Event()
        self._threads: List[threading.Thread] = []
        self._last_heartbeat_sweep = time.time()
        self.tasks_dispatched = 0
        self.results_received = 0
        #: Times a dispatch pushed a manager past its advertised slots; the
        #: placement accounting makes this impossible, so the fig7 bench
        #: asserts it stays zero.
        self.oversubscription_events = 0
        #: Fault counters for the whole campaign (surfaced by
        #: ``scheduling_stats`` and the gateway's per-shard stats rows).
        self.managers_lost = 0
        self.workers_lost = 0
        self.tasks_redispatched = 0
        self.tasks_poisoned = 0
        #: Final per-manager accounting for managers that have disconnected,
        #: so post-run stats still cover the whole campaign.
        self._retired_manager_stats: Dict[str, Dict[str, int]] = {}
        #: (manager identity, cores) held in reserve for the highest-priority
        #: deferred multi-core task (see _dispatch_tasks): the manager gets no
        #: new work, so it drains until the task's execution slots free up.
        #: Rebuilt every round; cleared the moment nothing multi-core defers.
        self._exec_reservation: Optional[tuple] = None
        self._started = False

        # Live metrics: the existing plain-int counters above stay the source
        # of truth; the registry reads them through callbacks at scrape time,
        # so the dispatch/result hot paths pay nothing. Only the execution
        # latency histogram records inline (one observe per result).
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        mlabels = {"executor": label}
        self.metrics.counter(
            "repro_htex_tasks_dispatched_total", "Tasks shipped to managers",
            labels=mlabels, callback=lambda: self.tasks_dispatched,
        )
        self.metrics.counter(
            "repro_htex_results_received_total", "Task results returned by managers",
            labels=mlabels, callback=lambda: self.results_received,
        )
        self.metrics.gauge(
            "repro_htex_pending_tasks", "Tasks waiting in the interchange priority queue",
            labels=mlabels, callback=lambda: self.pending_tasks.qsize(),
        )
        self.metrics.gauge(
            "repro_htex_in_flight_cores", "Core-slots reserved by dispatched tasks",
            labels=mlabels, callback=lambda: self.fault_stats()["in_flight_cores"],
        )
        self.metrics.counter(
            "repro_htex_managers_lost_total", "Managers declared lost",
            labels=mlabels, callback=lambda: self.managers_lost,
        )
        self.metrics.counter(
            "repro_htex_workers_lost_total", "Workers that died mid-task",
            labels=mlabels, callback=lambda: self.workers_lost,
        )
        self.metrics.counter(
            "repro_htex_tasks_redispatched_total", "Task requeues after a fault",
            labels=mlabels, callback=lambda: self.tasks_redispatched,
        )
        self.metrics.counter(
            "repro_htex_tasks_poisoned_total", "Tasks quarantined as poison",
            labels=mlabels, callback=lambda: self.tasks_poisoned,
        )
        self._m_exec_seconds = self.metrics.histogram(
            "repro_htex_execution_seconds", "Worker-side task execution latency",
            labels=mlabels,
        )
        #: Optional ``fn(seconds)`` invoked with every worker-side execution
        #: latency (the same samples ``repro_htex_execution_seconds`` sees).
        #: The gateway points this at its SLO engine's per-executor rolling
        #: windows; exceptions are swallowed so observers can't stall results.
        self.latency_observer: Optional[Callable[[float], None]] = None

    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        return self.server.port

    @property
    def host(self) -> str:
        return self.server.host

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        main = threading.Thread(target=self._main_loop, name=f"{self.label}-main", daemon=True)
        main.start()
        self._threads.append(main)

    def stop(self) -> None:
        self._stop_event.set()
        self.server.broadcast(msg.shutdown_message())
        time.sleep(0.05)
        for t in self._threads:
            t.join(timeout=2)
        self.server.close()

    # ------------------------------------------------------------------
    # Client-facing API (called from the executor in the same process)
    # ------------------------------------------------------------------
    def submit_task(
        self,
        task_id: int,
        buffer: bytes,
        priority: int = 0,
        cores: int = 1,
        walltime_s: Optional[float] = None,
    ) -> None:
        self.pending_tasks.put(
            msg.task_item(task_id, buffer, priority=priority, cores=cores, walltime_s=walltime_s)
        )

    def submit_tasks(self, items: List[Dict[str, Any]]) -> None:
        """Enqueue a pre-packed batch of tasks (each item: ``task_id``,
        ``buffer``, and optionally ``priority`` / ``cores``).

        This is the executor's batched submission entry point: the whole batch
        lands on the outbound priority queue in one call and the dispatch loop
        coalesces it into as few manager messages as capacity allows.
        """
        self.pending_tasks.put_many(items)

    def command(self, cmd: str, **kwargs) -> Any:
        """Synchronous command channel (§4.3.1).

        Supported commands: ``outstanding``, ``connected_managers``,
        ``worker_count``, ``blacklist`` (kwargs: identity), ``drain_block``
        (kwargs: block_id), ``block_report``, ``scheduling_stats``,
        ``shutdown``.
        """
        if cmd == "outstanding":
            with self._managers_lock:
                dispatched = sum(len(m.outstanding) for m in self._managers.values())
            return dispatched + self.pending_tasks.qsize()
        if cmd == "connected_managers":
            with self._managers_lock:
                return [
                    {
                        "identity": m.identity,
                        "block_id": m.block_id,
                        "hostname": m.hostname,
                        "worker_count": m.worker_count,
                        "free_capacity": m.free_capacity,
                        "outstanding": len(m.outstanding),
                        "in_flight_cores": m.in_flight_cores,
                        "blacklisted": m.blacklisted,
                        "draining": m.draining,
                    }
                    for m in self._managers.values()
                    if m.active
                ]
        if cmd == "worker_count":
            with self._managers_lock:
                return sum(m.worker_count for m in self._managers.values() if m.active and not m.blacklisted)
        if cmd == "blacklist":
            identity = kwargs["identity"]
            with self._managers_lock:
                record = self._managers.get(identity)
                if record is None:
                    return False
                record.blacklisted = True
            return True
        if cmd == "drain_block":
            return self._drain_block(kwargs["block_id"])
        if cmd == "block_report":
            return self.block_report()
        if cmd == "scheduling_stats":
            return self.scheduling_stats()
        if cmd == "shutdown":
            self.stop()
            return True
        raise ValueError(f"unknown interchange command {cmd!r}")

    def scheduling_stats(self) -> Dict[str, Any]:
        """Placement accounting for the whole campaign (fig7's assertion feed).

        Covers every manager ever seen — live records plus the frozen stats
        of managers that have since disconnected — so "no manager ever held
        more in-flight cores than it advertised" can be asserted post-run.
        """
        with self._managers_lock:
            managers = {
                m.identity: {
                    "capacity": m.max_queue_depth,
                    "in_flight_cores": m.in_flight_cores,
                    "peak_in_flight_cores": m.peak_in_flight_cores,
                }
                for m in self._managers.values()
            }
            retired = dict(self._retired_manager_stats)
        retired.update(managers)
        return {
            "policy": self.scheduling_policy,
            "queue_depth": self.pending_tasks.qsize(),
            "oversubscription_events": self.oversubscription_events,
            "managers": retired,
            "faults": self.fault_stats(),
        }

    def fault_stats(self) -> Dict[str, int]:
        """Campaign fault counters: what died, and what happened to its work.

        ``tasks_redispatched`` counts every requeue, whether the trigger was
        a lost worker, a lost manager, or a drain timeout; ``in_flight_cores``
        is the live sum across connected managers, which must return to zero
        once a campaign settles (the chaos acceptance asserts exactly that).
        """
        with self._managers_lock:
            in_flight = sum(m.in_flight_cores for m in self._managers.values() if m.active)
        return {
            "managers_lost": self.managers_lost,
            "workers_lost": self.workers_lost,
            "tasks_redispatched": self.tasks_redispatched,
            "tasks_poisoned": self.tasks_poisoned,
            "in_flight_cores": in_flight,
        }

    def _retire_manager_stats(self, record: ManagerRecord) -> None:
        """Freeze a disconnecting manager's accounting (caller holds the lock)."""
        self._retired_manager_stats[record.identity] = {
            "capacity": record.max_queue_depth,
            "in_flight_cores": 0,
            "peak_in_flight_cores": record.peak_in_flight_cores,
        }

    def block_report(self) -> Dict[str, Dict[str, Any]]:
        """Per-block aggregate of manager activity, for the block registry."""
        report: Dict[str, Dict[str, Any]] = {}
        with self._managers_lock:
            for m in self._managers.values():
                if not m.active or m.block_id is None:
                    continue
                entry = report.setdefault(
                    m.block_id,
                    {"managers": 0, "outstanding": 0, "free_capacity": 0, "draining": False},
                )
                entry["managers"] += 1
                entry["outstanding"] += len(m.outstanding)
                entry["free_capacity"] += m.free_capacity
                entry["draining"] = entry["draining"] or m.draining
        return report

    def _drain_block(self, block_id: str) -> int:
        """Stop dispatching to ``block_id``'s managers; shut them down once idle.

        Returns the number of managers marked draining. ``0`` means no manager
        of that block is connected — the caller should cancel the provider job
        directly instead of waiting for a drain that can never complete.
        """
        drained: List[str] = []
        with self._managers_lock:
            for m in self._managers.values():
                if m.active and m.block_id == block_id and not m.draining:
                    m.draining = True
                    drained.append(m.identity)
            if drained:
                self._draining_blocks.setdefault(block_id, time.time())
        for identity in drained:
            # Belt and braces: tell the manager too, so it stops advertising
            # capacity even if a 'ready' message was already in flight.
            self.server.send(identity, msg.drain_message())
        return len(drained)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def _main_loop(self) -> None:
        while not self._stop_event.is_set():
            try:
                self._process_incoming()
                self._dispatch_tasks()
                self._drain_sweep()
                self._heartbeat_sweep()
            except Exception:  # noqa: BLE001 - the broker must not die
                logger.exception("interchange loop error")

    def _process_incoming(self) -> None:
        """Drain messages from managers."""
        received = self.server.recv(timeout=self.poll_period)
        while received is not None:
            identity, message = received
            self._handle_message(identity, message)
            # Drain without blocking once we are in a burst.
            received = self.server.recv(timeout=0.0)

    def _handle_message(self, identity: str, message: Dict[str, Any]) -> None:
        mtype = message.get("type")
        if mtype == "registration":
            info = message.get("info", {})
            record = ManagerRecord(
                identity=identity,
                block_id=info.get("block_id"),
                hostname=info.get("hostname", "unknown"),
                worker_count=int(info.get("worker_count", 1)),
                prefetch_capacity=int(info.get("prefetch_capacity", 0)),
            )
            with self._managers_lock:
                # A manager booting into a block that is already being
                # drained (scale-in raced its registration) must never
                # become dispatch-eligible — mark it draining on arrival so
                # the drain can settle instead of stalling to drain_timeout.
                if record.block_id in self._draining_blocks:
                    record.draining = True
                self._managers[identity] = record
            if record.draining:
                self.server.send(identity, msg.drain_message())
            logger.info(
                "manager %s registered (%s workers)%s",
                identity, record.worker_count, " [draining block]" if record.draining else "",
            )
        elif mtype == "heartbeat":
            self._touch(identity)
            self.server.send(identity, msg.heartbeat_reply_message())
        elif mtype == "ready":
            # The advertisement is liveness telemetry only: dispatch capacity
            # is derived from the interchange's own in-flight accounting
            # (immune to message reordering), so there is nothing to record.
            self._touch(identity)
        elif mtype == "results":
            self._touch(identity)
            items = message.get("items", [])
            genuine = []
            with self._managers_lock:
                record = self._managers.get(identity)
                for item in items:
                    if "worker_lost" in item:
                        continue  # settled (and counted) in _handle_worker_lost
                    settled = None
                    if record is not None:
                        settled = record.outstanding.pop(item["task_id"], None)
                        if settled is not None:
                            freed = msg.task_cores(settled)
                            record.in_flight_cores = max(record.in_flight_cores - freed, 0)
                    genuine.append((item, settled))
            for item in items:
                if "worker_lost" in item:
                    self._handle_worker_lost(identity, item)
            for item, settled in genuine:
                self.results_received += 1
                item.setdefault("manager", identity)
                self._merge_result_timing(item, settled)
                self.result_callback(item)
        elif mtype == "drain_ack":
            self._touch(identity)
        elif mtype == "peer_lost":
            self._manager_lost(identity, reason="connection lost")
        # Unknown message types are ignored (forward compatibility).

    def _merge_result_timing(self, item: Dict[str, Any],
                             settled: Optional[Dict[str, Any]]) -> None:
        """Fold worker/manager-side timestamps into metrics and the trace.

        Workers stamp ``exec_start``/``exec_end`` and managers ``sent_at``
        unconditionally (plain floats on the result item), so the execution
        histogram records whether or not the task carries a trace. The span
        events merge only when the dispatched item held a trace context —
        that merge mutates the same dict the DFK's TaskRecord references, so
        the DFK's ``result_committed`` flush picks these hops up for free.
        """
        t_start = item.get("exec_start")
        t_end = item.get("exec_end")
        if t_start is not None and t_end is not None:
            self._m_exec_seconds.observe(t_end - t_start)
            observer = self.latency_observer
            if observer is not None:
                try:
                    observer(t_end - t_start)
                except Exception:  # noqa: BLE001 - observers must not stall results
                    logger.exception("latency observer failed")
        trace = settled.get("trace") if settled is not None else None
        if trace is None:
            return
        if t_start is not None:
            stamp(trace, "executing", t_start)
        if t_end is not None:
            stamp(trace, "exec_done", t_end)
        sent_at = item.get("sent_at")
        if sent_at is not None:
            stamp(trace, "result_sent", sent_at)
        item["trace"] = trace

    def _touch(self, identity: str) -> None:
        with self._managers_lock:
            record = self._managers.get(identity)
            if record is not None:
                record.last_heartbeat = time.time()

    def _handle_worker_lost(self, identity: str, item: Dict[str, Any]) -> None:
        """Settle a task whose worker died mid-execution (poison quarantine).

        The kill is charged against the *task* (the count rides in the
        dispatched item, so it survives requeues and manager failover):

        * below ``poison_threshold`` the task is redispatched — it re-enters
          the pending queue at its original priority stamp, and may well land
          back on the reporting manager, whose worker was respawned;
        * at the threshold it is failed with a typed
          :class:`~repro.errors.WorkerPoisonError` instead, so one bad task
          cannot keep killing freshly respawned workers forever;
        * with no eligible manager left it fails with
          :class:`~repro.errors.WorkerLost` rather than stranding in the
          pending queue (mirroring the no-survivor ManagerLost rule).
        """
        info = item.get("worker_lost") or {}
        task_id = item["task_id"]
        hostname = str(info.get("hostname", "unknown"))
        with self._managers_lock:
            self.workers_lost += 1
            record = self._managers.get(identity)
            settled = record.outstanding.pop(task_id, None) if record is not None else None
            if settled is not None and record is not None:
                freed = msg.task_cores(settled)
                record.in_flight_cores = max(record.in_flight_cores - freed, 0)
            if settled is None:
                # Already settled (e.g. the manager was declared lost and the
                # task requeued before this straggler arrived): the kill was
                # real, but there is nothing left to charge it against.
                return
            kills = settled["worker_kills"] = settled.get("worker_kills", 0) + 1
            survivors = any(
                m.active and not m.blacklisted and not m.draining
                for m in self._managers.values()
            )
        if kills >= self.poison_threshold:
            self.tasks_poisoned += 1
            logger.warning(
                "task %s quarantined as poison after killing %d workers (last: worker %s on %s)",
                task_id, kills, info.get("worker_id"), hostname,
            )
            self.result_callback(
                {
                    "task_id": task_id,
                    "exception": WorkerPoisonError(task_id, kills, hostname),
                    "manager": identity,
                }
            )
        elif survivors:
            self.tasks_redispatched += 1
            logger.info(
                "task %s redispatched after losing worker %s on %s (kill %d/%d)",
                task_id, info.get("worker_id"), hostname, kills, self.poison_threshold,
            )
            self.pending_tasks.put(settled)
        else:
            self.result_callback(
                {
                    "task_id": task_id,
                    "exception": WorkerLost(
                        info.get("worker_id"), hostname, info.get("exitcode")
                    ),
                    "manager": identity,
                }
            )

    # ------------------------------------------------------------------
    def _dispatch_tasks(self) -> None:
        """One placement round: snapshot capacity once, place a whole window.

        The eligible managers are snapshotted into
        :class:`~repro.scheduling.placement.ManagerSlot` views under the lock
        *once per round* (not once per task, as the old ``_select_manager``
        re-scan did), and the policy's index answers each placement in
        O(log managers) — a batch dispatches in O(batch · log managers).

        Tasks are popped in priority order. A task no manager can currently
        fit (e.g. a 4-core task while only single slots are free) is held
        aside and restored to its exact queue position afterwards — up to
        ``placement_lookahead`` such tasks per round, so smaller tasks behind
        it keep flowing without the scan degenerating to O(queue).

        Deferred *multi-core* tasks additionally place a **reservation**:
        under sustained 1-core traffic every manager stays saturated, so
        without one a cores-N task would starve — its execution-slot window
        never opens. The round that defers one picks a capable manager and
        holds it out of the next round's snapshot; receiving no new work, it
        drains until the task fits (the reservation is re-evaluated every
        round and vanishes as soon as nothing multi-core is deferred).
        """
        if self.pending_tasks.empty():
            return
        with self._managers_lock:
            reservation = self._exec_reservation
            slots = []
            for m in self._managers.values():
                if not (m.active and not m.blacklisted and not m.draining):
                    continue
                if (
                    reservation is not None
                    and m.identity == reservation[0]
                    and m.exec_slots_remaining < reservation[1]
                ):
                    continue  # held in reserve: drains toward the blocked multi-core task
                if m.capacity_remaining > 0:
                    slots.append(
                        ManagerSlot(
                            m.identity,
                            m.capacity_remaining,
                            len(m.outstanding),
                            exec_free=m.exec_slots_remaining,
                        )
                    )
        if not slots:
            return
        view = make_placement_view(self.scheduling_policy, slots, self._rng, rr_cursor=self._rr_cursor)
        budget = sum(slot.free for slot in slots)
        assignments: Dict[str, List[Dict[str, Any]]] = {}
        deferred: List[Dict[str, Any]] = []
        while budget > 0:
            item = self.pending_tasks.pop()
            if item is None:
                break
            cores = msg.task_cores(item)
            identity = view.place(cores)
            if identity is None:
                deferred.append(item)
                if len(deferred) >= self.placement_lookahead:
                    break
                continue
            assignments.setdefault(identity, []).append(item)
            budget -= cores
        self.pending_tasks.put_many(deferred)  # stamped keys restore their positions
        self._update_exec_reservation(deferred)
        for identity, items in assignments.items():
            self._send_assignment(identity, items)

    def _update_exec_reservation(self, deferred: List[Dict[str, Any]]) -> None:
        """Hold one manager back for the best deferred multi-core task.

        ``deferred`` is in priority order, so the first multi-core entry is
        the one strict priority says should run next. The chosen manager is
        the capable one (enough workers) closest to fitting it.
        """
        for item in deferred:
            cores = msg.task_cores(item)
            if cores <= 1:
                continue
            with self._managers_lock:
                candidates = [
                    m
                    for m in self._managers.values()
                    if m.active and not m.blacklisted and not m.draining and m.worker_count >= cores
                ]
                if candidates:
                    best = max(
                        candidates, key=lambda m: (m.exec_slots_remaining, -len(m.outstanding))
                    )
                    self._exec_reservation = (best.identity, cores)
                    return
            break  # no capable manager connected; nothing to reserve
        self._exec_reservation = None

    def _send_assignment(self, identity: str, items: List[Dict[str, Any]]) -> None:
        """Ship one manager's share of the round in batch-sized messages."""
        for start in range(0, len(items), self.batch_size):
            chunk = items[start : start + self.batch_size]
            t_send = time.time()
            delivered = self.server.send(identity, msg.tasks_message(chunk))
            if not delivered:
                # Connection died between placement and send: requeue (at
                # original priority) and let the loss path clean up.
                self.pending_tasks.put_many(items[start:])
                self._manager_lost(identity, reason="send failed")
                return
            # Stamped only after the send succeeded (a failed-send requeue
            # would otherwise leave an orphan hop per retry) but with the
            # pre-send time, so "dispatched" always precedes the worker's
            # "executing" even when a thread-mode worker starts instantly.
            for item in chunk:
                trace = item.get("trace")
                if trace is not None:
                    stamp(trace, "dispatched", t_send)
                    # Live worker attribution: the straggler detector names
                    # the manager a stuck task was dispatched to long before
                    # any result-side stamp could merge in.
                    trace["manager"] = identity
            chunk_cores = sum(msg.task_cores(item) for item in chunk)
            with self._managers_lock:
                live = self._managers.get(identity)
                if live is not None:
                    for item in chunk:
                        live.outstanding[item["task_id"]] = item
                    live.in_flight_cores += chunk_cores
                    live.peak_in_flight_cores = max(
                        live.peak_in_flight_cores, live.in_flight_cores
                    )
                    if live.in_flight_cores > live.max_queue_depth:
                        self.oversubscription_events += 1
            self.tasks_dispatched += len(chunk)

    # ------------------------------------------------------------------
    def _drain_sweep(self) -> None:
        """Settle draining blocks: shut managers down once their tasks finish.

        A draining manager receives no new dispatches (see
        :meth:`_eligible_managers`); when every in-flight task it holds has
        returned, it is sent a shutdown message and disconnected, and once the
        last manager of a block settles the ``block_drained_callback`` fires so
        the executor can cancel the provider job. A block that fails to settle
        within ``drain_timeout`` is treated like a lost manager: its in-flight
        tasks are requeued individually and the drain completes anyway.
        """
        if not self._draining_blocks:
            return
        now = time.time()
        to_shutdown: List[str] = []   # settled managers: shutdown + disconnect
        to_lose: List[str] = []       # stuck managers past drain_timeout
        drained: List[str] = []       # blocks whose drain completed this sweep
        with self._managers_lock:
            for block_id, since in list(self._draining_blocks.items()):
                managers = [
                    m for m in self._managers.values() if m.active and m.block_id == block_id
                ]
                if not managers:
                    # Every manager already gone (lost or settled earlier).
                    del self._draining_blocks[block_id]
                    drained.append(block_id)
                    continue
                settled = [m for m in managers if not m.outstanding]
                timed_out = now - since > self.drain_timeout
                if len(settled) < len(managers) and not timed_out:
                    continue  # tasks still in flight; check again next loop
                for m in settled:
                    m.active = False
                    del self._managers[m.identity]
                    self._retire_manager_stats(m)
                    to_shutdown.append(m.identity)
                to_lose.extend(m.identity for m in managers if m.outstanding)
                del self._draining_blocks[block_id]
                drained.append(block_id)
        # Socket work and callbacks happen outside the lock.
        for identity in to_shutdown:
            self.server.send(identity, msg.shutdown_message())
            self.server.disconnect(identity)
        for identity in to_lose:
            # Past the drain timeout: settle in-flight tasks individually,
            # exactly like a lost manager (requeue within redispatch budget).
            self._manager_lost(identity, reason="drain timeout")
        for block_id in drained:
            logger.info("block %s drained", block_id)
            if self.block_drained_callback is not None:
                try:
                    self.block_drained_callback(block_id)
                except Exception:  # noqa: BLE001 - executor-side bookkeeping error
                    logger.exception("block_drained_callback failed for %s", block_id)

    def _heartbeat_sweep(self) -> None:
        now = time.time()
        if now - self._last_heartbeat_sweep < self.heartbeat_period:
            return
        self._last_heartbeat_sweep = now
        with self._managers_lock:
            stale = [
                m.identity
                for m in self._managers.values()
                if m.active and now - m.last_heartbeat > self.heartbeat_threshold
            ]
        for identity in stale:
            self._manager_lost(identity, reason="missed heartbeats")

    def _manager_lost(self, identity: str, reason: str) -> None:
        """Handle the loss of a manager, settling its in-flight tasks one by one.

        Tasks were dispatched to the dead manager in *batches*, but they are
        settled *individually*: each task is requeued for another manager when
        one is available and the task still has a redispatch budget, and
        otherwise fails with its own :class:`~repro.errors.ManagerLost` — never
        one exception shared across a whole batch message. A requeued task
        keeps its ``_vtime`` stamp, so it re-enters the pending queue at its
        original priority and accrued age, not at the back.
        """
        with self._managers_lock:
            record = self._managers.get(identity)
            if record is None or not record.active:
                return
            record.active = False
            self.managers_lost += 1
            outstanding = list(record.outstanding.values())
            record.outstanding.clear()
            record.in_flight_cores = 0
            hostname = record.hostname
            del self._managers[identity]
            self._retire_manager_stats(record)
            # Draining managers are not survivors: they accept no new
            # dispatches, so requeueing onto them would strand the tasks in
            # the pending queue forever — better to fail with ManagerLost.
            survivors = any(
                m.active and not m.blacklisted and not m.draining
                for m in self._managers.values()
            )
        requeued = 0
        for item in outstanding:
            if survivors and item.get("redispatches", 0) < self.max_task_redispatches:
                item["redispatches"] = item.get("redispatches", 0) + 1
                self.pending_tasks.put(item)
                requeued += 1
                self.tasks_redispatched += 1
            else:
                self.result_callback(
                    {
                        "task_id": item["task_id"],
                        "exception": ManagerLost(identity, hostname),
                        "manager": identity,
                    }
                )
        if outstanding:
            logger.warning(
                "manager %s lost (%s) with %d outstanding tasks (%d requeued, %d failed)",
                identity, reason, len(outstanding), requeued, len(outstanding) - requeued,
            )
        self.server.disconnect(identity)

    # ------------------------------------------------------------------
    @property
    def connected_manager_count(self) -> int:
        with self._managers_lock:
            return sum(1 for m in self._managers.values() if m.active)

    @property
    def connected_worker_count(self) -> int:
        with self._managers_lock:
            return sum(m.worker_count for m in self._managers.values() if m.active and not m.blacklisted)
