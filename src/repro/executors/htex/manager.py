"""HTEX manager (pilot agent).

One manager runs per node of a block (§4.3.1). It is a multi-threaded agent
that:

* registers with the interchange, advertising its worker count and prefetch
  capacity,
* receives batches of tasks and feeds them to a pool of worker processes (or
  threads, for lightweight deployments),
* aggregates results and returns them to the interchange in batches,
* exchanges heartbeats with the interchange and **exits immediately** if the
  interchange goes silent, to avoid wasting allocation time — the behaviour
  described in the paper,
* supervises its workers: each worker publishes the task it is executing in
  a shared claims array, and a supervisor thread polls worker liveness. A
  worker that dies mid-task (segfault, OOM kill, ``os._exit`` in user code)
  gets a :class:`~repro.errors.WorkerLost` result synthesized for its
  claimed task — releasing the in-flight cores it held — and is respawned,
  up to ``worker_respawn_limit`` respawns per manager. Past the budget the
  manager exits cleanly so the interchange's ``ManagerLost`` path requeues
  whatever it still held.

Tasks travel to process workers over **per-worker duplex pipes**, not a
shared ``multiprocessing.Queue``: the shared queue's cross-process read
lock is held by whichever idle worker is currently inside
``get(timeout=...)``, so a SIGKILL landing on that worker would wedge the
entire pool (and all future respawns) behind a lock nobody will ever
release — a frozen pool that still heartbeats. With private pipes the
manager routes each task to the least-loaded live worker, a per-slot
reader thread funnels results into a manager-local (single-process, and
therefore unpoisonable) queue, and when a worker dies the supervisor
drains whatever the victim managed to send, synthesizes the loss for its
claimed task, and re-routes the tasks it never started.

The manager can be embedded (``Manager(...).start()`` from Python, used by
tests and by the thread-mode executor) or run as a process via
``python -m repro.executors.htex.process_worker_pool``.
"""

from __future__ import annotations

import logging
import multiprocessing
import queue as queue_module
import socket
import threading
import time
from typing import Any, Dict, List, Optional

from repro.comms.client import MessageClient
from repro.executors.htex import messages as msg
from repro.executors.htex.worker import (
    NO_CLAIM,
    STOP,
    ThreadChannel,
    worker_loop,
    worker_process_main,
)
from repro.utils.ids import make_manager_id

logger = logging.getLogger(__name__)


class Manager:
    """A pilot agent managing the workers of one node."""

    def __init__(
        self,
        interchange_host: str,
        interchange_port: int,
        worker_count: int = 2,
        prefetch_capacity: int = 0,
        block_id: Optional[str] = None,
        heartbeat_period: float = 1.0,
        heartbeat_threshold: float = 10.0,
        result_batch_size: int = 16,
        worker_mode: str = "process",
        sandbox_root: Optional[str] = None,
        manager_id: Optional[str] = None,
        worker_respawn_limit: int = 8,
        supervision_period: float = 0.1,
    ):
        if worker_count < 1:
            raise ValueError("worker_count must be >= 1")
        if worker_mode not in ("process", "thread"):
            raise ValueError("worker_mode must be 'process' or 'thread'")
        if worker_respawn_limit < 0:
            raise ValueError("worker_respawn_limit must be >= 0")
        self.interchange_host = interchange_host
        self.interchange_port = interchange_port
        self.worker_count = worker_count
        self.prefetch_capacity = prefetch_capacity
        self.block_id = block_id
        self.heartbeat_period = heartbeat_period
        self.heartbeat_threshold = heartbeat_threshold
        self.result_batch_size = result_batch_size
        self.worker_mode = worker_mode
        self.sandbox_root = sandbox_root
        self.manager_id = manager_id or make_manager_id()
        self.worker_respawn_limit = worker_respawn_limit
        self.supervision_period = supervision_period

        self._client: Optional[MessageClient] = None
        self._workers: List[Any] = []
        if worker_mode == "process":
            ctx = multiprocessing.get_context("fork")
            self._ctx = ctx
            # One slot per worker in shared memory: the task id the worker is
            # executing, NO_CLAIM when idle. Survives the worker's death (the
            # whole point), unlike anything in flight on the worker's pipe.
            self._claims: Any = ctx.Array("q", [NO_CLAIM] * worker_count, lock=False)
        else:
            self._ctx = None
            self._claims = [NO_CLAIM] * worker_count
        # Results funnel into a manager-local queue — plain queue.Queue, no
        # cross-process locks a dying worker could poison. Process workers
        # reach it via per-slot reader threads; thread workers deliver
        # directly.
        self._result_queue: Any = queue_module.Queue()
        #: Per-slot manager-side channel to the worker: a duplex Connection
        #: (process mode) or a ThreadChannel (thread mode).
        self._channels: List[Any] = [None] * worker_count
        #: Per-slot send lock: the task router, the supervisor's re-route and
        #: shutdown's STOP pills may write the same pipe concurrently, and
        #: Connection.send is not atomic across writers.
        self._channel_locks: List[threading.Lock] = [
            threading.Lock() for _ in range(worker_count)
        ]
        #: Per-slot (reader thread, stop event); None for thread workers.
        self._readers: List[Any] = [None] * worker_count
        #: Per-slot task_id -> item for tasks routed to that worker and not
        #: yet settled; guarded by ``_capacity_lock``. On worker death this
        #: is exactly the set to recover: the claimed entry becomes a
        #: synthesized loss, the rest never started and are re-routed.
        self._assigned: List[Dict[int, Dict[str, Any]]] = [
            {} for _ in range(worker_count)
        ]
        self._stop_event = threading.Event()
        self._draining = threading.Event()
        self._threads: List[threading.Thread] = []
        self._last_interchange_contact = time.time()
        #: In-flight load in worker core-slots: a multi-core task (resource
        #: spec ``cores=N``) holds N slots from receipt until its result is
        #: flushed, so the capacity this manager advertises never co-schedules
        #: more cores than it has.
        self._in_flight = 0
        self._task_cores: Dict[int, int] = {}
        self._capacity_lock = threading.Lock()
        self.tasks_received = 0
        self.results_sent = 0
        #: Workers that died unexpectedly / were respawned by the supervisor.
        self.workers_lost = 0
        self.workers_respawned = 0

    # ------------------------------------------------------------------
    @property
    def max_queue_depth(self) -> int:
        return self.worker_count + self.prefetch_capacity

    def _free_capacity(self) -> int:
        if self._draining.is_set():
            # A draining manager never advertises capacity: the interchange
            # already excludes it from dispatch, and this closes the race
            # where a 'ready' message was in flight when the drain started.
            return 0
        with self._capacity_lock:
            return max(self.max_queue_depth - self._in_flight, 0)

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Connect to the interchange, start workers and service threads."""
        registration = msg.manager_registration_info(
            block_id=self.block_id,
            hostname=socket.gethostname(),
            worker_count=self.worker_count,
            prefetch_capacity=self.prefetch_capacity,
        )
        self._client = MessageClient(
            self.interchange_host,
            self.interchange_port,
            identity=self.manager_id,
            registration_info=registration,
        )
        self._start_workers()
        for name, target in [
            ("task-puller", self._task_pull_loop),
            ("result-pusher", self._result_push_loop),
            ("heartbeat", self._heartbeat_loop),
            ("supervisor", self._supervise_loop),
        ]:
            t = threading.Thread(target=target, name=f"{self.manager_id}-{name}", daemon=True)
            t.start()
            self._threads.append(t)

    def _start_workers(self) -> None:
        for worker_id in range(self.worker_count):
            self._workers.append(self._spawn_worker(worker_id))

    def _spawn_worker(self, worker_id: int) -> Any:
        """Start (or restart) the worker for one slot and return its handle."""
        self._claims[worker_id] = NO_CLAIM
        if self.worker_mode == "process":
            parent_conn, child_conn = self._ctx.Pipe(duplex=True)
            proc = self._ctx.Process(
                target=worker_process_main,
                args=(worker_id, child_conn, self.sandbox_root, self._claims),
                name=f"{self.manager_id}-worker-{worker_id}",
                daemon=True,
            )
            proc.start()
            child_conn.close()  # the worker holds its own copy now
            self._channels[worker_id] = parent_conn
            stop_evt = threading.Event()
            reader = threading.Thread(
                target=self._reader_loop,
                args=(worker_id, parent_conn, stop_evt),
                name=f"{self.manager_id}-reader-{worker_id}",
                daemon=True,
            )
            reader.start()
            self._readers[worker_id] = (reader, stop_evt)
            return proc
        channel = ThreadChannel(
            lambda item, wid=worker_id: self._deliver_result(wid, item)
        )
        self._channels[worker_id] = channel
        t = threading.Thread(
            target=worker_loop,
            args=(worker_id, channel, self.sandbox_root, self._claims),
            name=f"{self.manager_id}-worker-{worker_id}",
            daemon=True,
        )
        t.start()
        return t

    # ------------------------------------------------------------------
    # Per-worker channel plumbing
    # ------------------------------------------------------------------
    def _deliver_result(self, worker_id: int, item: Dict[str, Any]) -> None:
        """Move one worker result into the local result queue.

        Pops the task from the slot's assigned set first, so that when the
        supervisor later sweeps a dead worker's slot, whatever is left there
        is exactly the work that never produced a result.
        """
        with self._capacity_lock:
            self._assigned[worker_id].pop(item.get("task_id"), None)
        self._result_queue.put(item)

    def _reader_loop(self, worker_id: int, conn: Any, stop_evt: threading.Event) -> None:
        """Funnel one process worker's pipe into the local result queue."""
        while not (stop_evt.is_set() or self._stop_event.is_set()):
            try:
                if conn.poll(0.1):
                    item = conn.recv()
                    if item is not None:
                        self._deliver_result(worker_id, item)
            except (EOFError, OSError):
                return

    def _send_to_worker(self, worker_id: int, payload: Any) -> None:
        with self._channel_locks[worker_id]:
            self._channels[worker_id].send(payload)

    def _route_item(self, item: Dict[str, Any]) -> None:
        """Send one task to the least-loaded live worker.

        Blocks (politely) while every slot is mid-respawn; if the manager
        stops before a live worker appears, the item stays charged in
        ``_task_cores`` and the interchange's ManagerLost path requeues it.
        """
        task_id = item["task_id"]
        while not self._stop_event.is_set():
            with self._capacity_lock:
                live = [
                    wid
                    for wid in range(self.worker_count)
                    if not self._worker_is_dead(self._workers[wid])
                ]
                if live:
                    target = min(live, key=lambda wid: len(self._assigned[wid]))
                    self._assigned[target][task_id] = item
                else:
                    target = None
            if target is None:
                time.sleep(0.02)
                continue
            try:
                self._send_to_worker(target, item)
                return
            except (OSError, ValueError, BrokenPipeError):
                # The worker died between the liveness check and the send;
                # un-assign and pick again (the supervisor will respawn it).
                with self._capacity_lock:
                    self._assigned[target].pop(task_id, None)
                time.sleep(0.01)

    # ------------------------------------------------------------------
    # Service loops
    # ------------------------------------------------------------------
    def _task_pull_loop(self) -> None:
        assert self._client is not None
        while not self._stop_event.is_set():
            message = self._client.recv(timeout=0.1)
            if message is None:
                continue
            mtype = message.get("type")
            if mtype == "tasks":
                items = message.get("items", [])
                self.tasks_received += len(items)
                with self._capacity_lock:
                    for item in items:
                        cores = msg.task_cores(item)
                        self._task_cores[item["task_id"]] = cores
                        self._in_flight += cores
                for item in items:
                    self._route_item(item)
                self._last_interchange_contact = time.time()
            elif mtype == "heartbeat_reply":
                self._last_interchange_contact = time.time()
            elif mtype == "drain":
                logger.info("manager %s draining (block scale-in)", self.manager_id)
                self._draining.set()
                self._last_interchange_contact = time.time()
                self._client.send(msg.drain_ack_message())
            elif mtype == "shutdown":
                logger.info("manager %s received shutdown", self.manager_id)
                self._stop_event.set()
            elif mtype == "connection_lost":
                if not self._stop_event.is_set():
                    logger.warning("manager %s lost its interchange connection; exiting", self.manager_id)
                self._stop_event.set()

    def _result_push_loop(self) -> None:
        """Return results to the interchange with opportunistic batching.

        Blocks for the first result, then greedily drains whatever else has
        already completed (up to ``result_batch_size``) and flushes
        immediately: bursts travel as dense batches while a lone result is
        never delayed by a flush timer. The results message and the follow-up
        capacity advertisement share one socket write.

        Items are either genuine results (``buffer``) or supervisor-synthesized
        losses (``worker_lost``); either way the first settle of a task id wins
        — later items for an already-settled task are dropped, which is what
        makes the claim-clearing race in the worker benign.

        A broken result queue (EOFError/OSError) is fatal: the manager can no
        longer deliver results, so it must *stop* — and stop heartbeating — so
        the interchange declares it lost and requeues its work. Swallowing the
        error and keeping the heartbeat alive would silently black-hole every
        in-flight task.
        """
        assert self._client is not None
        while not self._stop_event.is_set():
            queue_broken = False
            try:
                item: Optional[Dict[str, Any]] = self._result_queue.get(timeout=0.05)
            except queue_module.Empty:
                continue
            except (EOFError, OSError):
                logger.error(
                    "manager %s: result queue broke; exiting so the interchange requeues",
                    self.manager_id,
                )
                self._stop_event.set()
                break
            raw: List[Dict[str, Any]] = [item] if item is not None else []
            while len(raw) < self.result_batch_size:
                try:
                    extra = self._result_queue.get_nowait()
                except queue_module.Empty:
                    break
                except (EOFError, OSError):
                    queue_broken = True
                    break
                if extra is not None:
                    raw.append(extra)
            batch: List[Dict[str, Any]] = []
            with self._capacity_lock:
                freed = 0
                for result in raw:
                    cores = self._task_cores.pop(result["task_id"], None)
                    if cores is None:
                        continue  # already settled (result raced a synthesized loss)
                    freed += cores
                    entry: Dict[str, Any] = {"task_id": result["task_id"]}
                    if "buffer" in result:
                        entry["buffer"] = result["buffer"]
                        # Worker-side execution endpoints plus the moment this
                        # manager shipped the result: the interchange merges
                        # them into the task's trace span events and the
                        # execution-latency histogram.
                        for key in ("exec_start", "exec_end"):
                            if key in result:
                                entry[key] = result[key]
                        entry["sent_at"] = time.time()
                    else:
                        entry["worker_lost"] = result["worker_lost"]
                    batch.append(entry)
                self._in_flight = max(self._in_flight - freed, 0)
            if batch:
                self.results_sent += len(batch)
                self._client.send_many(
                    [msg.results_message(batch), msg.ready_message(self._free_capacity())]
                )
            if queue_broken:
                logger.error(
                    "manager %s: result queue broke; exiting so the interchange requeues",
                    self.manager_id,
                )
                self._stop_event.set()
                break

    # ------------------------------------------------------------------
    # Worker supervision
    # ------------------------------------------------------------------
    def _worker_is_dead(self, worker: Any) -> bool:
        if hasattr(worker, "exitcode"):
            return worker.exitcode is not None
        return not worker.is_alive()

    def _supervise_loop(self) -> None:
        """Contain worker crashes: synthesize losses, release cores, respawn.

        Polls every worker slot each ``supervision_period``. A worker that
        died without a shutdown being requested has its claimed task (read
        from the shared claims array) settled with a synthesized
        ``worker_lost`` item pushed through the normal result path — so its
        in-flight cores are released and the interchange learns about the
        kill — and the slot is respawned, until ``worker_respawn_limit``
        respawns have been spent. Past the budget the manager stops cleanly:
        the interchange's ManagerLost machinery requeues everything it still
        held, which is strictly better than a zombie manager heartbeating
        over a shrinking (eventually empty) worker pool.
        """
        hostname = socket.gethostname()
        respawns_left = self.worker_respawn_limit
        while not self._stop_event.is_set():
            self._stop_event.wait(self.supervision_period)
            if self._stop_event.is_set():
                return
            for worker_id, worker in enumerate(self._workers):
                if not self._worker_is_dead(worker):
                    continue
                if self._stop_event.is_set():
                    return  # shutdown raced the poll: STOP-pill exits are not crashes
                self.workers_lost += 1
                exitcode = getattr(worker, "exitcode", None)
                claimed = self._claims[worker_id]
                logger.warning(
                    "manager %s: worker %d died (exitcode %s) holding task %s",
                    self.manager_id, worker_id, exitcode,
                    claimed if claimed != NO_CLAIM else "none",
                )
                # Salvage first: results the victim sent before dying are
                # still readable from its pipe, and delivering them pops the
                # slot's assigned set — so the loss/re-route sweep below sees
                # only work that genuinely never finished. FIFO through the
                # local result queue then guarantees a salvaged genuine
                # result settles before the synthesized loss reaches dedup.
                self._retire_channel(worker_id)
                if claimed != NO_CLAIM:
                    self._claims[worker_id] = NO_CLAIM
                    self._result_queue.put(
                        msg.worker_lost_item(int(claimed), worker_id, hostname, exitcode)
                    )
                if respawns_left > 0:
                    respawns_left -= 1
                    self.workers_respawned += 1
                    self._workers[worker_id] = self._spawn_worker(worker_id)
                    self._reroute_orphans(worker_id, int(claimed))
                else:
                    logger.error(
                        "manager %s: worker respawn budget (%d) exhausted; exiting so "
                        "the interchange takes over",
                        self.manager_id, self.worker_respawn_limit,
                    )
                    self._flush_then_stop(int(claimed) if claimed != NO_CLAIM else None)
                    return

    def _retire_channel(self, worker_id: int) -> None:
        """Stop a dead worker's reader and salvage what its pipe still holds.

        A SIGKILLed worker may have sent results the reader had not pulled
        yet; pipe contents survive the writer's death, so drain them before
        closing. Thread workers have no reader (they cannot die by signal),
        so this is a no-op for them.
        """
        entry = self._readers[worker_id]
        if entry is None:
            return
        reader, stop_evt = entry
        stop_evt.set()
        reader.join(timeout=1.0)
        conn = self._channels[worker_id]
        try:
            while conn.poll(0):
                item = conn.recv()
                if item is not None:
                    self._deliver_result(worker_id, item)
        except (EOFError, OSError):
            pass
        try:
            conn.close()
        except OSError:
            pass
        self._readers[worker_id] = None

    def _reroute_orphans(self, worker_id: int, claimed: int) -> None:
        """Re-route tasks the dead worker never started to live workers.

        After the salvage in :meth:`_retire_channel`, the slot's assigned set
        holds only unsettled work: the claimed task (mid-execution when the
        worker died — it becomes a synthesized loss, charged as a kill) and
        tasks still sitting unread in the dead pipe. The latter never
        started, so they move to another worker silently: no kill is charged
        and the interchange never knows.
        """
        with self._capacity_lock:
            orphans = [
                item
                for task_id, item in self._assigned[worker_id].items()
                if task_id != claimed and task_id in self._task_cores
            ]
            self._assigned[worker_id] = {}
        for item in orphans:
            self._route_item(item)

    def _flush_then_stop(self, task_id: Optional[int]) -> None:
        """Give a final synthesized loss a moment to reach the wire, then stop.

        The worker-kill count for the task that exhausted the budget must
        reach the interchange (else a poison task resets its tally on every
        manager it chews through); the push loop clears ``_task_cores`` as it
        flushes, so wait for that — bounded, since the manager is dying
        either way.
        """
        if task_id is not None:
            deadline = time.time() + 2.0
            while time.time() < deadline:
                with self._capacity_lock:
                    if task_id not in self._task_cores:
                        break
                time.sleep(0.01)
        self._stop_event.set()

    def _heartbeat_loop(self) -> None:
        assert self._client is not None
        while not self._stop_event.is_set():
            self._client.send_many(
                [msg.heartbeat_message(), msg.ready_message(self._free_capacity())]
            )
            if time.time() - self._last_interchange_contact > self.heartbeat_threshold:
                logger.warning(
                    "manager %s: no interchange contact for %.1fs; exiting to avoid waste",
                    self.manager_id,
                    self.heartbeat_threshold,
                )
                self._stop_event.set()
                break
            self._stop_event.wait(self.heartbeat_period)

    # ------------------------------------------------------------------
    def wait(self) -> None:
        """Block until the manager shuts down (used by the CLI entry point)."""
        while not self._stop_event.is_set():
            time.sleep(0.1)
        self.shutdown()

    def shutdown(self) -> None:
        self._stop_event.set()
        for worker_id in range(len(self._workers)):
            try:
                self._send_to_worker(worker_id, STOP)
            except (OSError, ValueError, BrokenPipeError, AttributeError):
                continue  # already-dead worker / retired channel: nothing to stop
        for worker in self._workers:
            if hasattr(worker, "terminate"):
                worker.join(timeout=1)
                if worker.is_alive():
                    worker.terminate()
            else:
                worker.join(timeout=1)
        for worker_id, entry in enumerate(self._readers):
            if entry is None:
                continue
            reader, stop_evt = entry
            stop_evt.set()
            reader.join(timeout=1)
            try:
                self._channels[worker_id].close()
            except (OSError, AttributeError):
                pass
        if self._client is not None:
            self._client.close()

    # ------------------------------------------------------------------
    def run_forever(self) -> None:
        """Start and block; the CLI wrapper calls this."""
        self.start()
        try:
            self.wait()
        except KeyboardInterrupt:
            self.shutdown()
