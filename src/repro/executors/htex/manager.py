"""HTEX manager (pilot agent).

One manager runs per node of a block (§4.3.1). It is a multi-threaded agent
that:

* registers with the interchange, advertising its worker count and prefetch
  capacity,
* receives batches of tasks and feeds them to a pool of worker processes (or
  threads, for lightweight deployments),
* aggregates results and returns them to the interchange in batches,
* exchanges heartbeats with the interchange and **exits immediately** if the
  interchange goes silent, to avoid wasting allocation time — the behaviour
  described in the paper.

The manager can be embedded (``Manager(...).start()`` from Python, used by
tests and by the thread-mode executor) or run as a process via
``python -m repro.executors.htex.process_worker_pool``.
"""

from __future__ import annotations

import logging
import multiprocessing
import queue as queue_module
import socket
import threading
import time
from typing import Any, Dict, List, Optional

from repro.comms.client import MessageClient
from repro.executors.htex import messages as msg
from repro.executors.htex.worker import STOP, worker_loop, worker_process_main
from repro.utils.ids import make_manager_id

logger = logging.getLogger(__name__)


class Manager:
    """A pilot agent managing the workers of one node."""

    def __init__(
        self,
        interchange_host: str,
        interchange_port: int,
        worker_count: int = 2,
        prefetch_capacity: int = 0,
        block_id: Optional[str] = None,
        heartbeat_period: float = 1.0,
        heartbeat_threshold: float = 10.0,
        result_batch_size: int = 16,
        worker_mode: str = "process",
        sandbox_root: Optional[str] = None,
        manager_id: Optional[str] = None,
    ):
        if worker_count < 1:
            raise ValueError("worker_count must be >= 1")
        if worker_mode not in ("process", "thread"):
            raise ValueError("worker_mode must be 'process' or 'thread'")
        self.interchange_host = interchange_host
        self.interchange_port = interchange_port
        self.worker_count = worker_count
        self.prefetch_capacity = prefetch_capacity
        self.block_id = block_id
        self.heartbeat_period = heartbeat_period
        self.heartbeat_threshold = heartbeat_threshold
        self.result_batch_size = result_batch_size
        self.worker_mode = worker_mode
        self.sandbox_root = sandbox_root
        self.manager_id = manager_id or make_manager_id()

        self._client: Optional[MessageClient] = None
        self._workers: List[Any] = []
        if worker_mode == "process":
            ctx = multiprocessing.get_context("fork")
            self._task_queue: Any = ctx.Queue()
            self._result_queue: Any = ctx.Queue()
            self._ctx = ctx
        else:
            self._task_queue = queue_module.Queue()
            self._result_queue = queue_module.Queue()
            self._ctx = None
        self._stop_event = threading.Event()
        self._draining = threading.Event()
        self._threads: List[threading.Thread] = []
        self._last_interchange_contact = time.time()
        #: In-flight load in worker core-slots: a multi-core task (resource
        #: spec ``cores=N``) holds N slots from receipt until its result is
        #: flushed, so the capacity this manager advertises never co-schedules
        #: more cores than it has.
        self._in_flight = 0
        self._task_cores: Dict[int, int] = {}
        self._capacity_lock = threading.Lock()
        self.tasks_received = 0
        self.results_sent = 0

    # ------------------------------------------------------------------
    @property
    def max_queue_depth(self) -> int:
        return self.worker_count + self.prefetch_capacity

    def _free_capacity(self) -> int:
        if self._draining.is_set():
            # A draining manager never advertises capacity: the interchange
            # already excludes it from dispatch, and this closes the race
            # where a 'ready' message was in flight when the drain started.
            return 0
        with self._capacity_lock:
            return max(self.max_queue_depth - self._in_flight, 0)

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Connect to the interchange, start workers and service threads."""
        registration = msg.manager_registration_info(
            block_id=self.block_id,
            hostname=socket.gethostname(),
            worker_count=self.worker_count,
            prefetch_capacity=self.prefetch_capacity,
        )
        self._client = MessageClient(
            self.interchange_host,
            self.interchange_port,
            identity=self.manager_id,
            registration_info=registration,
        )
        self._start_workers()
        for name, target in [
            ("task-puller", self._task_pull_loop),
            ("result-pusher", self._result_push_loop),
            ("heartbeat", self._heartbeat_loop),
        ]:
            t = threading.Thread(target=target, name=f"{self.manager_id}-{name}", daemon=True)
            t.start()
            self._threads.append(t)

    def _start_workers(self) -> None:
        for worker_id in range(self.worker_count):
            if self.worker_mode == "process":
                proc = self._ctx.Process(
                    target=worker_process_main,
                    args=(worker_id, self._task_queue, self._result_queue, self.sandbox_root),
                    name=f"{self.manager_id}-worker-{worker_id}",
                    daemon=True,
                )
                proc.start()
                self._workers.append(proc)
            else:
                t = threading.Thread(
                    target=worker_loop,
                    args=(worker_id, self._task_queue, self._result_queue, self.sandbox_root),
                    name=f"{self.manager_id}-worker-{worker_id}",
                    daemon=True,
                )
                t.start()
                self._workers.append(t)

    # ------------------------------------------------------------------
    # Service loops
    # ------------------------------------------------------------------
    def _task_pull_loop(self) -> None:
        assert self._client is not None
        while not self._stop_event.is_set():
            message = self._client.recv(timeout=0.1)
            if message is None:
                continue
            mtype = message.get("type")
            if mtype == "tasks":
                items = message.get("items", [])
                self.tasks_received += len(items)
                with self._capacity_lock:
                    for item in items:
                        cores = msg.task_cores(item)
                        self._task_cores[item["task_id"]] = cores
                        self._in_flight += cores
                for item in items:
                    self._task_queue.put(item)
                self._last_interchange_contact = time.time()
            elif mtype == "heartbeat_reply":
                self._last_interchange_contact = time.time()
            elif mtype == "drain":
                logger.info("manager %s draining (block scale-in)", self.manager_id)
                self._draining.set()
                self._last_interchange_contact = time.time()
                self._client.send(msg.drain_ack_message())
            elif mtype == "shutdown":
                logger.info("manager %s received shutdown", self.manager_id)
                self._stop_event.set()
            elif mtype == "connection_lost":
                if not self._stop_event.is_set():
                    logger.warning("manager %s lost its interchange connection; exiting", self.manager_id)
                self._stop_event.set()

    def _result_push_loop(self) -> None:
        """Return results to the interchange with opportunistic batching.

        Blocks for the first result, then greedily drains whatever else has
        already completed (up to ``result_batch_size``) and flushes
        immediately: bursts travel as dense batches while a lone result is
        never delayed by a flush timer. The results message and the follow-up
        capacity advertisement share one socket write.
        """
        assert self._client is not None
        while not self._stop_event.is_set():
            try:
                item = self._result_queue.get(timeout=0.05)
            except queue_module.Empty:
                continue
            except (EOFError, OSError):
                break
            batch: List[Dict[str, Any]] = [{"task_id": item["task_id"], "buffer": item["buffer"]}]
            while len(batch) < self.result_batch_size:
                try:
                    extra = self._result_queue.get_nowait()
                except queue_module.Empty:
                    break
                except (EOFError, OSError):
                    break
                batch.append({"task_id": extra["task_id"], "buffer": extra["buffer"]})
            with self._capacity_lock:
                freed = sum(self._task_cores.pop(result["task_id"], 1) for result in batch)
                self._in_flight = max(self._in_flight - freed, 0)
            self.results_sent += len(batch)
            self._client.send_many(
                [msg.results_message(batch), msg.ready_message(self._free_capacity())]
            )

    def _heartbeat_loop(self) -> None:
        assert self._client is not None
        while not self._stop_event.is_set():
            self._client.send_many(
                [msg.heartbeat_message(), msg.ready_message(self._free_capacity())]
            )
            if time.time() - self._last_interchange_contact > self.heartbeat_threshold:
                logger.warning(
                    "manager %s: no interchange contact for %.1fs; exiting to avoid waste",
                    self.manager_id,
                    self.heartbeat_threshold,
                )
                self._stop_event.set()
                break
            self._stop_event.wait(self.heartbeat_period)

    # ------------------------------------------------------------------
    def wait(self) -> None:
        """Block until the manager shuts down (used by the CLI entry point)."""
        while not self._stop_event.is_set():
            time.sleep(0.1)
        self.shutdown()

    def shutdown(self) -> None:
        self._stop_event.set()
        for _ in self._workers:
            try:
                self._task_queue.put(STOP)
            except (OSError, ValueError):
                break
        for worker in self._workers:
            if hasattr(worker, "terminate"):
                worker.join(timeout=1)
                if worker.is_alive():
                    worker.terminate()
            else:
                worker.join(timeout=1)
        if self._client is not None:
            self._client.close()

    # ------------------------------------------------------------------
    def run_forever(self) -> None:
        """Start and block; the CLI wrapper calls this."""
        self.start()
        try:
            self.wait()
        except KeyboardInterrupt:
            self.shutdown()
