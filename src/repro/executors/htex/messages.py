"""Message shapes exchanged between the executor client, interchange, and managers.

Keeping these as plain dict constructors (rather than classes) mirrors how the
real system ships msgpack/pickle dicts over ZeroMQ, keeps every message
trivially picklable, and makes the protocol easy to assert on in tests.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional


# ---------------------------------------------------------------------------
# Manager -> Interchange
# ---------------------------------------------------------------------------

def manager_registration_info(
    block_id: Optional[str],
    hostname: str,
    worker_count: int,
    prefetch_capacity: int = 0,
    kind: str = "manager",
) -> Dict[str, Any]:
    """The registration payload a manager announces when it connects."""
    return {
        "kind": kind,
        "block_id": block_id,
        "hostname": hostname,
        "worker_count": worker_count,
        "prefetch_capacity": prefetch_capacity,
        "registered_at": time.time(),
    }


def heartbeat_message() -> Dict[str, Any]:
    return {"type": "heartbeat", "timestamp": time.time()}


def ready_message(free_capacity: int) -> Dict[str, Any]:
    """Capacity advertisement: the manager can accept ``free_capacity`` more tasks."""
    return {"type": "ready", "free_capacity": free_capacity}


def results_message(items: List[Dict[str, Any]]) -> Dict[str, Any]:
    """A batch of completed tasks; each item has ``task_id`` and ``buffer``."""
    return {"type": "results", "items": items}


def drain_ack_message() -> Dict[str, Any]:
    return {"type": "drain_ack"}


def worker_lost_item(
    task_id: int,
    worker_id: int,
    hostname: str,
    exitcode: Optional[int] = None,
) -> Dict[str, Any]:
    """A synthesized result for a task whose worker died mid-execution.

    Travels inside a normal ``results`` message (so ordering relative to
    genuine results is preserved) but carries a ``worker_lost`` record
    instead of a ``buffer``. The interchange settles the task's capacity,
    bumps its worker-kill count, and either redispatches it or — past the
    poison threshold — fails it with
    :class:`~repro.errors.WorkerPoisonError`.
    """
    return {
        "task_id": task_id,
        "worker_lost": {
            "worker_id": worker_id,
            "hostname": hostname,
            "exitcode": exitcode,
            "lost_at": time.time(),
        },
    }


# ---------------------------------------------------------------------------
# Task items (executor -> interchange -> manager)
# ---------------------------------------------------------------------------

def task_item(
    task_id: int,
    buffer: bytes,
    priority: int = 0,
    cores: int = 1,
    walltime_s: Optional[float] = None,
    trace: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """One task as it travels the dispatch path.

    ``priority`` orders the interchange's pending queue (higher runs sooner);
    ``cores`` is the number of worker core-slots the task occupies on the one
    manager it is placed on; ``walltime_s`` is the runtime limit the worker
    *enforces* (the task is killed past it). ``trace`` is the task's trace
    context (:mod:`repro.observability.trace`) — carried by reference inside
    the interchange so its span stamps land on the DFK's own dict. All
    default to the pre-scheduling behaviour (FIFO one-slot unlimited tasks),
    and the optional fields are simply absent from the minimal form so old
    captures/tests remain valid.
    """
    item: Dict[str, Any] = {"task_id": task_id, "buffer": buffer}
    if priority:
        item["priority"] = priority
    if cores != 1:
        item["cores"] = cores
    if walltime_s is not None:
        item["walltime_s"] = float(walltime_s)
    if trace is not None:
        item["trace"] = trace
    return item


def task_cores(item: Dict[str, Any]) -> int:
    """Core-slots an in-flight task item occupies (1 when unspecified)."""
    return int(item.get("cores") or 1)


# ---------------------------------------------------------------------------
# Interchange -> Manager
# ---------------------------------------------------------------------------

def tasks_message(items: List[Dict[str, Any]]) -> Dict[str, Any]:
    """A batch of tasks; each item has ``task_id`` and ``buffer``."""
    return {"type": "tasks", "items": items}


def drain_message() -> Dict[str, Any]:
    """Scale-in: stop advertising capacity; finish in-flight work, then exit."""
    return {"type": "drain"}


def shutdown_message() -> Dict[str, Any]:
    return {"type": "shutdown"}


def heartbeat_reply_message() -> Dict[str, Any]:
    return {"type": "heartbeat_reply", "timestamp": time.time()}
