"""CLI entry point for an HTEX manager (the per-node pilot agent).

This is the command the provider launches on every node of a block::

    python -m repro.executors.htex.process_worker_pool \
        --host 127.0.0.1 --port 54321 --workers 4 --block-id block-0

Providers set ``REPRO_NODE_RANK`` via their launcher; the manager includes it
in its identity so monitoring can tell nodes of one block apart.
"""

from __future__ import annotations

import argparse
import logging
import os
import sys

from repro.executors.htex.manager import Manager


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description="repro HTEX process worker pool (manager)")
    parser.add_argument("--host", required=True, help="interchange host")
    parser.add_argument("--port", type=int, required=True, help="interchange manager port")
    parser.add_argument("--workers", type=int, default=2, help="worker processes on this node")
    parser.add_argument("--prefetch", type=int, default=0, help="extra tasks to prefetch beyond worker count")
    parser.add_argument("--block-id", default=None, help="block id this manager belongs to")
    parser.add_argument("--heartbeat-period", type=float, default=1.0)
    parser.add_argument("--heartbeat-threshold", type=float, default=10.0)
    parser.add_argument("--result-batch-size", type=int, default=16)
    parser.add_argument(
        "--worker-respawn-limit",
        type=int,
        default=8,
        help="crashed-worker respawns before the manager gives up and exits",
    )
    parser.add_argument("--worker-mode", choices=["process", "thread"], default="process")
    parser.add_argument("--sandbox-root", default=None, help="directory for per-worker sandboxes")
    parser.add_argument("--debug", action="store_true")
    return parser.parse_args(argv)


def main(argv=None) -> int:
    args = parse_args(argv)
    logging.basicConfig(
        level=logging.DEBUG if args.debug else logging.INFO,
        format="%(asctime)s %(name)s %(levelname)s %(message)s",
    )
    node_rank = os.environ.get("REPRO_NODE_RANK", "0")
    manager = Manager(
        interchange_host=args.host,
        interchange_port=args.port,
        worker_count=args.workers,
        prefetch_capacity=args.prefetch,
        block_id=args.block_id,
        heartbeat_period=args.heartbeat_period,
        heartbeat_threshold=args.heartbeat_threshold,
        result_batch_size=args.result_batch_size,
        worker_respawn_limit=args.worker_respawn_limit,
        worker_mode=args.worker_mode,
        sandbox_root=args.sandbox_root,
        manager_id=None if node_rank == "0" else None,
    )
    manager.run_forever()
    return 0


if __name__ == "__main__":
    sys.exit(main())
