"""HTEX worker process: executes tasks handed to it by its manager.

Workers are deliberately dumb: they pull a serialized task from the manager's
shared task queue, run it through the common execution kernel, and push the
serialized outcome onto the result queue. All protocol complexity lives in
the manager and interchange.
"""

from __future__ import annotations

import os
import queue as queue_module
from typing import Optional

from repro.executors.execute_task import execute_task

#: Poison pill placed on the task queue to terminate a worker.
STOP = None


def worker_loop(worker_id: int, task_queue, result_queue, sandbox_root: Optional[str] = None) -> int:
    """Run tasks until a poison pill arrives; returns the number executed.

    ``task_queue`` items are dicts with ``task_id`` and ``buffer``;
    ``result_queue`` items add the worker id and the serialized outcome.
    """
    executed = 0
    sandbox_dir = None
    if sandbox_root:
        sandbox_dir = os.path.join(sandbox_root, f"worker_{worker_id}")
    while True:
        try:
            item = task_queue.get(timeout=1.0)
        except queue_module.Empty:
            continue
        except (EOFError, OSError):
            break
        if item is STOP:
            break
        buffer = execute_task(
            item["buffer"], sandbox_dir=sandbox_dir, walltime_s=item.get("walltime_s")
        )
        result_queue.put({"task_id": item["task_id"], "buffer": buffer, "worker_id": worker_id})
        executed += 1
    return executed


def worker_process_main(worker_id: int, task_queue, result_queue, sandbox_root: Optional[str] = None) -> None:
    """Entry point used when the worker runs as a separate OS process."""
    try:
        worker_loop(worker_id, task_queue, result_queue, sandbox_root)
    except KeyboardInterrupt:
        pass
