"""HTEX worker process: executes tasks handed to it by its manager.

Workers are deliberately dumb: they pull a serialized task from a private
channel to their manager, run it through the common execution kernel, and
push the serialized outcome back over the same channel. All protocol
complexity lives in the manager and interchange.

Each worker owns a **private duplex pipe** rather than sharing
``multiprocessing.Queue``\\ s with its siblings. The shared-queue design has
a fatal flaw under crash-containment: ``Queue.get(timeout=...)`` holds the
queue's cross-process read lock for the *entire* poll, so a SIGKILL landing
on an idle worker (which is where a worker spends most of its life) takes
the lock to the grave and permanently wedges every sibling — and every
future respawn — in that pool, while the manager keeps heartbeating over a
frozen pool. A ``Connection`` has no shared locks: a kill can only sever
the victim's own channel, which the manager's supervisor then drains and
retires.

The one piece of bookkeeping a worker does own is its **claim**: before
executing a task it writes the task id into its slot of the manager's shared
claims array, and clears the slot (to ``NO_CLAIM``) only after the result has
been handed off. If the worker dies mid-task — segfault, OOM kill,
``os._exit`` in user code — the claim survives in shared memory, so the
manager's supervisor knows exactly which task went down with the process and
can synthesize a :class:`~repro.errors.WorkerLost` result for it instead of
stranding its future forever.
"""

from __future__ import annotations

import os
import queue as queue_module
import time
from typing import Optional

from repro.executors.execute_task import execute_task

#: Poison pill sent down a worker's channel to terminate it.
STOP = None

#: Claims-array value meaning "this worker holds no task".
NO_CLAIM = -1


class WorkerChannel:
    """Worker-side view of the private duplex pipe to the manager.

    Adapts a :class:`multiprocessing.connection.Connection` to the two-call
    surface :func:`worker_loop` needs; raising :class:`queue.Empty` on a poll
    timeout keeps the loop's control flow queue-shaped without reintroducing
    any cross-process lock.
    """

    def __init__(self, conn):
        self._conn = conn

    def get(self, timeout: Optional[float] = None):
        if self._conn.poll(timeout):
            return self._conn.recv()
        raise queue_module.Empty

    def put_result(self, item) -> None:
        self._conn.send(item)


class ThreadChannel:
    """Thread-mode stand-in for the duplex pipe.

    Thread workers cannot be SIGKILLed, so a private ``queue.Queue`` inbox
    plus a direct delivery callback into the manager gives the same channel
    surface with zero serialization cost.
    """

    def __init__(self, deliver):
        self.inbox: queue_module.Queue = queue_module.Queue()
        self._deliver = deliver

    # manager side
    def send(self, item) -> None:
        self.inbox.put(item)

    # worker side
    def get(self, timeout: Optional[float] = None):
        return self.inbox.get(timeout=timeout)

    def put_result(self, item) -> None:
        self._deliver(item)


def worker_loop(
    worker_id: int,
    channel,
    sandbox_root: Optional[str] = None,
    claims=None,
) -> int:
    """Run tasks until a poison pill arrives; returns the number executed.

    ``channel`` items are dicts with ``task_id`` and ``buffer``; results add
    the worker id and the serialized outcome. ``claims`` (when given) is a
    shared array indexed by worker id: the task id currently being executed
    is published there *before* execution starts and cleared only after the
    result is handed off, so a crash between the two leaves a readable
    tombstone for the supervisor.
    """
    executed = 0
    sandbox_dir = None
    if sandbox_root:
        sandbox_dir = os.path.join(sandbox_root, f"worker_{worker_id}")
    while True:
        try:
            item = channel.get(timeout=1.0)
        except queue_module.Empty:
            continue
        except (EOFError, OSError):
            break
        if item is STOP:
            break
        if claims is not None:
            claims[worker_id] = item["task_id"]
        # Execution endpoints are stamped unconditionally (two time.time()
        # calls): the interchange turns them into span events when the task
        # carries a trace and into the execution-latency histogram always.
        exec_start = time.time()
        buffer = execute_task(
            item["buffer"], sandbox_dir=sandbox_dir, walltime_s=item.get("walltime_s")
        )
        exec_end = time.time()
        try:
            channel.put_result(
                {
                    "task_id": item["task_id"],
                    "buffer": buffer,
                    "worker_id": worker_id,
                    "exec_start": exec_start,
                    "exec_end": exec_end,
                }
            )
        except (EOFError, OSError, BrokenPipeError):
            break
        if claims is not None:
            # Cleared only after the result is handed off: a kill landing
            # between the send and this line leaves the claim set, and the
            # manager's result-path dedup (first settle wins) discards
            # whichever of the genuine result / synthesized loss arrives
            # second.
            claims[worker_id] = NO_CLAIM
        executed += 1
    return executed


def worker_process_main(
    worker_id: int,
    conn,
    sandbox_root: Optional[str] = None,
    claims=None,
) -> None:
    """Entry point used when the worker runs as a separate OS process."""
    try:
        worker_loop(worker_id, WorkerChannel(conn), sandbox_root, claims)
    except KeyboardInterrupt:
        pass
