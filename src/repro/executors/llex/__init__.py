"""Low Latency Executor (LLEX): a stateless relay between clients and directly connected workers."""

from repro.executors.llex.executor import LowLatencyExecutor

__all__ = ["LowLatencyExecutor"]
