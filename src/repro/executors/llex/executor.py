"""LowLatencyExecutor (LLEX).

Built for interactive and real-time workloads (§4.3.3): the relay does no
task tracking, workers connect directly (one socket per worker, one fewer
message hop each way), and there is no fault tolerance or elastic scaling —
LLEX assumes a fixed pool of resources. Optional timed retries paper over
lost workers for short tasks.
"""

from __future__ import annotations

import concurrent.futures as cf
import logging
import sys
import threading
from typing import Any, Callable, Dict, List, Optional

from repro.errors import UnsupportedFeatureError
from repro.executors.base import ReproExecutor
from repro.executors.llex.relay import LLEXRelay
from repro.executors.llex.worker import LLEXWorker
from repro.providers.base import ExecutionProvider
from repro.serialize import deserialize, pack_apply_message
from repro.utils.threads import AtomicCounter
from repro.utils.timers import RepeatedTimer

logger = logging.getLogger(__name__)


class LowLatencyExecutor(ReproExecutor):
    """Minimal-overhead executor for latency-sensitive workloads."""

    def __init__(
        self,
        label: str = "llex",
        provider: Optional[ExecutionProvider] = None,
        address: str = "127.0.0.1",
        workers_per_node: int = 1,
        internal_workers: int = 1,
        task_timeout: Optional[float] = None,
        max_retries: int = 0,
        launch_cmd: Optional[str] = None,
    ):
        super().__init__(label=label, provider=provider)
        self.address = address
        self.workers_per_node = workers_per_node
        self.internal_workers = internal_workers
        self.task_timeout = task_timeout
        self.max_retries = max_retries
        self.launch_cmd = launch_cmd or (
            "{python} -m repro.executors.llex.worker --host {host} --port {port}"
        )
        self.relay: Optional[LLEXRelay] = None
        self._internal_workers_objs: List[LLEXWorker] = []
        self._tasks: Dict[int, cf.Future] = {}
        self._outstanding = AtomicCounter()
        self._task_meta: Dict[int, Dict[str, Any]] = {}
        self._tasks_lock = threading.Lock()
        self._task_counter = 0
        self._retry_timer: Optional[RepeatedTimer] = None
        self._started = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._started:
            return
        self.relay = LLEXRelay(result_callback=self._handle_result, host=self.address, label=f"{self.label}-relay")
        self.relay.start()
        self._started = True
        if self.provider is not None:
            if self.provider.init_blocks > 0:
                self.scale_out(self.provider.init_blocks)
            self.start_block_monitoring()
        else:
            for _ in range(self.internal_workers):
                worker = LLEXWorker(self.relay.host, self.relay.port)
                worker.run_in_thread()
                self._internal_workers_objs.append(worker)
        if self.task_timeout:
            self._retry_timer = RepeatedTimer(
                max(self.task_timeout / 2, 0.05), self._retry_sweep, name=f"{self.label}-retry"
            )
            self._retry_timer.start()

    def _launch_block_command(self, block_id: str) -> str:
        assert self.relay is not None
        return self.launch_cmd.format(python=sys.executable, host=self.relay.host, port=self.relay.port)

    def scale_out(self, blocks: int = 1) -> List[str]:
        """LLEX blocks start ``workers_per_node`` direct workers per node."""
        if self.provider is None:
            raise UnsupportedFeatureError("LLEX without a provider uses a fixed internal worker pool")
        new_blocks = []
        for _ in range(blocks):
            from repro.utils.ids import make_block_id

            block_id = make_block_id()
            cmd = self._launch_block_command(block_id)
            job_id = self.provider.submit(cmd, tasks_per_node=self.workers_per_node, job_name=f"{self.label}.{block_id}")
            self.blocks[block_id] = job_id
            self.block_mapping[job_id] = block_id
            self.block_registry.add(block_id, job_id)
            new_blocks.append(block_id)
        return new_blocks

    def shutdown(self, block: bool = True) -> None:
        self.stop_block_monitoring()
        if self._retry_timer is not None:
            self._retry_timer.close()
        for worker in self._internal_workers_objs:
            worker.stop()
        self._internal_workers_objs = []
        if self.provider is not None and self.blocks:
            try:
                self.provider.cancel(list(self.blocks.values()))
            except Exception:  # noqa: BLE001
                logger.exception("failed to cancel LLEX blocks")
        if self.relay is not None:
            self.relay.stop()
        with self._tasks_lock:
            pending = [f for f in self._tasks.values() if not f.done()]
        for future in pending:
            future.cancel()
        self._started = False

    # ------------------------------------------------------------------
    def submit(self, func: Callable, resource_specification: Dict[str, Any], *args, **kwargs) -> cf.Future:
        if not self._started or self.relay is None:
            raise RuntimeError(f"executor {self.label!r} has not been started")
        if resource_specification:
            raise UnsupportedFeatureError("LLEX does not accept per-task resource specifications")
        buffer = pack_apply_message(func, args, kwargs)
        future: cf.Future = cf.Future()
        import time as _time

        with self._tasks_lock:
            task_id = self._task_counter
            self._task_counter += 1
            self._tasks[task_id] = future
            self._task_meta[task_id] = {"buffer": buffer, "submitted_at": _time.time(), "retries": 0}
        self._outstanding.increment()
        future.add_done_callback(lambda _f: self._outstanding.decrement())
        self.relay.submit_task(task_id, buffer)
        return future

    def _handle_result(self, item: Dict[str, Any]) -> None:
        task_id = item["task_id"]
        with self._tasks_lock:
            future = self._tasks.pop(task_id, None)
            self._task_meta.pop(task_id, None)
        if future is None or future.done():
            return
        try:
            outcome = deserialize(item["buffer"])
        except Exception as exc:  # noqa: BLE001
            future.set_exception(exc)
            return
        if "exception" in outcome:
            future.set_exception(outcome["exception"].e_value)
        else:
            future.set_result(outcome.get("result"))

    def _retry_sweep(self) -> None:
        """Timed retry/replication for lost tasks (the LLEX reliability story)."""
        if self.relay is None or not self.task_timeout:
            return
        import time as _time

        now = _time.time()
        to_retry = []
        to_fail = []
        with self._tasks_lock:
            for task_id, meta in self._task_meta.items():
                if now - meta["submitted_at"] < self.task_timeout:
                    continue
                if meta["retries"] < self.max_retries:
                    meta["retries"] += 1
                    meta["submitted_at"] = now
                    to_retry.append((task_id, meta["buffer"]))
                else:
                    to_fail.append(task_id)
        for task_id, buffer in to_retry:
            self.relay.submit_task(task_id, buffer)
        for task_id in to_fail:
            with self._tasks_lock:
                future = self._tasks.pop(task_id, None)
                self._task_meta.pop(task_id, None)
            if future is not None and not future.done():
                future.set_exception(TimeoutError(f"LLEX task {task_id} timed out with retries exhausted"))

    # ------------------------------------------------------------------
    @property
    def outstanding(self) -> int:
        # Exact counter fed by future done-callbacks; O(1) for the strategy.
        return self._outstanding.value

    @property
    def connected_workers(self) -> int:
        return self.relay.connected_worker_count if self.relay is not None else 0

    @property
    def workers_per_block(self) -> int:
        nodes = self.provider.nodes_per_block if self.provider is not None else 1
        return self.workers_per_node * nodes

    @property
    def scaling_enabled(self) -> bool:
        """LLEX assumes a fixed resource pool; the strategy must not scale it."""
        return False
