"""The LLEX interchange: a stateless relay (§4.3.3).

The relay does *no* task tracking: it simply forwards each task to an idle
worker and forwards each result back to the client callback. The routing
logic is therefore stateless and opaque to the relay, which is what buys the
latency reduction — and why worker loss cannot be detected (tasks sent to a
dead worker are simply never answered, unless the executor's timed-retry
layer resubmits them).
"""

from __future__ import annotations

import collections
import logging
import queue
import threading
from typing import Any, Callable, Dict, Optional

from repro.comms.server import MessageServer

logger = logging.getLogger(__name__)


class LLEXRelay:
    """Route tasks to directly connected workers with minimal bookkeeping."""

    def __init__(
        self,
        result_callback: Callable[[Dict[str, Any]], None],
        host: str = "127.0.0.1",
        port: int = 0,
        poll_period: float = 0.001,
        label: str = "llex-relay",
    ):
        self.result_callback = result_callback
        self.poll_period = poll_period
        self.label = label
        self.server = MessageServer(host=host, port=port, name=f"{label}-server")
        self.pending_tasks: "queue.Queue[Dict[str, Any]]" = queue.Queue()
        self._idle_workers: collections.deque = collections.deque()
        self._workers: Dict[str, bool] = {}  # identity -> connected
        self._lock = threading.Lock()
        self._stop_event = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._started = False

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self._thread = threading.Thread(target=self._loop, name=f"{self.label}-main", daemon=True)
        self._thread.start()

    def stop(self) -> None:
        self._stop_event.set()
        self.server.broadcast({"type": "shutdown"})
        if self._thread is not None:
            self._thread.join(timeout=2)
        self.server.close()

    # ------------------------------------------------------------------
    def submit_task(self, task_id: int, buffer: bytes) -> None:
        self.pending_tasks.put({"task_id": task_id, "buffer": buffer})

    @property
    def connected_worker_count(self) -> int:
        with self._lock:
            return sum(1 for connected in self._workers.values() if connected)

    # ------------------------------------------------------------------
    def _loop(self) -> None:
        while not self._stop_event.is_set():
            try:
                self._process_incoming()
                self._route_tasks()
            except Exception:  # noqa: BLE001
                logger.exception("LLEX relay loop error")

    def _process_incoming(self) -> None:
        received = self.server.recv(timeout=self.poll_period)
        while received is not None:
            identity, message = received
            mtype = message.get("type")
            if mtype == "registration":
                with self._lock:
                    self._workers[identity] = True
                    self._idle_workers.append(identity)
            elif mtype == "result":
                # Worker finished: forward and mark idle again.
                self.result_callback({"task_id": message["task_id"], "buffer": message["buffer"]})
                with self._lock:
                    if self._workers.get(identity):
                        self._idle_workers.append(identity)
            elif mtype == "peer_lost":
                # No task tracking: any in-flight task on this worker is lost
                # silently (the documented LLEX tradeoff).
                with self._lock:
                    self._workers[identity] = False
                    try:
                        self._idle_workers.remove(identity)
                    except ValueError:
                        pass
            received = self.server.recv(timeout=0.0)

    def _route_tasks(self) -> None:
        while True:
            with self._lock:
                if not self._idle_workers or self.pending_tasks.empty():
                    return
                identity = self._idle_workers.popleft()
            try:
                item = self.pending_tasks.get_nowait()
            except queue.Empty:
                with self._lock:
                    self._idle_workers.appendleft(identity)
                return
            sent = self.server.send(identity, {"type": "task", "task_id": item["task_id"], "buffer": item["buffer"]})
            if not sent:
                # Worker vanished; requeue the task for another worker.
                self.pending_tasks.put(item)
                with self._lock:
                    self._workers[identity] = False
