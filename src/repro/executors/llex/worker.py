"""LLEX worker: connects directly to the relay and executes one task at a time."""

from __future__ import annotations

import argparse
import logging
import sys
import threading
from typing import Optional

from repro.comms.client import MessageClient
from repro.executors.execute_task import execute_task
from repro.utils.ids import make_uid

logger = logging.getLogger(__name__)


class LLEXWorker:
    """A single-slot worker with a direct socket to the relay."""

    def __init__(self, host: str, port: int, worker_id: Optional[str] = None):
        self.host = host
        self.port = port
        self.worker_id = worker_id or make_uid("llex-worker")
        self._client: Optional[MessageClient] = None
        self._stop_event = threading.Event()
        self.tasks_executed = 0

    def start(self) -> None:
        self._client = MessageClient(
            self.host, self.port, identity=self.worker_id, registration_info={"kind": "llex-worker"}
        )

    def run(self) -> None:
        """Blocking serve loop: receive a task, execute, reply, repeat."""
        if self._client is None:
            self.start()
        assert self._client is not None
        while not self._stop_event.is_set():
            message = self._client.recv(timeout=0.1)
            if message is None:
                continue
            mtype = message.get("type")
            if mtype == "task":
                buffer = execute_task(message["buffer"])
                self._client.send({"type": "result", "task_id": message["task_id"], "buffer": buffer})
                self.tasks_executed += 1
            elif mtype in ("shutdown", "connection_lost"):
                break
        self.close()

    def run_in_thread(self) -> threading.Thread:
        """Run the serve loop on a daemon thread (internal deployments)."""
        self.start()
        thread = threading.Thread(target=self.run, name=self.worker_id, daemon=True)
        thread.start()
        return thread

    def stop(self) -> None:
        self._stop_event.set()

    def close(self) -> None:
        if self._client is not None:
            self._client.close()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="repro LLEX worker")
    parser.add_argument("--host", required=True)
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--debug", action="store_true")
    args = parser.parse_args(argv)
    logging.basicConfig(level=logging.DEBUG if args.debug else logging.INFO)
    worker = LLEXWorker(args.host, args.port)
    worker.start()
    worker.run()
    return 0


if __name__ == "__main__":
    sys.exit(main())
