"""ThreadPoolExecutor: in-process execution using Python threads.

This is the executor the paper uses as the latency floor in Figure 3 (§5.1):
tasks run in the submitting process, so the only overhead is queueing into a
``concurrent.futures`` thread pool. There is no provider and no scaling.
"""

from __future__ import annotations

import concurrent.futures as cf
from typing import Any, Callable, Dict, Optional

from repro.executors.base import ReproExecutor
from repro.utils.threads import AtomicCounter


class ThreadPoolExecutor(ReproExecutor):
    """Execute tasks on a pool of local threads."""

    def __init__(self, label: str = "threads", max_threads: int = 2, thread_name_prefix: str = "repro-worker"):
        super().__init__(label=label, provider=None)
        if max_threads < 1:
            raise ValueError("max_threads must be >= 1")
        self.max_threads = max_threads
        self.thread_name_prefix = thread_name_prefix
        self._pool: Optional[cf.ThreadPoolExecutor] = None
        self._outstanding = AtomicCounter()
        self._started = False

    def start(self) -> None:
        if self._started:
            return
        self._pool = cf.ThreadPoolExecutor(
            max_workers=self.max_threads, thread_name_prefix=self.thread_name_prefix
        )
        self._started = True

    def submit(self, func: Callable, resource_specification: Dict[str, Any], *args, **kwargs) -> cf.Future:
        if not self._started or self._pool is None:
            raise RuntimeError(f"executor {self.label!r} has not been started")
        self._outstanding.increment()
        future = self._pool.submit(func, *args, **kwargs)
        future.add_done_callback(lambda _f: self._outstanding.decrement())
        return future

    def shutdown(self, block: bool = True) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=block)
        self._started = False

    @property
    def outstanding(self) -> int:
        return self._outstanding.value

    @property
    def connected_workers(self) -> int:
        return self.max_threads if self._started else 0

    @property
    def workers_per_block(self) -> int:
        return self.max_threads

    @property
    def scaling_enabled(self) -> bool:
        return False
