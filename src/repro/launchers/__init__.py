"""Launchers: wrap a single worker command so it fans out over the nodes of a block (§4.2.2)."""

from repro.launchers.base import Launcher
from repro.launchers.launchers import (
    SimpleLauncher,
    SingleNodeLauncher,
    SrunLauncher,
    AprunLauncher,
    MpiExecLauncher,
    GnuParallelLauncher,
    WrappedLauncher,
)

__all__ = [
    "Launcher",
    "SimpleLauncher",
    "SingleNodeLauncher",
    "SrunLauncher",
    "AprunLauncher",
    "MpiExecLauncher",
    "GnuParallelLauncher",
    "WrappedLauncher",
]
