"""Launcher interface.

A launcher takes the single worker-pool command an executor wants to run and
produces the command line that will run it across the nodes/cores of a block.
On a Cray that is ``aprun -n ...``, on Slurm ``srun``, and so on. In this
reproduction the produced command lines are executed by the simulated LRM (or
by the LocalProvider directly); what matters for fidelity is the command
*shape* — one worker pool per node, ``$NODE_RANK``-style environment hints —
which the tests assert on.
"""

from __future__ import annotations

from abc import ABC, abstractmethod


class Launcher(ABC):
    """Convert a worker command into a per-block launch command."""

    def __init__(self, debug: bool = False):
        self.debug = debug

    @abstractmethod
    def __call__(self, command: str, tasks_per_node: int, nodes_per_block: int) -> str:
        """Return the shell command that launches ``command`` on the block."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
