"""Concrete launchers.

Because this reproduction executes blocks on the local host (optionally under
the simulated LRM), the launchers emit POSIX-shell loops that behave like
their HPC counterparts: they replicate the worker command once per node (and,
for GNU-parallel style launchers, once per task slot), exporting the
environment variables real launchers would provide (node id, ranks per node)
so worker-pool code can use them identically.
"""

from __future__ import annotations

from repro.launchers.base import Launcher


class SimpleLauncher(Launcher):
    """Run the command exactly once for the whole block (no wrapping)."""

    def __call__(self, command: str, tasks_per_node: int, nodes_per_block: int) -> str:
        return command


class SingleNodeLauncher(Launcher):
    """Run one copy of the command per task slot on a single node.

    This is the default launcher for workstation-class providers: it starts
    ``tasks_per_node`` copies in the background and waits for all of them.
    """

    def __call__(self, command: str, tasks_per_node: int, nodes_per_block: int) -> str:
        return (
            "set -e\n"
            f"CORES={tasks_per_node}\n"
            'PIDS=""\n'
            "for RANK in $(seq 0 $((CORES-1))); do\n"
            f"  REPRO_NODE_RANK=0 REPRO_LOCAL_RANK=$RANK {command} &\n"
            '  PIDS="$PIDS $!"\n'
            "done\n"
            "wait $PIDS\n"
        )


class _PerNodeLoopLauncher(Launcher):
    """Shared implementation for srun/aprun/mpiexec-style launchers.

    Real launchers place one process per node (or per rank) across the
    allocation; the local equivalent is a loop that starts one copy per node
    with ``REPRO_NODE_RANK`` set, which the worker pool uses to label itself.
    """

    launcher_name = "generic"

    def __call__(self, command: str, tasks_per_node: int, nodes_per_block: int) -> str:
        return (
            "set -e\n"
            f"# emulating {self.launcher_name} across {nodes_per_block} node(s)\n"
            f"NODES={nodes_per_block}\n"
            'PIDS=""\n'
            "for NODE in $(seq 0 $((NODES-1))); do\n"
            f"  REPRO_NODE_RANK=$NODE REPRO_TASKS_PER_NODE={tasks_per_node} "
            f"REPRO_LAUNCHER={self.launcher_name} {command} &\n"
            '  PIDS="$PIDS $!"\n'
            "done\n"
            "wait $PIDS\n"
        )


class SrunLauncher(_PerNodeLoopLauncher):
    """Slurm ``srun``-style launcher."""

    launcher_name = "srun"


class AprunLauncher(_PerNodeLoopLauncher):
    """Cray ALPS ``aprun``-style launcher (what the Blue Waters runs used)."""

    launcher_name = "aprun"


class MpiExecLauncher(_PerNodeLoopLauncher):
    """``mpiexec``-style launcher used for MPI-capable partitions."""

    launcher_name = "mpiexec"


class GnuParallelLauncher(Launcher):
    """GNU-parallel-style launcher: one copy per (node, task-slot) pair."""

    launcher_name = "gnu-parallel"

    def __call__(self, command: str, tasks_per_node: int, nodes_per_block: int) -> str:
        total = tasks_per_node * nodes_per_block
        return (
            "set -e\n"
            f"# emulating GNU parallel with {total} slots\n"
            f"TOTAL={total}\n"
            f"PER_NODE={tasks_per_node}\n"
            'PIDS=""\n'
            "for SLOT in $(seq 0 $((TOTAL-1))); do\n"
            "  NODE=$((SLOT / PER_NODE))\n"
            "  RANK=$((SLOT % PER_NODE))\n"
            f"  REPRO_NODE_RANK=$NODE REPRO_LOCAL_RANK=$RANK REPRO_LAUNCHER={self.launcher_name} {command} &\n"
            '  PIDS="$PIDS $!"\n'
            "done\n"
            "wait $PIDS\n"
        )


class WrappedLauncher(Launcher):
    """Run the command through a user-supplied prefix (e.g. a container runtime).

    This is how container execution (§4.6) is expressed: the prepend string is
    typically ``singularity exec image.sif`` or ``docker run --rm image``.
    """

    def __init__(self, prepend: str, debug: bool = False):
        super().__init__(debug=debug)
        self.prepend = prepend.strip()

    def __call__(self, command: str, tasks_per_node: int, nodes_per_block: int) -> str:
        return f"{self.prepend} {command}"

    def __repr__(self) -> str:
        return f"WrappedLauncher(prepend={self.prepend!r})"
