"""Simulated resource managers.

The paper's providers talk to real Local Resource Managers (Slurm, PBS/Torque,
Cobalt, HTCondor, GridEngine) and cloud APIs (AWS, Google Cloud, Jetstream,
Kubernetes). None of those are available here, so this package provides:

* :class:`~repro.lrm.scheduler.BatchSchedulerSim` — an in-process batch
  scheduler with partitions, node limits, FCFS scheduling, queue delays,
  walltime enforcement, and optional *real execution* of the job script on
  the local host (so small blocks genuinely start worker processes).
* :class:`~repro.lrm.cloud.CloudSim` — an instance-oriented API with
  provisioning delays, instance types, and spot-style preemption.

Providers exercise exactly the submit/status/cancel interface they would use
against the real systems; only the thing on the other side is simulated.
"""

from repro.lrm.scheduler import (
    BatchSchedulerSim,
    PartitionSpec,
    SimJob,
    SimJobState,
    parse_walltime,
    get_cluster,
    register_cluster,
    reset_clusters,
)
from repro.lrm.cloud import CloudSim, InstanceState, InstanceTypeSpec

__all__ = [
    "BatchSchedulerSim",
    "PartitionSpec",
    "SimJob",
    "SimJobState",
    "parse_walltime",
    "get_cluster",
    "register_cluster",
    "reset_clusters",
    "CloudSim",
    "InstanceState",
    "InstanceTypeSpec",
]
