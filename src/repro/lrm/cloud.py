"""A simulated cloud / container-orchestrator API.

Used by the AWS, Google Cloud, and Kubernetes providers. Instances (or pods)
are requested individually, take a provisioning delay to come up, can run a
bootstrap command as a real local process, and can be terminated. Spot-style
preemption can be enabled to exercise the fault-tolerance paths.
"""

from __future__ import annotations

import enum
import os
import random
import subprocess
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import SubmitException


class InstanceState(enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    TERMINATED = "terminated"
    PREEMPTED = "preempted"
    FAILED = "failed"

    @property
    def terminal(self) -> bool:
        return self in (InstanceState.TERMINATED, InstanceState.PREEMPTED, InstanceState.FAILED)


@dataclass
class InstanceTypeSpec:
    """Description of an instance type offered by the simulated cloud."""

    name: str
    cores: int
    memory_gb: float
    hourly_price: float
    spot_price: float = 0.0

    def __post_init__(self):
        if self.spot_price <= 0:
            self.spot_price = self.hourly_price * 0.3


DEFAULT_INSTANCE_TYPES = {
    "t2.micro": InstanceTypeSpec("t2.micro", cores=1, memory_gb=1, hourly_price=0.0116),
    "c5.xlarge": InstanceTypeSpec("c5.xlarge", cores=4, memory_gb=8, hourly_price=0.17),
    "c5.9xlarge": InstanceTypeSpec("c5.9xlarge", cores=36, memory_gb=72, hourly_price=1.53),
    "n1-standard-4": InstanceTypeSpec("n1-standard-4", cores=4, memory_gb=15, hourly_price=0.19),
    "pod-small": InstanceTypeSpec("pod-small", cores=1, memory_gb=2, hourly_price=0.0),
    "pod-large": InstanceTypeSpec("pod-large", cores=8, memory_gb=16, hourly_price=0.0),
}


@dataclass
class SimInstance:
    instance_id: str
    instance_type: InstanceTypeSpec
    command: Optional[str]
    spot: bool
    state: InstanceState = InstanceState.PENDING
    request_time: float = field(default_factory=time.time)
    ready_time: Optional[float] = None
    end_time: Optional[float] = None
    process: Optional[subprocess.Popen] = None


class CloudSim:
    """A minimal cloud control plane."""

    def __init__(
        self,
        name: str = "sim-cloud",
        provisioning_delay_s: float = 0.1,
        capacity: int = 1024,
        execute_instances: bool = True,
        preemption_rate_per_s: float = 0.0,
        instance_types: Optional[Dict[str, InstanceTypeSpec]] = None,
        working_dir: Optional[str] = None,
        seed: Optional[int] = None,
    ):
        self.name = name
        self.provisioning_delay_s = provisioning_delay_s
        self.capacity = capacity
        self.execute_instances = execute_instances
        self.preemption_rate_per_s = preemption_rate_per_s
        self.instance_types = dict(instance_types or DEFAULT_INSTANCE_TYPES)
        self.working_dir = working_dir or os.path.join(os.getcwd(), f".{name}-cloud")
        os.makedirs(self.working_dir, exist_ok=True)
        self._instances: Dict[str, SimInstance] = {}
        self._counter = 0
        self._lock = threading.RLock()
        self._rng = random.Random(seed)
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._control_loop, name=f"{name}-control", daemon=True)
        self._thread.start()

    # ------------------------------------------------------------------
    def request_instance(
        self,
        instance_type: str = "t2.micro",
        command: Optional[str] = None,
        spot: bool = False,
        spot_bid: Optional[float] = None,
    ) -> str:
        """Request one instance; returns its id. The instance boots asynchronously."""
        spec = self.instance_types.get(instance_type)
        if spec is None:
            raise SubmitException(self.name, f"unknown instance type {instance_type!r}")
        if spot and spot_bid is not None and spot_bid < spec.spot_price:
            raise SubmitException(
                self.name, f"spot bid {spot_bid} below the market price {spec.spot_price} for {instance_type}"
            )
        with self._lock:
            active = sum(1 for i in self._instances.values() if not i.state.terminal)
            if active >= self.capacity:
                raise SubmitException(self.name, f"capacity of {self.capacity} instances exhausted")
            self._counter += 1
            instance_id = f"i-{self.name}-{self._counter:06d}"
            self._instances[instance_id] = SimInstance(
                instance_id=instance_id, instance_type=spec, command=command, spot=spot
            )
        return instance_id

    def describe(self, instance_ids: Optional[List[str]] = None) -> Dict[str, InstanceState]:
        with self._lock:
            ids = instance_ids if instance_ids is not None else list(self._instances)
            return {iid: self._instances[iid].state for iid in ids if iid in self._instances}

    def get_instance(self, instance_id: str) -> Optional[SimInstance]:
        with self._lock:
            return self._instances.get(instance_id)

    def terminate(self, instance_ids: List[str]) -> None:
        with self._lock:
            for iid in instance_ids:
                inst = self._instances.get(iid)
                if inst is None or inst.state.terminal:
                    continue
                self._stop_instance(inst, InstanceState.TERMINATED)

    def active_count(self) -> int:
        with self._lock:
            return sum(1 for i in self._instances.values() if not i.state.terminal)

    def accumulated_cost(self) -> float:
        """Rough on-demand/spot cost of everything launched so far (USD)."""
        now = time.time()
        total = 0.0
        with self._lock:
            for inst in self._instances.values():
                if inst.ready_time is None:
                    continue
                end = inst.end_time or now
                hours = max(end - inst.ready_time, 0) / 3600.0
                rate = inst.instance_type.spot_price if inst.spot else inst.instance_type.hourly_price
                total += hours * rate
        return total

    # ------------------------------------------------------------------
    def _control_loop(self) -> None:
        while not self._stop.wait(0.05):
            now = time.time()
            with self._lock:
                for inst in self._instances.values():
                    if inst.state == InstanceState.PENDING and now - inst.request_time >= self.provisioning_delay_s:
                        self._boot_instance(inst)
                    elif inst.state == InstanceState.RUNNING:
                        if inst.process is not None and inst.process.poll() is not None:
                            inst.state = (
                                InstanceState.TERMINATED if inst.process.returncode == 0 else InstanceState.FAILED
                            )
                            inst.end_time = now
                        elif (
                            inst.spot
                            and self.preemption_rate_per_s > 0
                            and self._rng.random() < self.preemption_rate_per_s * 0.05
                        ):
                            self._stop_instance(inst, InstanceState.PREEMPTED)

    def _boot_instance(self, inst: SimInstance) -> None:
        inst.state = InstanceState.RUNNING
        inst.ready_time = time.time()
        if self.execute_instances and inst.command:
            out = open(os.path.join(self.working_dir, f"{inst.instance_id}.out"), "w")
            err = open(os.path.join(self.working_dir, f"{inst.instance_id}.err"), "w")
            inst.process = subprocess.Popen(
                inst.command, shell=True, stdout=out, stderr=err, start_new_session=True
            )

    def _stop_instance(self, inst: SimInstance, final_state: InstanceState) -> None:
        if inst.process is not None and inst.process.poll() is None:
            try:
                inst.process.terminate()
            except OSError:
                pass
        inst.state = final_state
        inst.end_time = time.time()

    def shutdown(self) -> None:
        self._stop.set()
        self._thread.join(timeout=5)
        with self._lock:
            for inst in self._instances.values():
                if not inst.state.terminal:
                    self._stop_instance(inst, InstanceState.TERMINATED)

    def __enter__(self) -> "CloudSim":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()
