"""A small batch-scheduler simulator.

The simulator models the aspects of an LRM that matter to Parsl's provider
and elasticity layers:

* a fixed pool of nodes divided into named partitions,
* per-partition limits on nodes per job and number of queued jobs,
* first-come-first-served scheduling with a configurable queue delay
  (the paper notes that "in an HPC setting, elasticity may be complicated by
  queue delays" — this is where that delay lives),
* walltime enforcement (jobs are killed when they exceed their request),
* job states PENDING → RUNNING → {COMPLETED, FAILED, CANCELLED, TIMEOUT},
* optional execution of the job script as a real local process, so that a
  Slurm-style configuration actually starts worker pools on this machine.

Submit scripts are accepted in several directive dialects (``#SBATCH``,
``#PBS``, ``#COBALT``, ``#$`` for SGE, plain key=value for HTCondor) so each
provider can generate its native script format.
"""

from __future__ import annotations

import enum
import os
import re
import subprocess
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import InsufficientResources, JobNotFoundError, SubmitException


def parse_walltime(walltime: str) -> float:
    """Parse an LRM walltime string into seconds.

    Accepts ``HH:MM:SS``, ``MM:SS``, ``DD-HH:MM:SS``, or a plain number of
    seconds.
    """
    walltime = str(walltime).strip()
    if re.fullmatch(r"\d+(\.\d+)?", walltime):
        return float(walltime)
    days = 0
    if "-" in walltime:
        day_part, walltime = walltime.split("-", 1)
        days = int(day_part)
    parts = [int(p) for p in walltime.split(":")]
    if len(parts) == 3:
        hours, minutes, seconds = parts
    elif len(parts) == 2:
        hours, minutes, seconds = 0, parts[0], parts[1]
    elif len(parts) == 1:
        hours, minutes, seconds = 0, 0, parts[0]
    else:
        raise ValueError(f"unparseable walltime: {walltime!r}")
    return days * 86400 + hours * 3600 + minutes * 60 + seconds


class SimJobState(enum.Enum):
    """States a simulated batch job can be in."""

    PENDING = "PENDING"
    RUNNING = "RUNNING"
    COMPLETED = "COMPLETED"
    FAILED = "FAILED"
    CANCELLED = "CANCELLED"
    TIMEOUT = "TIMEOUT"
    HELD = "HELD"

    @property
    def terminal(self) -> bool:
        return self in (
            SimJobState.COMPLETED,
            SimJobState.FAILED,
            SimJobState.CANCELLED,
            SimJobState.TIMEOUT,
        )


@dataclass
class PartitionSpec:
    """Static description of one partition (queue) of the simulated machine."""

    name: str
    total_nodes: int
    max_nodes_per_job: Optional[int] = None
    min_nodes_per_job: int = 1
    max_queued_jobs: Optional[int] = None
    queue_delay_s: float = 0.0
    cores_per_node: int = 8

    def __post_init__(self):
        if self.total_nodes < 1:
            raise ValueError("a partition needs at least one node")
        if self.max_nodes_per_job is None:
            self.max_nodes_per_job = self.total_nodes


@dataclass
class SimJob:
    """One job inside the simulator."""

    job_id: str
    script: str
    nodes: int
    walltime_s: float
    partition: str
    job_name: str = "repro-job"
    state: SimJobState = SimJobState.PENDING
    submit_time: float = field(default_factory=time.time)
    eligible_time: float = field(default_factory=time.time)
    start_time: Optional[float] = None
    end_time: Optional[float] = None
    exit_code: Optional[int] = None
    process: Optional[subprocess.Popen] = None
    script_path: Optional[str] = None

    @property
    def pending(self) -> bool:
        return self.state == SimJobState.PENDING

    @property
    def running(self) -> bool:
        return self.state == SimJobState.RUNNING


# Directive prefixes for the scheduler dialects we understand.
_DIRECTIVE_PREFIXES = {
    "slurm": "#SBATCH",
    "pbs": "#PBS",
    "torque": "#PBS",
    "cobalt": "#COBALT",
    "sge": "#$",
    "gridengine": "#$",
    "condor": "#CONDOR",
    "htcondor": "#CONDOR",
}


class BatchSchedulerSim:
    """An in-process batch scheduler."""

    def __init__(
        self,
        name: str = "sim-cluster",
        partitions: Optional[List[PartitionSpec]] = None,
        execute_jobs: bool = True,
        poll_interval: float = 0.05,
        working_dir: Optional[str] = None,
    ):
        self.name = name
        parts = partitions or [PartitionSpec(name="default", total_nodes=8)]
        self.partitions: Dict[str, PartitionSpec] = {p.name: p for p in parts}
        self.execute_jobs = execute_jobs
        self.poll_interval = poll_interval
        self.working_dir = working_dir or os.path.join(os.getcwd(), f".{name}-lrm")
        os.makedirs(self.working_dir, exist_ok=True)
        self._jobs: Dict[str, SimJob] = {}
        self._job_counter = 0
        self._lock = threading.RLock()
        self._stop = threading.Event()
        self._scheduler_thread = threading.Thread(
            target=self._scheduler_loop, name=f"{name}-scheduler", daemon=True
        )
        self._scheduler_thread.start()

    # ------------------------------------------------------------------
    # Submission interfaces
    # ------------------------------------------------------------------
    def submit(
        self,
        script: str,
        nodes: int,
        walltime: str = "00:30:00",
        partition: Optional[str] = None,
        job_name: str = "repro-job",
    ) -> str:
        """Submit a job directly (programmatic interface)."""
        partition = partition or next(iter(self.partitions))
        spec = self.partitions.get(partition)
        if spec is None:
            raise SubmitException(self.name, f"unknown partition {partition!r}")
        if nodes > spec.total_nodes:
            raise InsufficientResources(
                f"job requests {nodes} nodes but partition {partition!r} has only {spec.total_nodes}"
            )
        if nodes > spec.max_nodes_per_job:
            raise SubmitException(
                self.name, f"job requests {nodes} nodes, above the per-job limit of {spec.max_nodes_per_job}"
            )
        if nodes < spec.min_nodes_per_job:
            raise SubmitException(
                self.name, f"job requests {nodes} nodes, below the per-job minimum of {spec.min_nodes_per_job}"
            )
        with self._lock:
            if spec.max_queued_jobs is not None:
                queued = sum(
                    1 for j in self._jobs.values() if j.partition == partition and not j.state.terminal
                )
                if queued >= spec.max_queued_jobs:
                    raise SubmitException(
                        self.name,
                        f"partition {partition!r} already has {queued} queued/running jobs "
                        f"(limit {spec.max_queued_jobs})",
                    )
            self._job_counter += 1
            job_id = f"{self.name}.{self._job_counter}"
            now = time.time()
            job = SimJob(
                job_id=job_id,
                script=script,
                nodes=nodes,
                walltime_s=parse_walltime(walltime),
                partition=partition,
                job_name=job_name,
                submit_time=now,
                eligible_time=now + spec.queue_delay_s,
            )
            self._jobs[job_id] = job
        return job_id

    def submit_script(self, script_text: str, dialect: str = "slurm") -> str:
        """Submit a script whose resource request is encoded in directives.

        This is the interface the cluster providers use: they generate a
        native submit script (exactly as they would for the real scheduler)
        and the simulator parses the directives back out.
        """
        prefix = _DIRECTIVE_PREFIXES.get(dialect.lower())
        if prefix is None:
            raise SubmitException(self.name, f"unknown scheduler dialect {dialect!r}")
        options = self._parse_directives(script_text, prefix)
        nodes = int(options.get("nodes", 1))
        walltime = options.get("walltime", "00:30:00")
        partition = options.get("partition") or next(iter(self.partitions))
        job_name = options.get("job-name", "repro-job")
        return self.submit(script_text, nodes=nodes, walltime=walltime, partition=partition, job_name=job_name)

    @staticmethod
    def _parse_directives(script_text: str, prefix: str) -> Dict[str, str]:
        """Extract normalized resource options from scheduler directives."""
        options: Dict[str, str] = {}
        for line in script_text.splitlines():
            line = line.strip()
            if not line.startswith(prefix):
                continue
            body = line[len(prefix):].strip()
            # Normalize the many spellings into a canonical key set.
            for pattern, key in [
                (r"--nodes[=\s]+(\d+)", "nodes"),
                (r"--nodecount[=\s]+(\d+)", "nodes"),
                (r"-N\s+(\d+)\s*$", "nodes"),
                (r"-l\s+nodes=(\d+)", "nodes"),
                (r"nodecount\s*=\s*(\d+)", "nodes"),
                (r"--time[=\s]+(\S+)", "walltime"),
                (r"-t\s+(\S+)", "walltime"),
                (r"-l\s+walltime=(\S+)", "walltime"),
                (r"(?<![-\w])walltime\s*=\s*(\S+)", "walltime"),
                (r"--partition[=\s]+(\S+)", "partition"),
                (r"-p\s+(\S+)", "partition"),
                (r"-q\s+(\S+)", "partition"),
                (r"queue\s*=\s*(\S+)", "partition"),
                (r"--job-name[=\s]+(\S+)", "job-name"),
                (r"-J\s+(\S+)", "job-name"),
                (r"jobname\s*=\s*(\S+)", "job-name"),
            ]:
                m = re.search(pattern, body)
                if m and key not in options:
                    options[key] = m.group(1)
        return options

    # ------------------------------------------------------------------
    # Queries and control
    # ------------------------------------------------------------------
    def status(self, job_ids: List[str]) -> Dict[str, SimJobState]:
        """Return the state of each requested job."""
        with self._lock:
            result = {}
            for job_id in job_ids:
                job = self._jobs.get(job_id)
                if job is None:
                    raise JobNotFoundError(f"unknown job id {job_id!r}")
                result[job_id] = job.state
            return result

    def get_job(self, job_id: str) -> SimJob:
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                raise JobNotFoundError(f"unknown job id {job_id!r}")
            return job

    def cancel(self, job_ids: List[str]) -> List[bool]:
        """Cancel jobs; returns one bool per job indicating whether it was cancellable."""
        results = []
        with self._lock:
            for job_id in job_ids:
                job = self._jobs.get(job_id)
                if job is None or job.state.terminal:
                    results.append(False)
                    continue
                self._terminate_job(job, SimJobState.CANCELLED)
                results.append(True)
        return results

    def hold(self, job_id: str) -> None:
        """Hold a pending job (it will not be scheduled until released)."""
        with self._lock:
            job = self.get_job(job_id)
            if job.state == SimJobState.PENDING:
                job.state = SimJobState.HELD

    def release(self, job_id: str) -> None:
        with self._lock:
            job = self.get_job(job_id)
            if job.state == SimJobState.HELD:
                job.state = SimJobState.PENDING

    def nodes_in_use(self, partition: Optional[str] = None) -> int:
        with self._lock:
            return sum(
                j.nodes
                for j in self._jobs.values()
                if j.running and (partition is None or j.partition == partition)
            )

    def free_nodes(self, partition: str) -> int:
        spec = self.partitions[partition]
        return spec.total_nodes - self.nodes_in_use(partition)

    def queued_jobs(self, partition: Optional[str] = None) -> List[SimJob]:
        with self._lock:
            return [
                j
                for j in self._jobs.values()
                if j.pending and (partition is None or j.partition == partition)
            ]

    def all_jobs(self) -> List[SimJob]:
        with self._lock:
            return list(self._jobs.values())

    # ------------------------------------------------------------------
    # Scheduling loop
    # ------------------------------------------------------------------
    def _scheduler_loop(self) -> None:
        while not self._stop.wait(self.poll_interval):
            try:
                self._sweep()
            except Exception:  # noqa: BLE001 - scheduler must keep running
                pass

    def _sweep(self) -> None:
        now = time.time()
        with self._lock:
            # 1. Progress running jobs: completion and walltime enforcement.
            for job in self._jobs.values():
                if not job.running:
                    continue
                if job.process is not None:
                    rc = job.process.poll()
                    if rc is not None:
                        job.exit_code = rc
                        job.end_time = now
                        job.state = SimJobState.COMPLETED if rc == 0 else SimJobState.FAILED
                        continue
                if job.start_time is not None and now - job.start_time > job.walltime_s:
                    self._terminate_job(job, SimJobState.TIMEOUT)
            # 2. Start pending jobs FCFS per partition.
            pending = sorted(
                (j for j in self._jobs.values() if j.pending and j.eligible_time <= now),
                key=lambda j: j.submit_time,
            )
            for job in pending:
                if self.free_nodes(job.partition) >= job.nodes:
                    self._start_job(job)

    def _start_job(self, job: SimJob) -> None:
        job.state = SimJobState.RUNNING
        job.start_time = time.time()
        if self.execute_jobs:
            script_path = os.path.join(self.working_dir, f"{job.job_id}.sh")
            with open(script_path, "w") as fh:
                fh.write(job.script)
            os.chmod(script_path, 0o755)
            job.script_path = script_path
            job.process = subprocess.Popen(
                ["/bin/sh", script_path],
                stdout=open(os.path.join(self.working_dir, f"{job.job_id}.out"), "w"),
                stderr=open(os.path.join(self.working_dir, f"{job.job_id}.err"), "w"),
                start_new_session=True,
            )

    def _terminate_job(self, job: SimJob, final_state: SimJobState) -> None:
        if job.process is not None and job.process.poll() is None:
            try:
                job.process.terminate()
            except OSError:
                pass
        job.state = final_state
        job.end_time = time.time()

    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        """Stop the scheduler thread and kill every running job."""
        self._stop.set()
        self._scheduler_thread.join(timeout=5)
        with self._lock:
            for job in self._jobs.values():
                if job.running:
                    self._terminate_job(job, SimJobState.CANCELLED)

    def __enter__(self) -> "BatchSchedulerSim":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


# ---------------------------------------------------------------------------
# Named cluster registry: providers refer to clusters by name so a config can
# say "submit to midway" without having to thread simulator objects around.
# ---------------------------------------------------------------------------

_CLUSTERS: Dict[str, BatchSchedulerSim] = {}
_CLUSTERS_LOCK = threading.Lock()


def register_cluster(sim: BatchSchedulerSim) -> BatchSchedulerSim:
    """Register a simulator under its name, replacing any previous one."""
    with _CLUSTERS_LOCK:
        old = _CLUSTERS.get(sim.name)
        if old is not None and old is not sim:
            old.shutdown()
        _CLUSTERS[sim.name] = sim
    return sim


def get_cluster(name: str = "default", **kwargs) -> BatchSchedulerSim:
    """Fetch (or lazily create) a named cluster simulator."""
    with _CLUSTERS_LOCK:
        sim = _CLUSTERS.get(name)
        if sim is None:
            sim = BatchSchedulerSim(name=name, **kwargs)
            _CLUSTERS[name] = sim
        return sim


def reset_clusters() -> None:
    """Shut down and forget every registered cluster (used by tests)."""
    with _CLUSTERS_LOCK:
        for sim in _CLUSTERS.values():
            sim.shutdown()
        _CLUSTERS.clear()
