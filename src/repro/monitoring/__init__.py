"""Monitoring (§4.6): task state transitions, resource usage, and run metadata."""

from repro.monitoring.messages import MessageType, MonitoringMessage
from repro.monitoring.hub import MonitoringHub
from repro.monitoring.db import SQLiteStore, InMemoryStore
from repro.monitoring.report import (
    critical_path,
    format_summary_text,
    span_timeline,
    task_state_timeline,
    workflow_summary,
)

__all__ = [
    "MessageType",
    "MonitoringMessage",
    "MonitoringHub",
    "SQLiteStore",
    "InMemoryStore",
    "workflow_summary",
    "task_state_timeline",
    "span_timeline",
    "critical_path",
    "format_summary_text",
]
