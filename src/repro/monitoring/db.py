"""Monitoring stores.

The paper's modular DFK interface allows monitoring information to be stored
in a SQL database, Elasticsearch, or files. We provide two concrete stores
behind one interface: an in-memory store (fast, used by default and by
tests) and a SQLite store (durable, queryable with SQL after the run).
"""

from __future__ import annotations

import json
import logging
import os
import sqlite3
import threading
from abc import ABC, abstractmethod
from typing import Any, Dict, List, Optional, Sequence

from repro.monitoring.messages import MessageType, MonitoringMessage

logger = logging.getLogger(__name__)


class MonitoringStore(ABC):
    """Interface every monitoring store implements."""

    @abstractmethod
    def insert(self, message: MonitoringMessage) -> None:
        """Persist one monitoring record."""

    def insert_many(self, messages: Sequence[MonitoringMessage]) -> None:
        """Persist a batch of records in order.

        Stores with a bulk write primitive (SQLite ``executemany``) override
        this; the default loops over :meth:`insert`.
        """
        for message in messages:
            self.insert(message)

    @abstractmethod
    def query(self, message_type: Optional[MessageType] = None, **filters) -> List[Dict[str, Any]]:
        """Return records matching the type and payload equality filters."""

    def close(self) -> None:
        return None


class InMemoryStore(MonitoringStore):
    """Keep monitoring rows in a list (the default store)."""

    def __init__(self):
        self._rows: List[Dict[str, Any]] = []
        self._lock = threading.Lock()

    def insert(self, message: MonitoringMessage) -> None:
        with self._lock:
            self._rows.append(message.as_row())

    def insert_many(self, messages: Sequence[MonitoringMessage]) -> None:
        with self._lock:
            self._rows.extend(message.as_row() for message in messages)

    def query(self, message_type: Optional[MessageType] = None, **filters) -> List[Dict[str, Any]]:
        with self._lock:
            rows = list(self._rows)
        if message_type is not None:
            rows = [r for r in rows if r.get("message_type") == message_type.value]
        for key, value in filters.items():
            rows = [r for r in rows if r.get(key) == value]
        return rows

    def __len__(self) -> int:
        with self._lock:
            return len(self._rows)


class SQLiteStore(MonitoringStore):
    """Store monitoring rows in a SQLite database file.

    Rows are stored in one table per message type with a fixed set of indexed
    columns (run_id, task_id, state) plus the full payload as JSON, which
    keeps the schema stable while allowing arbitrary payload fields.
    """

    _TABLES = {
        MessageType.WORKFLOW_INFO: "workflow",
        MessageType.TASK_INFO: "task",
        MessageType.TASK_STATE: "status",
        MessageType.TASK_SPAN: "task_spans",
        MessageType.RESOURCE_INFO: "resource",
        MessageType.NODE_INFO: "node",
        MessageType.BLOCK_INFO: "block",
    }

    def __init__(self, db_path: str = "monitoring.db"):
        self.db_path = db_path
        dirname = os.path.dirname(os.path.abspath(db_path))
        os.makedirs(dirname, exist_ok=True)
        self._lock = threading.Lock()
        self._conn = sqlite3.connect(self.db_path, check_same_thread=False)
        self._create_tables()

    def _create_tables(self) -> None:
        with self._lock, self._conn:
            for table in self._TABLES.values():
                self._conn.execute(
                    f"""CREATE TABLE IF NOT EXISTS {table} (
                            id INTEGER PRIMARY KEY AUTOINCREMENT,
                            run_id TEXT,
                            task_id INTEGER,
                            state TEXT,
                            timestamp REAL,
                            payload TEXT
                        )"""
                )
                self._conn.execute(f"CREATE INDEX IF NOT EXISTS idx_{table}_run ON {table} (run_id)")
                self._conn.execute(f"CREATE INDEX IF NOT EXISTS idx_{table}_task ON {table} (task_id)")

    @staticmethod
    def _row_params(message: MonitoringMessage):
        payload = message.payload
        return (
            payload.get("run_id"),
            payload.get("task_id"),
            payload.get("state"),
            message.timestamp,
            json.dumps(payload, default=str),
        )

    def insert(self, message: MonitoringMessage) -> None:
        table = self._TABLES[message.message_type]
        with self._lock, self._conn:
            self._conn.execute(
                f"INSERT INTO {table} (run_id, task_id, state, timestamp, payload) VALUES (?, ?, ?, ?, ?)",
                self._row_params(message),
            )

    def insert_many(self, messages: Sequence[MonitoringMessage]) -> None:
        """Bulk insert: one transaction, one ``executemany`` per table.

        Grouping preserves in-order persistence per table, which is all the
        reports rely on (rows are re-sorted by timestamp when queried). If
        the batched transaction fails (e.g. the database is locked), fall
        back to per-message inserts so one bad moment costs at most single
        rows — matching the pre-batching blast radius.
        """
        if not messages:
            return
        grouped: Dict[str, List[tuple]] = {}
        for message in messages:
            grouped.setdefault(self._TABLES[message.message_type], []).append(
                self._row_params(message)
            )
        try:
            with self._lock, self._conn:
                for table, params in grouped.items():
                    self._conn.executemany(
                        f"INSERT INTO {table} (run_id, task_id, state, timestamp, payload) VALUES (?, ?, ?, ?, ?)",
                        params,
                    )
        except sqlite3.Error:
            logger.exception("batched monitoring insert failed; retrying row by row")
            for message in messages:
                try:
                    self.insert(message)
                except sqlite3.Error:
                    logger.exception("dropped one monitoring row (%s)", message.message_type)

    def query(self, message_type: Optional[MessageType] = None, **filters) -> List[Dict[str, Any]]:
        tables = [self._TABLES[message_type]] if message_type else list(self._TABLES.values())
        rows: List[Dict[str, Any]] = []
        with self._lock:
            for table, mtype in [(t, mt) for mt, t in self._TABLES.items() if t in tables]:
                cursor = self._conn.execute(f"SELECT run_id, task_id, state, timestamp, payload FROM {table}")
                for run_id, task_id, state, timestamp, payload in cursor.fetchall():
                    row = json.loads(payload)
                    row.update({"message_type": mtype.value, "timestamp": timestamp})
                    rows.append(row)
        for key, value in filters.items():
            rows = [r for r in rows if r.get(key) == value]
        return rows

    def close(self) -> None:
        with self._lock:
            self._conn.close()
