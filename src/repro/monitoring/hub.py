"""The MonitoringHub: an asynchronous router from components to the store.

Components (the DFK, executors, the strategy) call ``send`` with a message;
a background thread drains the queue into the configured store so that
monitoring never blocks the task-launch path.
"""

from __future__ import annotations

import logging
import queue
import threading
from typing import Any, Dict, List, Optional

from repro.monitoring.db import InMemoryStore, MonitoringStore, SQLiteStore
from repro.monitoring.messages import MessageType, MonitoringMessage

logger = logging.getLogger(__name__)


class MonitoringHub:
    """Collect and persist monitoring messages for one workflow run."""

    def __init__(
        self,
        store: Optional[MonitoringStore] = None,
        db_path: Optional[str] = None,
        resource_monitoring_enabled: bool = True,
        flush_timeout: float = 5.0,
    ):
        if store is not None:
            self.store = store
        elif db_path is not None:
            self.store = SQLiteStore(db_path)
        else:
            self.store = InMemoryStore()
        self.resource_monitoring_enabled = resource_monitoring_enabled
        self.flush_timeout = flush_timeout
        self._queue: "queue.Queue[Optional[MonitoringMessage]]" = queue.Queue()
        self._thread = threading.Thread(target=self._drain, name="monitoring-hub", daemon=True)
        self._started = False
        self._closed = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        if not self._started:
            self._started = True
            self._thread.start()

    def send(self, message_type: MessageType, payload: Dict[str, Any]) -> None:
        """Queue one monitoring record (no-op after close)."""
        if self._closed:
            return
        if message_type == MessageType.RESOURCE_INFO and not self.resource_monitoring_enabled:
            return
        self._queue.put(MonitoringMessage(message_type, dict(payload)))

    def _drain(self) -> None:
        while True:
            message = self._queue.get()
            if message is None:
                break
            try:
                self.store.insert(message)
            except Exception:  # noqa: BLE001 - monitoring must never kill the run
                logger.exception("failed to store monitoring message")

    # ------------------------------------------------------------------
    def query(self, message_type: Optional[MessageType] = None, **filters) -> List[Dict[str, Any]]:
        return self.store.query(message_type, **filters)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._started:
            self._queue.put(None)
            self._thread.join(timeout=self.flush_timeout)
        self.store.close()

    def __enter__(self) -> "MonitoringHub":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.close()
