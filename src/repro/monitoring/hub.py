"""The MonitoringHub: an asynchronous router from components to the store.

Components (the DFK, executors, the strategy) call ``send`` with a message;
a background thread drains the queue into the configured store so that
monitoring never blocks the task-launch path.

TASK_STATE traffic — a task's ~3 lifecycle transitions, by far the highest
message volume — is *coalesced*: sends append to a bounded buffer that is
flushed to the queue as one batch when it reaches ``batch_size`` messages
or ``batch_flush_interval`` seconds of age, whichever comes first. The
drain thread hands whole batches to the store's ``insert_many`` (SQLite:
one ``executemany`` transaction), so a state transition costs an amortized
fraction of a queue operation and a store write. Low-volume message types
(workflow, block, node events) first flush the buffer — preserving global
ordering — then travel individually. ``batch_size=1`` disables coalescing.
"""

from __future__ import annotations

import logging
import queue
import threading
from typing import Any, Dict, List, Optional, Union

from repro.monitoring.db import InMemoryStore, MonitoringStore, SQLiteStore
from repro.monitoring.messages import MessageType, MonitoringMessage
from repro.utils.timers import RepeatedTimer

logger = logging.getLogger(__name__)

#: Message types coalesced into batches (high-volume, per-task traffic).
_BATCHED_TYPES = frozenset(
    {MessageType.TASK_STATE, MessageType.TASK_SPAN, MessageType.RESOURCE_INFO}
)


class MonitoringHub:
    """Collect and persist monitoring messages for one workflow run."""

    def __init__(
        self,
        store: Optional[MonitoringStore] = None,
        db_path: Optional[str] = None,
        resource_monitoring_enabled: bool = True,
        flush_timeout: float = 5.0,
        batch_size: int = 64,
        batch_flush_interval: float = 0.05,
    ):
        if store is not None:
            self.store = store
        elif db_path is not None:
            self.store = SQLiteStore(db_path)
        else:
            self.store = InMemoryStore()
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if batch_flush_interval <= 0:
            raise ValueError("batch_flush_interval must be positive")
        self.resource_monitoring_enabled = resource_monitoring_enabled
        self.flush_timeout = flush_timeout
        self.batch_size = batch_size
        self.batch_flush_interval = batch_flush_interval
        self._queue: "queue.Queue[Union[None, MonitoringMessage, List[MonitoringMessage]]]" = queue.Queue()
        self._thread = threading.Thread(target=self._drain, name="monitoring-hub", daemon=True)
        self._batch: List[MonitoringMessage] = []
        self._batch_lock = threading.Lock()
        #: Hub-order sequence stamped into every payload (under _batch_lock,
        #: so it is a total order consistent with send order). Reports sort
        #: by (timestamp, seq): two transitions landing within one clock
        #: tick can never reorder in a timeline.
        self._seq = 0
        self._flush_timer: Optional[RepeatedTimer] = None
        self._started = False
        self._closed = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        if not self._started:
            self._started = True
            self._thread.start()
            if self.batch_size > 1:
                self._flush_timer = RepeatedTimer(
                    self.batch_flush_interval, self._flush_batch, name="monitoring-flush"
                )
                self._flush_timer.start()

    def send(self, message_type: MessageType, payload: Dict[str, Any]) -> None:
        """Queue one monitoring record (no-op after close)."""
        if self._closed:
            return
        if message_type == MessageType.RESOURCE_INFO and not self.resource_monitoring_enabled:
            return
        message = MonitoringMessage(message_type, dict(payload))
        # Every queue put happens under _batch_lock, so the drain queue sees
        # a total order consistent with send order (an unbatched message can
        # never overtake — or be overtaken by — states buffered before it).
        if message_type in _BATCHED_TYPES and self.batch_size > 1:
            with self._batch_lock:
                message.payload["seq"] = self._seq
                self._seq += 1
                self._batch.append(message)
                if len(self._batch) >= self.batch_size:
                    self._flush_batch_locked()
        else:
            # Low-volume types: flush pending state batches first so the
            # store sees events in global send order, then go direct.
            with self._batch_lock:
                message.payload["seq"] = self._seq
                self._seq += 1
                self._flush_batch_locked()
                self._queue.put(message)

    def _flush_batch(self) -> None:
        """Push any buffered high-volume messages to the drain queue."""
        with self._batch_lock:
            self._flush_batch_locked()

    def _flush_batch_locked(self) -> None:
        if self._batch:
            pending, self._batch = self._batch, []
            self._queue.put(pending)

    def _drain(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                break
            messages = item if isinstance(item, list) else [item]
            try:
                self.store.insert_many(messages)
            except Exception:  # noqa: BLE001 - monitoring must never kill the run
                logger.exception("failed to store %d monitoring message(s)", len(messages))
            finally:
                del item, messages  # don't pin the batch while blocked on get()

    # ------------------------------------------------------------------
    def query(self, message_type: Optional[MessageType] = None, **filters) -> List[Dict[str, Any]]:
        return self.store.query(message_type, **filters)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._flush_timer is not None:
            self._flush_timer.close()
        if self._started:
            self._flush_batch()
            self._queue.put(None)
            self._thread.join(timeout=self.flush_timeout)
        self.store.close()

    def __enter__(self) -> "MonitoringHub":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.close()
