"""Monitoring message types.

The DFK logs execution metadata and task state transitions; workers log task
execution information including resource usage. Each record is a
:class:`MonitoringMessage` routed to the configured store.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import Any, Dict


class MessageType(enum.Enum):
    WORKFLOW_INFO = "workflow_info"
    TASK_INFO = "task_info"
    TASK_STATE = "task_state"
    TASK_SPAN = "task_span"
    RESOURCE_INFO = "resource_info"
    NODE_INFO = "node_info"
    BLOCK_INFO = "block_info"


@dataclass
class MonitoringMessage:
    """One monitoring record."""

    message_type: MessageType
    payload: Dict[str, Any]
    timestamp: float = field(default_factory=time.time)

    def as_row(self) -> Dict[str, Any]:
        row = dict(self.payload)
        row["message_type"] = self.message_type.value
        row["timestamp"] = self.timestamp
        return row
