"""Post-run monitoring reports.

The upstream project ships a web visualization; this reproduction provides
the same information as queryable dicts and a formatted text report: per-task
state timelines, per-state counts, makespan, and resource usage summaries.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Dict, List, Optional

from repro.monitoring.hub import MonitoringHub
from repro.monitoring.messages import MessageType


def _order_key(event: Dict[str, Any]):
    """Sort key for timeline rows: (timestamp, hub seq).

    Timestamps alone are not a total order — two transitions landing within
    one clock tick (common for instant states like ``launched``->``running``
    on a fast executor) used to sort arbitrarily. The hub stamps a
    send-order ``seq`` into every batched payload; rows predating the seq
    column (old databases) sort as seq -1, preserving their old behaviour.
    """
    seq = event.get("seq")
    return (event["timestamp"], -1 if seq is None else seq)


def task_state_timeline(hub: MonitoringHub, run_id: Optional[str] = None) -> Dict[int, List[Dict[str, Any]]]:
    """Per-task ordered list of (state, timestamp) transitions."""
    rows = hub.query(MessageType.TASK_STATE)
    if run_id is not None:
        rows = [r for r in rows if r.get("run_id") == run_id]
    timeline: Dict[int, List[Dict[str, Any]]] = defaultdict(list)
    for row in rows:
        timeline[row["task_id"]].append(
            {"state": row["state"], "timestamp": row["timestamp"], "seq": row.get("seq")}
        )
    for events in timeline.values():
        events.sort(key=_order_key)
    return dict(timeline)


def span_timeline(hub: MonitoringHub, run_id: Optional[str] = None,
                  task_id: Optional[int] = None,
                  trace_id: Optional[str] = None) -> Dict[str, Dict[int, List[Dict[str, Any]]]]:
    """Per-trace, per-attempt ordered span events from the task_spans table.

    Returns ``{trace_id: {attempt: [event, ...]}}`` where each event dict
    carries ``event`` (hop name), ``t`` (wall time stamped *at the hop*, not
    at flush), ``task_id``, and ``seq``. Events within an attempt are
    ordered by (t, seq). ``hub`` may be a :class:`MonitoringHub` or any
    store with the same ``query`` signature (e.g. a SQLiteStore opened on a
    finished run's database).
    """
    rows = hub.query(MessageType.TASK_SPAN)
    if run_id is not None:
        rows = [r for r in rows if r.get("run_id") == run_id]
    if task_id is not None:
        rows = [r for r in rows if r.get("task_id") == task_id]
    if trace_id is not None:
        rows = [r for r in rows if r.get("trace_id") == trace_id]
    traces: Dict[str, Dict[int, List[Dict[str, Any]]]] = defaultdict(lambda: defaultdict(list))
    for row in rows:
        traces[row["trace_id"]][int(row.get("attempt") or 1)].append(
            {
                "event": row["state"],
                "t": row.get("t", row["timestamp"]),
                "task_id": row.get("task_id"),
                "seq": row.get("seq"),
            }
        )
    out: Dict[str, Dict[int, List[Dict[str, Any]]]] = {}
    for tid, attempts in traces.items():
        out[tid] = {}
        for attempt, events in attempts.items():
            events.sort(key=lambda e: (e["t"], -1 if e.get("seq") is None else e["seq"]))
            out[tid][attempt] = events
    return out


def critical_path(hub: MonitoringHub, trace_id: str,
                  run_id: Optional[str] = None) -> List[Dict[str, Any]]:
    """Where one trace's latency went: per-hop durations, final attempt.

    Returns ordered segments ``{"from": hop, "to": hop, "duration_s": ...}``
    computed between consecutive span events of the trace's last attempt —
    the attempt that actually produced the delivered result — plus a
    leading segment per earlier attempt summarizing the time it burned.
    """
    attempts = span_timeline(hub, run_id=run_id, trace_id=trace_id).get(trace_id)
    if not attempts:
        return []
    segments: List[Dict[str, Any]] = []
    last_attempt = max(attempts)
    for attempt in sorted(attempts):
        events = attempts[attempt]
        if attempt != last_attempt:
            if events:
                segments.append(
                    {
                        "from": events[0]["event"],
                        "to": events[-1]["event"],
                        "duration_s": events[-1]["t"] - events[0]["t"],
                        "attempt": attempt,
                        "retried": True,
                    }
                )
            continue
        for prev, nxt in zip(events, events[1:]):
            segments.append(
                {
                    "from": prev["event"],
                    "to": nxt["event"],
                    "duration_s": nxt["t"] - prev["t"],
                    "attempt": attempt,
                    "retried": False,
                }
            )
    return segments


def workflow_summary(hub: MonitoringHub, run_id: Optional[str] = None) -> Dict[str, Any]:
    """Aggregate statistics for one run."""
    timeline = task_state_timeline(hub, run_id)
    state_counts: Dict[str, int] = defaultdict(int)
    first_ts, last_ts = None, None
    exec_durations = []
    for events in timeline.values():
        if not events:
            continue
        final_state = events[-1]["state"]
        state_counts[final_state] += 1
        start = events[0]["timestamp"]
        end = events[-1]["timestamp"]
        first_ts = start if first_ts is None else min(first_ts, start)
        last_ts = end if last_ts is None else max(last_ts, end)
        running = [e["timestamp"] for e in events if e["state"] == "running"]
        done = [e["timestamp"] for e in events if e["state"] in ("exec_done", "done")]
        if running and done:
            exec_durations.append(done[-1] - running[0])
    resources = hub.query(MessageType.RESOURCE_INFO)
    if run_id is not None:
        resources = [r for r in resources if r.get("run_id") == run_id]
    summary = {
        "tasks": len(timeline),
        "final_state_counts": dict(state_counts),
        "makespan_s": (last_ts - first_ts) if first_ts is not None and last_ts is not None else 0.0,
        "mean_task_execution_s": (sum(exec_durations) / len(exec_durations)) if exec_durations else 0.0,
        "resource_records": len(resources),
    }
    if resources:
        cpu = [r.get("psutil_process_time_user", 0.0) for r in resources]
        mem = [r.get("psutil_process_memory_resident_kb", 0.0) for r in resources]
        summary["total_cpu_user_s"] = float(sum(cpu))
        summary["peak_memory_kb"] = float(max(mem))
    return summary


def format_summary_text(hub: MonitoringHub, run_id: Optional[str] = None) -> str:
    """Human-readable run report."""
    summary = workflow_summary(hub, run_id)
    lines = [
        "Workflow summary",
        "----------------",
        f"tasks:                 {summary['tasks']}",
        f"makespan:              {summary['makespan_s']:.3f} s",
        f"mean task execution:   {summary['mean_task_execution_s']:.3f} s",
    ]
    for state, count in sorted(summary["final_state_counts"].items()):
        lines.append(f"  final state {state:<12} {count}")
    if "total_cpu_user_s" in summary:
        lines.append(f"total user CPU:        {summary['total_cpu_user_s']:.3f} s")
        lines.append(f"peak worker memory:    {summary['peak_memory_kb']:.0f} kB")
    return "\n".join(lines)
