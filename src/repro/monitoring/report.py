"""Post-run monitoring reports.

The upstream project ships a web visualization; this reproduction provides
the same information as queryable dicts and a formatted text report: per-task
state timelines, per-state counts, makespan, and resource usage summaries.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Dict, List, Optional

from repro.monitoring.hub import MonitoringHub
from repro.monitoring.messages import MessageType


def task_state_timeline(hub: MonitoringHub, run_id: Optional[str] = None) -> Dict[int, List[Dict[str, Any]]]:
    """Per-task ordered list of (state, timestamp) transitions."""
    rows = hub.query(MessageType.TASK_STATE)
    if run_id is not None:
        rows = [r for r in rows if r.get("run_id") == run_id]
    timeline: Dict[int, List[Dict[str, Any]]] = defaultdict(list)
    for row in rows:
        timeline[row["task_id"]].append({"state": row["state"], "timestamp": row["timestamp"]})
    for events in timeline.values():
        events.sort(key=lambda e: e["timestamp"])
    return dict(timeline)


def workflow_summary(hub: MonitoringHub, run_id: Optional[str] = None) -> Dict[str, Any]:
    """Aggregate statistics for one run."""
    timeline = task_state_timeline(hub, run_id)
    state_counts: Dict[str, int] = defaultdict(int)
    first_ts, last_ts = None, None
    exec_durations = []
    for events in timeline.values():
        if not events:
            continue
        final_state = events[-1]["state"]
        state_counts[final_state] += 1
        start = events[0]["timestamp"]
        end = events[-1]["timestamp"]
        first_ts = start if first_ts is None else min(first_ts, start)
        last_ts = end if last_ts is None else max(last_ts, end)
        running = [e["timestamp"] for e in events if e["state"] == "running"]
        done = [e["timestamp"] for e in events if e["state"] in ("exec_done", "done")]
        if running and done:
            exec_durations.append(done[-1] - running[0])
    resources = hub.query(MessageType.RESOURCE_INFO)
    if run_id is not None:
        resources = [r for r in resources if r.get("run_id") == run_id]
    summary = {
        "tasks": len(timeline),
        "final_state_counts": dict(state_counts),
        "makespan_s": (last_ts - first_ts) if first_ts is not None and last_ts is not None else 0.0,
        "mean_task_execution_s": (sum(exec_durations) / len(exec_durations)) if exec_durations else 0.0,
        "resource_records": len(resources),
    }
    if resources:
        cpu = [r.get("psutil_process_time_user", 0.0) for r in resources]
        mem = [r.get("psutil_process_memory_resident_kb", 0.0) for r in resources]
        summary["total_cpu_user_s"] = float(sum(cpu))
        summary["peak_memory_kb"] = float(max(mem))
    return summary


def format_summary_text(hub: MonitoringHub, run_id: Optional[str] = None) -> str:
    """Human-readable run report."""
    summary = workflow_summary(hub, run_id)
    lines = [
        "Workflow summary",
        "----------------",
        f"tasks:                 {summary['tasks']}",
        f"makespan:              {summary['makespan_s']:.3f} s",
        f"mean task execution:   {summary['mean_task_execution_s']:.3f} s",
    ]
    for state, count in sorted(summary["final_state_counts"].items()):
        lines.append(f"  final state {state:<12} {count}")
    if "total_cpu_user_s" in summary:
        lines.append(f"total user CPU:        {summary['total_cpu_user_s']:.3f} s")
        lines.append(f"peak worker memory:    {summary['peak_memory_kb']:.0f} kB")
    return "\n".join(lines)
