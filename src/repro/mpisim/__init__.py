"""Simulated MPI layer.

The paper's Extreme Scale Executor (EXEX, §4.3.2) uses mpi4py on Cray systems:
rank 0 of an MPI job acts as the manager and distributes tasks to the other
ranks (workers) over MPI point-to-point messages. Real MPI is not available in
this reproduction environment, so this package provides an MPI-like
communicator with the subset of the API EXEX needs:

* ``rank`` / ``size``
* blocking ``send`` / ``recv`` with source and tag selection (including
  ``ANY_SOURCE`` / ``ANY_TAG``)
* ``bcast``, ``scatter``, ``gather`` rooted collectives
* ``barrier``
* ``abort`` — terminating one rank kills the whole job, reproducing the
  fault-tolerance weakness of MPI-based many-task execution discussed in the
  paper.

Two backends exist: a thread backend (fast, used in unit tests and for
in-process EXEX deployments) and a process backend (used for real multi-core
execution).
"""

from repro.mpisim.communicator import SimComm, ANY_SOURCE, ANY_TAG, MPIAbort
from repro.mpisim.launcher import launch_threads, launch_processes, MPIJob

__all__ = [
    "SimComm",
    "ANY_SOURCE",
    "ANY_TAG",
    "MPIAbort",
    "launch_threads",
    "launch_processes",
    "MPIJob",
]
