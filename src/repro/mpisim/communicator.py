"""MPI-like communicator over shared queues.

Each rank owns an inbound queue; ``send`` places an envelope on the
destination's queue, ``recv`` consumes envelopes, buffering any that do not
match the requested ``(source, tag)`` selector so that out-of-order delivery
between different peers does not lose messages — the same matching semantics
MPI provides.
"""

from __future__ import annotations

import queue as queue_module
import threading
import time
from typing import Any, Callable, List, Optional, Sequence

ANY_SOURCE = -1
ANY_TAG = -1


class MPIAbort(Exception):
    """Raised in every rank when any rank calls :meth:`SimComm.abort`."""

    def __init__(self, errorcode: int = 1, origin_rank: int = -1):
        super().__init__(f"MPI job aborted with code {errorcode} (origin rank {origin_rank})")
        self.errorcode = errorcode
        self.origin_rank = origin_rank


class _Envelope:
    __slots__ = ("source", "tag", "payload", "kind")

    def __init__(self, source: int, tag: int, payload: Any, kind: str = "msg"):
        self.source = source
        self.tag = tag
        self.payload = payload
        self.kind = kind


class JobState:
    """State shared by every rank of one simulated MPI job."""

    def __init__(self, size: int, queue_factory: Callable[[], Any], barrier_factory: Callable[[int], Any]):
        if size < 1:
            raise ValueError("an MPI job needs at least one rank")
        self.size = size
        self.queues = [queue_factory() for _ in range(size)]
        self.barrier = barrier_factory(size)
        self.abort_info: Optional[MPIAbort] = None
        self.abort_flag = threading.Event() if isinstance(self.barrier, threading.Barrier) else None


class SimComm:
    """The communicator handed to each rank's entry function."""

    #: How often a blocking recv re-checks for an abort (seconds).
    _POLL = 0.05

    def __init__(self, rank: int, job: JobState):
        if not 0 <= rank < job.size:
            raise ValueError(f"rank {rank} out of range for job of size {job.size}")
        self._rank = rank
        self._job = job
        self._buffer: List[_Envelope] = []

    # ------------------------------------------------------------------
    # Introspection (MPI-style method names kept for familiarity)
    # ------------------------------------------------------------------
    @property
    def rank(self) -> int:
        return self._rank

    @property
    def size(self) -> int:
        return self._job.size

    def Get_rank(self) -> int:  # noqa: N802 - mpi4py naming
        return self._rank

    def Get_size(self) -> int:  # noqa: N802 - mpi4py naming
        return self._job.size

    # ------------------------------------------------------------------
    # Point to point
    # ------------------------------------------------------------------
    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Send ``obj`` to ``dest``. Raises MPIAbort if the job was aborted."""
        self._check_abort()
        if not 0 <= dest < self._job.size:
            raise ValueError(f"destination rank {dest} out of range")
        self._job.queues[dest].put(_Envelope(self._rank, tag, obj))

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG, timeout: Optional[float] = None) -> Any:
        """Blocking receive with source/tag matching.

        ``timeout`` is an extension over MPI (MPI recv blocks forever); EXEX
        workers use it so they can notice shutdown requests.
        """
        deadline = None if timeout is None else time.time() + timeout
        # First, check buffered envelopes.
        env = self._match_buffered(source, tag)
        if env is not None:
            return env.payload
        while True:
            self._check_abort()
            remaining = self._POLL
            if deadline is not None:
                remaining = min(remaining, deadline - time.time())
                if remaining <= 0:
                    raise TimeoutError(
                        f"rank {self._rank}: no message from source={source} tag={tag} within timeout"
                    )
            try:
                env = self._job.queues[self._rank].get(timeout=max(remaining, 0.001))
            except queue_module.Empty:
                continue
            if self._matches(env, source, tag):
                return env.payload
            self._buffer.append(env)

    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> bool:
        """Non-blocking check whether a matching message is available."""
        self._check_abort()
        if self._match_buffered(source, tag, consume=False) is not None:
            return True
        # Drain whatever is currently queued into the buffer, then re-check.
        while True:
            try:
                env = self._job.queues[self._rank].get_nowait()
            except queue_module.Empty:
                break
            self._buffer.append(env)
        return self._match_buffered(source, tag, consume=False) is not None

    def _match_buffered(self, source: int, tag: int, consume: bool = True) -> Optional[_Envelope]:
        for i, env in enumerate(self._buffer):
            if self._matches(env, source, tag):
                return self._buffer.pop(i) if consume else env
        return None

    @staticmethod
    def _matches(env: _Envelope, source: int, tag: int) -> bool:
        return (source in (ANY_SOURCE, env.source)) and (tag in (ANY_TAG, env.tag))

    # ------------------------------------------------------------------
    # Collectives (rooted, built on point-to-point)
    # ------------------------------------------------------------------
    _COLLECTIVE_TAG = -1000  # reserved internal tag range

    def bcast(self, obj: Any, root: int = 0) -> Any:
        """Broadcast ``obj`` from ``root`` to every rank; returns the object."""
        if self._rank == root:
            for dest in range(self.size):
                if dest != root:
                    self.send(obj, dest, tag=self._COLLECTIVE_TAG)
            return obj
        return self.recv(source=root, tag=self._COLLECTIVE_TAG)

    def scatter(self, sendobj: Optional[Sequence[Any]], root: int = 0) -> Any:
        """Scatter a sequence of ``size`` elements from root; returns this rank's element."""
        if self._rank == root:
            if sendobj is None or len(sendobj) != self.size:
                raise ValueError(f"scatter requires a sequence of exactly {self.size} elements at the root")
            for dest in range(self.size):
                if dest != root:
                    self.send(sendobj[dest], dest, tag=self._COLLECTIVE_TAG - 1)
            return sendobj[root]
        return self.recv(source=root, tag=self._COLLECTIVE_TAG - 1)

    def gather(self, sendobj: Any, root: int = 0) -> Optional[List[Any]]:
        """Gather one object per rank at the root; returns the list at root, None elsewhere."""
        if self._rank == root:
            result: List[Any] = [None] * self.size
            result[root] = sendobj
            for _ in range(self.size - 1):
                # Receive from any rank; envelope carries its true source.
                env = self._recv_envelope(tag=self._COLLECTIVE_TAG - 2)
                result[env.source] = env.payload
            return result
        self.send(sendobj, root, tag=self._COLLECTIVE_TAG - 2)
        return None

    def _recv_envelope(self, tag: int) -> _Envelope:
        env = self._match_buffered(ANY_SOURCE, tag)
        if env is not None:
            return env
        while True:
            self._check_abort()
            try:
                env = self._job.queues[self._rank].get(timeout=self._POLL)
            except queue_module.Empty:
                continue
            if self._matches(env, ANY_SOURCE, tag):
                return env
            self._buffer.append(env)

    def barrier(self, timeout: Optional[float] = 60.0) -> None:
        """Block until every rank reaches the barrier."""
        self._check_abort()
        self._job.barrier.wait(timeout)
        self._check_abort()

    # ------------------------------------------------------------------
    # Abort
    # ------------------------------------------------------------------
    def abort(self, errorcode: int = 1) -> None:
        """Kill the whole job: every subsequent communicator call raises MPIAbort."""
        self._job.abort_info = MPIAbort(errorcode, self._rank)
        if self._job.abort_flag is not None:
            self._job.abort_flag.set()
        # Wake up blocked receivers with sentinel envelopes.
        for q in self._job.queues:
            q.put(_Envelope(self._rank, ANY_TAG, None, kind="abort"))
        raise self._job.abort_info

    def _check_abort(self) -> None:
        if self._job.abort_info is not None:
            raise self._job.abort_info
