"""Launch simulated MPI jobs.

``launch_threads`` runs every rank as a thread inside the current process
(fast; used by unit tests and by EXEX's default in-process deployment).
``launch_processes`` runs every rank as a separate OS process, giving real
core-level parallelism at the cost of slower startup.

Both return an :class:`MPIJob` handle with ``wait()``, ``results`` (per-rank
return values), and ``terminate()``.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import threading
import traceback
from typing import Any, Callable, Dict, List, Optional

from repro.mpisim.communicator import JobState, MPIAbort, SimComm


class MPIJob:
    """Handle to a running simulated MPI job."""

    def __init__(self, size: int, mode: str):
        self.size = size
        self.mode = mode
        self._members: List[Any] = []
        self._results: Dict[int, Any] = {}
        self._errors: Dict[int, BaseException] = {}
        self._result_queue: Optional[Any] = None
        self.job_state: Optional[JobState] = None

    # Populated by the launch functions ---------------------------------
    def _attach(self, members: List[Any], job_state: JobState, result_queue: Optional[Any] = None) -> None:
        self._members = members
        self.job_state = job_state
        self._result_queue = result_queue

    def wait(self, timeout: Optional[float] = None) -> None:
        """Join every rank."""
        for member in self._members:
            member.join(timeout)
        if self._result_queue is not None:
            while True:
                try:
                    rank, ok, value = self._result_queue.get_nowait()
                except queue_module.Empty:
                    break
                if ok:
                    self._results[rank] = value
                else:
                    self._errors[rank] = RuntimeError(value)

    def is_alive(self) -> bool:
        return any(member.is_alive() for member in self._members)

    def terminate(self) -> None:
        """Forcefully stop the job (process mode only; thread mode relies on abort)."""
        if self.job_state is not None:
            self.job_state.abort_info = MPIAbort(1, -1)
        for member in self._members:
            if hasattr(member, "terminate"):
                member.terminate()

    @property
    def results(self) -> Dict[int, Any]:
        """Per-rank return values (available after :meth:`wait`)."""
        return dict(self._results)

    @property
    def errors(self) -> Dict[int, BaseException]:
        """Per-rank exceptions (available after :meth:`wait`)."""
        return dict(self._errors)

    def record_result(self, rank: int, value: Any) -> None:
        self._results[rank] = value

    def record_error(self, rank: int, exc: BaseException) -> None:
        self._errors[rank] = exc


def _thread_rank_main(job: MPIJob, job_state: JobState, rank: int, fn: Callable, args, kwargs) -> None:
    comm = SimComm(rank, job_state)
    try:
        result = fn(comm, *args, **kwargs)
        job.record_result(rank, result)
    except MPIAbort as exc:
        job.record_error(rank, exc)
    except BaseException as exc:  # noqa: BLE001 - rank failure must not kill the launcher
        job.record_error(rank, exc)


def launch_threads(size: int, fn: Callable, *args, **kwargs) -> MPIJob:
    """Run ``fn(comm, *args, **kwargs)`` on ``size`` thread-backed ranks."""
    job_state = JobState(
        size,
        queue_factory=queue_module.Queue,
        barrier_factory=lambda n: threading.Barrier(n),
    )
    job = MPIJob(size, mode="threads")
    threads = []
    for rank in range(size):
        t = threading.Thread(
            target=_thread_rank_main,
            args=(job, job_state, rank, fn, args, kwargs),
            name=f"mpisim-rank-{rank}",
            daemon=True,
        )
        threads.append(t)
    job._attach(threads, job_state)
    for t in threads:
        t.start()
    return job


def _process_rank_main(job_state: JobState, rank: int, fn: Callable, args, kwargs, result_queue) -> None:
    comm = SimComm(rank, job_state)
    try:
        result = fn(comm, *args, **kwargs)
        result_queue.put((rank, True, result))
    except BaseException as exc:  # noqa: BLE001
        result_queue.put((rank, False, f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}"))


def launch_processes(size: int, fn: Callable, *args, **kwargs) -> MPIJob:
    """Run ``fn(comm, *args, **kwargs)`` on ``size`` process-backed ranks.

    The entry function and its arguments must be picklable (module-level
    functions), matching the constraint real MPI programs have anyway.
    """
    ctx = multiprocessing.get_context("fork")
    manager_barrier = ctx.Barrier(size)
    job_state = JobState(
        size,
        queue_factory=ctx.Queue,
        barrier_factory=lambda n: manager_barrier,
    )
    result_queue = ctx.Queue()
    job = MPIJob(size, mode="processes")
    procs = []
    for rank in range(size):
        p = ctx.Process(
            target=_process_rank_main,
            args=(job_state, rank, fn, args, kwargs, result_queue),
            name=f"mpisim-rank-{rank}",
            daemon=True,
        )
        procs.append(p)
    job._attach(procs, job_state, result_queue)
    for p in procs:
        p.start()
    return job
