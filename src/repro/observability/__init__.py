"""Live observability: per-task tracing and a Prometheus-style metrics plane.

Two halves, both dependency-free:

* :mod:`repro.observability.trace` — a dict-shaped trace context minted at
  submit and stamped at every hop of the client->edge->gateway->DFK->
  interchange->manager->worker path, flushed into the monitoring store's
  ``task_spans`` table (``tools/trace_report.py`` renders the waterfall).
* :mod:`repro.observability.metrics` — counters/gauges/fixed-bucket
  histograms with O(1) hot-path recording, rendered in Prometheus text
  exposition via ``GET /metrics`` on the HTTP edge, the ``metrics`` admin
  command on the TCP gateway, and per-shard ``stats`` rows.
* :mod:`repro.observability.slo` — rolling-window quantiles over the same
  streams plus per-tenant burn-rate SLO alerting (``GET /v1/alerts``, the
  ``alerts`` admin command, ``repro_slo_burn`` gauges).
* :mod:`repro.observability.anomaly` — streaming straggler detection over
  live task spans with per-worker sick-host aggregation.
"""

from repro.observability.anomaly import StragglerDetector
from repro.observability.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    render_prometheus,
)
from repro.observability.slo import (
    RollingQuantile,
    SloAlert,
    SloEngine,
    SloObjective,
    parse_tenant_slos,
)
from repro.observability.trace import (
    SPAN_EVENTS,
    flush_spans,
    new_trace,
    next_attempt,
    stamp,
)

__all__ = [
    "RollingQuantile",
    "SloAlert",
    "SloEngine",
    "SloObjective",
    "StragglerDetector",
    "parse_tenant_slos",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "DEFAULT_LATENCY_BUCKETS",
    "render_prometheus",
    "SPAN_EVENTS",
    "new_trace",
    "stamp",
    "next_attempt",
    "flush_spans",
]
