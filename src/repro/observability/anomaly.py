"""Streaming straggler detection over live task spans.

The tracing plane stamps every task's hop timeline but only post-mortem
tools read it; this module watches the *live* population. The detector
learns, from completed traces, how long a healthy task spends between
entering each hop and finishing (its **hop-to-completion** time — measured
to completion rather than to the next hop because a live task's
worker-side stamps only merge back at result time, so its "current" hop is
wherever the gateway-side timeline stopped). A live task whose age in its
current hop exceeds ``k ×`` the rolling p99 of that hop's hop-to-completion
time is flagged a straggler, carrying its trace id, tenant, and worker so
an operator (or ``tools/repro_top.py``) can act on it; per-worker
aggregation names a sick worker/manager rather than just its tasks.

Guards against false positives, in order:

* ``min_samples`` completed observations per hop before that hop may flag
  anything (an empty model flags nothing);
* ``min_age_s`` floors the flagging age, so microsecond p99s on no-op
  workloads cannot flag tasks that are merely scheduled a tick later;
* the threshold is ``max(k × p99, min_age_s)`` — scale-free on slow
  workloads, absolute on fast ones.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.observability.slo import RollingQuantile

__all__ = ["StragglerDetector"]

#: Rolling window (seconds) for the per-hop hop-to-completion model.
MODEL_WINDOW_S = 300.0

#: Bucket bounds (seconds) for hop-to-completion times: finer than the
#: latency defaults at the sub-millisecond end (hops are often tiny) and
#: stretching to multi-minute tails.
HOP_BOUNDS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0,
)

#: Hops a live task can never be *seen in*: worker-side stamps
#: (``executing``/``exec_done``/``result_sent``) merge into the gateway's
#: timeline only when the result arrives, and the commit/delivery stamps
#: postdate completion by definition. Modeling them would be pure
#: per-completion overhead — :meth:`StragglerDetector.scan` can never
#: match them as a current hop. Kept as a blocklist (not an allowlist of
#: today's pre-result hops) so custom stamp sites are modeled by default.
NON_LIVE_HOPS = frozenset({
    "executing", "exec_done", "result_sent", "result_committed", "delivered",
})

#: Buffered completions that force an inline drain on the recording
#: thread; normally the gateway's 1 Hz tick (or any read) drains first.
PENDING_CAP = 1024


class StragglerDetector:
    """Flag live tasks whose current hop age exceeds k × rolling p99.

    Feed completions via :meth:`complete`; ask for verdicts on the live
    population via :meth:`scan`. Both are thread-safe and O(1)-per-sample /
    O(live tasks)-per-scan. ``complete`` only buffers the finished
    timeline (one lock acquisition on the completion thread); the hop
    model is updated — with each completion's original timestamps — by
    :meth:`drain`, which every read calls first and the gateway's service
    loop ticks at 1 Hz.
    """

    def __init__(self, factor: float = 4.0, min_age_s: float = 0.5,
                 min_samples: int = 20, window_s: float = MODEL_WINDOW_S,
                 time_fn: Callable[[], float] = time.time):
        if factor <= 0 or min_age_s < 0 or min_samples < 1 or window_s <= 0:
            raise ValueError("straggler detector parameters out of range")
        self.factor = float(factor)
        self.min_age_s = float(min_age_s)
        self.min_samples = int(min_samples)
        self.window_s = float(window_s)
        self._time = time_fn
        self._lock = threading.Lock()
        #: hop name -> rolling hop-to-completion distribution.
        self._hops: Dict[str, RollingQuantile] = {}
        #: Finished timelines awaiting absorption, (events-copy, t).
        self._pending: List[Tuple[List[Any], float]] = []
        self._completed = 0

    # ------------------------------------------------------------------
    # Learning from completions
    # ------------------------------------------------------------------
    def _hop(self, name: str) -> RollingQuantile:
        est = self._hops.get(name)
        if est is None:
            with self._lock:
                est = self._hops.get(name)
                if est is None:
                    est = RollingQuantile(window_s=self.window_s,
                                          bounds=HOP_BOUNDS,
                                          time_fn=self._time)
                    self._hops[name] = est
        return est

    def complete(self, trace: Optional[Dict[str, Any]],
                 now: Optional[float] = None) -> None:
        """Absorb one finished task's timeline into the per-hop model.

        For every stamped hop the observation is ``final_t − hop_t``: how
        long a task entering that hop normally has left. Traceless tasks
        (sampled out / tracing disabled) contribute nothing.
        """
        if not trace:
            return
        events = trace.get("events") or []
        if len(events) < 2:
            return
        t = self._time() if now is None else now
        with self._lock:
            # Copy the timeline: a retry may append hops to the live list
            # between now and the drain.
            self._pending.append((list(events), t))
            overfull = len(self._pending) >= PENDING_CAP
        if overfull:
            self.drain()

    def drain(self) -> None:
        """Absorb buffered completions into the per-hop model.

        Every read calls this first; the gateway also ticks it at 1 Hz so
        the model stays warm between polls. Concurrent drains each swap
        out and apply a disjoint batch.
        """
        with self._lock:
            batch, self._pending = self._pending, []
            self._completed += len(batch)
        hops = self._hops
        for events, t in batch:
            final_t = events[-1][1]
            for name, hop_t in events[:-1]:
                if name in NON_LIVE_HOPS:
                    continue
                est = hops.get(name)
                if est is None:
                    est = self._hop(name)
                left = final_t - hop_t
                est.record(left if left > 0.0 else 0.0, now=t)

    def completed_count(self) -> int:
        """Completions absorbed since construction (model freshness)."""
        self.drain()
        return self._completed

    def hop_p99(self, name: str, now: Optional[float] = None) -> Optional[float]:
        """Rolling p99 hop-to-completion for ``name`` (None = no data)."""
        self.drain()
        est = self._hops.get(name)
        return None if est is None else est.quantile(0.99, now=now)

    # ------------------------------------------------------------------
    # Judging the live population
    # ------------------------------------------------------------------
    def scan(self, live: Iterable[Tuple[Dict[str, Any], Dict[str, Any]]],
             now: Optional[float] = None,
             limit: int = 32) -> List[Dict[str, Any]]:
        """Flag stragglers among ``(trace, meta)`` pairs of in-flight tasks.

        ``meta`` supplies context the trace may lack (``tenant``); the
        worker comes from the trace's ``manager`` stamp (written by the
        interchange at dispatch). Returns JSON-ready records sorted by how
        far over threshold each task is, truncated to ``limit``.
        """
        self.drain()
        t = self._time() if now is None else now
        flagged: List[Dict[str, Any]] = []
        for trace, meta in live:
            if not trace:
                continue
            events = trace.get("events") or []
            if not events:
                continue
            hop, hop_t = events[-1]
            age = t - hop_t
            est = self._hops.get(hop)
            if est is None or est.count(now=t) < self.min_samples:
                continue
            p99 = est.quantile(0.99, now=t)
            if p99 is None:
                continue
            threshold = max(self.factor * p99, self.min_age_s)
            if age <= threshold:
                continue
            flagged.append({
                "trace_id": trace.get("id"),
                "task": trace.get("task"),
                "tenant": meta.get("tenant"),
                "hop": hop,
                "age_s": round(age, 4),
                "p99_s": round(p99, 4),
                "threshold_s": round(threshold, 4),
                "over": round(age / threshold, 2) if threshold > 0 else 0.0,
                "worker": trace.get("manager"),
            })
        flagged.sort(key=lambda r: r["over"], reverse=True)
        return flagged[:limit]

    @staticmethod
    def worker_report(stragglers: List[Dict[str, Any]],
                      sick_min: int = 3,
                      sick_fraction: float = 0.5) -> List[Dict[str, Any]]:
        """Aggregate flagged tasks per worker and name the sick ones.

        A worker is marked ``sick`` when it owns at least ``sick_min``
        stragglers *and* at least ``sick_fraction`` of all attributed
        ones — a concentration signal: one slow task is a task problem,
        most of the flagged population on one manager is a host problem.
        """
        by_worker: Dict[str, int] = {}
        attributed = 0
        for row in stragglers:
            worker = row.get("worker")
            if worker is None:
                continue
            by_worker[worker] = by_worker.get(worker, 0) + 1
            attributed += 1
        report = []
        for worker, n in sorted(by_worker.items(), key=lambda kv: -kv[1]):
            report.append({
                "worker": worker,
                "stragglers": n,
                "sick": n >= sick_min and attributed > 0
                        and n / attributed >= sick_fraction,
            })
        return report
