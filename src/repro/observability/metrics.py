"""A lock-cheap, dependency-free metrics registry with Prometheus exposition.

The paper's monitoring story is post-mortem (SQLite + reports); this module
adds the *live* half: counters, gauges, and fixed-bucket histograms that the
hot paths (DFK submit/completion, interchange dispatch, gateway delivery)
can record into at O(1) cost with no allocation after registration.

Design constraints, in order:

* **Hot-path safe.** ``Counter.inc`` / ``Histogram.observe`` are a bucket
  index plus a few integer adds under a per-metric ``threading.Lock``
  (uncontended in CPython this is tens of nanoseconds). Nothing on the
  record path allocates, formats, or touches shared registry state.
* **Absorb existing counters for free.** Most subsystems already keep plain
  ``int`` counters (``Interchange.tasks_dispatched``, ``fault_stats()``,
  queue depths). Rather than double-bookkeeping, a :class:`Counter` or
  :class:`Gauge` may be registered with a ``callback`` — the value is read
  at *render* time and the hot path pays nothing at all.
* **Prometheus text exposition.** :func:`render_prometheus` emits the
  ``text/plain; version=0.0.4`` format (``# HELP``/``# TYPE``, cumulative
  ``_bucket{le=...}`` + ``+Inf``, ``_sum``/``_count``). Rendering several
  registries at once (one per gateway shard) *sums* samples that share a
  (name, labels) identity, so N shards do not multiply label cardinality;
  per-shard visibility comes from the gateway's ``stats`` rows instead.
* **Zero-cost disable.** :data:`NULL_REGISTRY` hands out no-op metric
  objects so instrumentation sites call unconditionally — no ``if`` forest
  at every hop when ``Config(metrics_enabled=False)``.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "DEFAULT_LATENCY_BUCKETS",
    "render_prometheus",
]

#: Default histogram bucket upper bounds (seconds) for latency metrics:
#: sub-millisecond DFK overheads through multi-second task runtimes.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

LabelSet = Tuple[Tuple[str, str], ...]


def _label_key(labels: Optional[Dict[str, str]]) -> LabelSet:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _format_value(value: float) -> str:
    if isinstance(value, bool):  # pragma: no cover - defensive
        return "1" if value else "0"
    if isinstance(value, int) or (isinstance(value, float) and value.is_integer()):
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(labels: LabelSet, extra: Optional[Tuple[str, str]] = None) -> str:
    pairs = list(labels)
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    inner = ",".join(f'{name}="{_escape_label(value)}"' for name, value in pairs)
    return "{" + inner + "}"


class Counter:
    """A monotonically increasing counter (optionally callback-valued)."""

    __slots__ = ("labels", "_value", "_lock", "_callback")

    def __init__(self, labels: LabelSet = (),
                 callback: Optional[Callable[[], float]] = None):
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()
        self._callback = callback

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        with self._lock:
            self._value += amount

    def value(self) -> float:
        """Current value (reads the callback for absorbed counters)."""
        if self._callback is not None:
            try:
                return float(self._callback())
            except Exception:  # noqa: BLE001 - a dying source must not kill a scrape
                return 0.0
        with self._lock:
            return self._value


class Gauge:
    """A value that can go up and down (optionally callback-valued)."""

    __slots__ = ("labels", "_value", "_lock", "_callback")

    def __init__(self, labels: LabelSet = (),
                 callback: Optional[Callable[[], float]] = None):
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()
        self._callback = callback

    def set(self, value: float) -> None:
        """Set the gauge to ``value``."""
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` to the gauge."""
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount`` from the gauge."""
        with self._lock:
            self._value -= amount

    def value(self) -> float:
        """Current value (reads the callback for absorbed gauges)."""
        if self._callback is not None:
            try:
                return float(self._callback())
            except Exception:  # noqa: BLE001 - a dying source must not kill a scrape
                return 0.0
        with self._lock:
            return self._value


class Histogram:
    """A fixed-bucket histogram: O(1) observe, no allocation after init.

    ``buckets`` are ascending upper bounds; an implicit ``+Inf`` bucket
    catches overflow. :meth:`quantile` estimates percentiles by linear
    interpolation inside the winning bucket (the standard Prometheus
    ``histogram_quantile`` estimator), good enough for p50/p95/p99 ops
    dashboards without storing samples.
    """

    __slots__ = ("labels", "buckets", "_counts", "_sum", "_count", "_lock")

    def __init__(self, buckets: Sequence[float], labels: LabelSet = ()):
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("histogram buckets must be a non-empty ascending sequence")
        self.labels = labels
        self.buckets: Tuple[float, ...] = tuple(float(b) for b in buckets)
        self._counts = [0] * (len(self.buckets) + 1)  # last slot is +Inf
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one sample."""
        idx = bisect_left(self.buckets, value)
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            self._count += 1

    def snapshot(self) -> Tuple[List[int], float, int]:
        """``(per-bucket counts incl. +Inf, sum, count)`` — a consistent copy."""
        with self._lock:
            return list(self._counts), self._sum, self._count

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (0..1) by intra-bucket interpolation."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be within [0, 1]")
        counts, _total_sum, count = self.snapshot()
        if count == 0:
            return 0.0
        rank = q * count
        cumulative = 0
        for idx, bucket_count in enumerate(counts):
            previous = cumulative
            cumulative += bucket_count
            if cumulative >= rank and bucket_count > 0:
                upper = self.buckets[idx] if idx < len(self.buckets) else self.buckets[-1]
                lower = self.buckets[idx - 1] if idx > 0 else 0.0
                fraction = (rank - previous) / bucket_count
                return lower + (upper - lower) * min(max(fraction, 0.0), 1.0)
        return self.buckets[-1]


class _Family:
    """One metric name: its type, help text, and label-keyed children."""

    __slots__ = ("name", "kind", "help", "children")

    def __init__(self, name: str, kind: str, help_text: str):
        self.name = name
        self.kind = kind
        self.help = help_text
        self.children: Dict[LabelSet, Any] = {}


_NAME_OK = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:")


class MetricsRegistry:
    """Create-once, record-forever registry of metric families.

    Registration (``counter()``/``gauge()``/``histogram()``) takes a lock
    and may allocate; it returns the *same* child object for the same
    (name, labels), so hot paths register once at setup and only call
    ``inc``/``observe`` afterwards.
    """

    def __init__(self, default_buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS):
        self._lock = threading.Lock()
        self._families: Dict[str, _Family] = {}
        self.default_buckets = tuple(default_buckets)

    #: True for real registries; the null registry overrides this so call
    #: sites can cheaply skip optional work (e.g. stamping timestamps).
    enabled = True

    def _family(self, name: str, kind: str, help_text: str) -> _Family:
        if not name or set(name) - _NAME_OK or name[0].isdigit():
            raise ValueError(f"invalid metric name {name!r}")
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(name, kind, help_text)
                self._families[name] = family
            elif family.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as a {family.kind}"
                )
            return family

    def counter(self, name: str, help_text: str = "",
                labels: Optional[Dict[str, str]] = None,
                callback: Optional[Callable[[], float]] = None) -> Counter:
        """Get or create the counter ``name`` with ``labels``."""
        family = self._family(name, "counter", help_text)
        key = _label_key(labels)
        with self._lock:
            child = family.children.get(key)
            if child is None:
                child = Counter(key, callback=callback)
                family.children[key] = child
            return child

    def gauge(self, name: str, help_text: str = "",
              labels: Optional[Dict[str, str]] = None,
              callback: Optional[Callable[[], float]] = None) -> Gauge:
        """Get or create the gauge ``name`` with ``labels``."""
        family = self._family(name, "gauge", help_text)
        key = _label_key(labels)
        with self._lock:
            child = family.children.get(key)
            if child is None:
                child = Gauge(key, callback=callback)
                family.children[key] = child
            return child

    def histogram(self, name: str, help_text: str = "",
                  labels: Optional[Dict[str, str]] = None,
                  buckets: Optional[Sequence[float]] = None) -> Histogram:
        """Get or create the histogram ``name`` with ``labels``."""
        family = self._family(name, "histogram", help_text)
        key = _label_key(labels)
        with self._lock:
            child = family.children.get(key)
            if child is None:
                child = Histogram(buckets or self.default_buckets, key)
                family.children[key] = child
            return child

    def families(self) -> List[_Family]:
        """A stable-order snapshot of the registered families."""
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    def summary(self) -> Dict[str, float]:
        """Flat ``{name: value}`` view (labels summed; histograms -> count).

        Cheap enough for the gateway's per-shard ``stats`` rows.
        """
        out: Dict[str, float] = {}
        for family in self.families():
            total = 0.0
            for child in family.children.values():
                if isinstance(child, Histogram):
                    total += child.snapshot()[2]
                else:
                    total += child.value()
            out[family.name] = total
        return out

    def render(self) -> str:
        """This registry alone, in Prometheus text exposition format."""
        return render_prometheus([self])


class NullRegistry(MetricsRegistry):
    """A registry whose metrics record nothing (``metrics_enabled=False``).

    Instrument sites keep calling ``inc``/``observe`` unconditionally; the
    shared no-op children make that free.
    """

    enabled = False

    def __init__(self):
        super().__init__()
        self._noop_counter = _NoopMetric()
        self._noop_gauge = _NoopMetric()
        self._noop_histogram = _NoopMetric()

    def counter(self, name, help_text="", labels=None, callback=None):  # noqa: D102 - inherited
        return self._noop_counter

    def gauge(self, name, help_text="", labels=None, callback=None):  # noqa: D102 - inherited
        return self._noop_gauge

    def histogram(self, name, help_text="", labels=None, buckets=None):  # noqa: D102 - inherited
        return self._noop_histogram

    def families(self):  # noqa: D102 - inherited
        return []

    def render(self):  # noqa: D102 - inherited
        return ""


class _NoopMetric:
    """Absorbs every metric-mutation call without doing anything."""

    __slots__ = ()
    buckets: Tuple[float, ...] = ()

    def inc(self, amount: float = 1.0) -> None:  # noqa: D102
        pass

    def dec(self, amount: float = 1.0) -> None:  # noqa: D102
        pass

    def set(self, value: float) -> None:  # noqa: D102
        pass

    def observe(self, value: float) -> None:  # noqa: D102
        pass

    def value(self) -> float:  # noqa: D102
        return 0.0

    def quantile(self, q: float) -> float:  # noqa: D102
        return 0.0

    def snapshot(self):  # noqa: D102
        return [], 0.0, 0


#: Shared do-nothing registry for disabled-metrics configurations.
NULL_REGISTRY = NullRegistry()


def render_prometheus(registries: Iterable[MetricsRegistry]) -> str:
    """Render one or more registries as one Prometheus text document.

    Families with the same name across registries are merged; samples with
    identical (name, labels) are **summed** — so a sharded gateway exposes
    fleet totals without inventing a per-shard label dimension. Histogram
    merging requires identical bucket layouts (guaranteed when every shard
    is built from the same :class:`~repro.config.config.Config`); a layout
    mismatch falls back to the first registry's buckets and folds the other
    histogram's overflow into ``+Inf``.
    """
    merged: Dict[str, _Family] = {}
    for registry in registries:
        for family in registry.families():
            target = merged.get(family.name)
            if target is None:
                target = _Family(family.name, family.kind, family.help)
                merged[family.name] = target
            elif target.kind != family.kind:
                continue  # conflicting registration; first wins
            for key, child in family.children.items():
                target.children.setdefault(key, []).append(child)  # type: ignore[arg-type]

    lines: List[str] = []
    for name in sorted(merged):
        family = merged[name]
        help_text = family.help or family.name
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {family.kind}")
        for key in sorted(family.children):
            children = family.children[key]
            if family.kind == "histogram":
                _render_histogram(lines, name, key, children)
            else:
                total = sum(child.value() for child in children)
                lines.append(f"{name}{_render_labels(key)} {_format_value(total)}")
    return "\n".join(lines) + ("\n" if lines else "")


def _render_histogram(lines: List[str], name: str, key: LabelSet,
                      children: List[Histogram]) -> None:
    base = children[0]
    counts = [0] * (len(base.buckets) + 1)
    total_sum, total_count = 0.0, 0
    for child in children:
        child_counts, child_sum, child_count = child.snapshot()
        if len(child_counts) == len(counts) and child.buckets == base.buckets:
            for idx, value in enumerate(child_counts):
                counts[idx] += value
        else:  # mismatched layout: count everything, fold into +Inf
            counts[-1] += child_count
        total_sum += child_sum
        total_count += child_count
    cumulative = 0
    for idx, upper in enumerate(base.buckets):
        cumulative += counts[idx]
        labels = _render_labels(key, extra=("le", _format_value(upper)))
        lines.append(f"{name}_bucket{labels} {cumulative}")
    labels = _render_labels(key, extra=("le", "+Inf"))
    lines.append(f"{name}_bucket{labels} {total_count}")
    lines.append(f"{name}_sum{_render_labels(key)} {_format_value(total_sum)}")
    lines.append(f"{name}_count{_render_labels(key)} {total_count}")
