"""Per-tenant SLO engine: rolling-window quantiles and burn-rate alerts.

The metrics plane (:mod:`repro.observability.metrics`) accumulates
*forever*: a ``Histogram`` answers "p99 since the process started", which
is the wrong question for an operator watching a live service — one bad
minute drowns in a good day. This module adds the time-local half:

* :class:`RollingQuantile` — a fixed-memory sliding-window quantile
  estimator. The window is divided into ``slots`` sub-windows, each a
  fixed-bucket count array; recording is O(1) (a bucket index plus integer
  adds, bounded by the fixed bucket count) and querying merges the live
  sub-windows. Expiry is lazy: a slot is reset the first time its ring
  position is reused, so there is no sweeper thread.
* :class:`SloEngine` — per-tenant latency objectives (declared via
  ``Config(service_tenant_slos=...)``) evaluated Prometheus-alerting
  style over two windows (fast + slow) of error-budget **burn rate**,
  producing typed :class:`SloAlert` events, ``repro_slo_burn`` gauges,
  and a pluggable ``on_alert`` callback for schedulers that want to react
  (e.g. priority boosts on burn).

Burn-rate math, for an objective "p99 ≤ 250 ms": the error budget is the
fraction of requests *allowed* over the target, ``1 − 0.99 = 1%``. The
burn rate is ``(observed fraction over target) / budget`` — 1.0 means the
budget is being spent exactly as fast as it accrues, 10.0 means ten times
too fast. An alert fires only when **both** the fast window (the
objective's ``window_s``) and the slow window (default 10×) burn at or
above ``burn_threshold``: the slow window keeps a single spike from
paging, the fast window makes recovery reset the alert quickly.

Error bound (pinned by ``tests/observability/test_rolling_quantile_property.py``):
:meth:`RollingQuantile.quantile` returns a value inside the bucket that
contains the ``ceil(q·n)``-th smallest sample of the live window —
i.e. within ``(lower_bound, upper_bound]`` of that bucket, clamped to the
largest finite bound for overflow samples. ``frac_over`` is exact when the
threshold is one of the bucket bounds (the engine guarantees this by
splicing every SLO target into the bound list) and undercounts by at most
one bucket's population otherwise.
"""

from __future__ import annotations

import math
import threading
import time
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.observability.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    NULL_REGISTRY,
)

__all__ = [
    "RollingQuantile",
    "SloObjective",
    "SloAlert",
    "SloEngine",
    "parse_tenant_slos",
]

#: Sub-windows per sliding window: expiry resolution is window_s / SLOTS.
DEFAULT_SLOTS = 8

#: Fallback window (seconds) for tenants/streams with no declared objective.
DEFAULT_WINDOW_S = 60.0

#: Slow window multiplier when an objective does not set ``slow_window_s``.
SLOW_WINDOW_FACTOR = 10.0

#: Objective keys understood in ``service_tenant_slos`` entries.
OBJECTIVE_QUANTILES = {"p50_ms": 0.50, "p95_ms": 0.95, "p99_ms": 0.99}

#: Buffered samples that force an inline drain on the recording thread.
#: Normally the 1 Hz ``evaluate()`` tick (or any read) drains the buffer;
#: the cap only bounds memory when nothing ever reads.
PENDING_CAP = 4096


class RollingQuantile:
    """Fixed-memory quantile estimates over a sliding time window.

    A ring of ``slots`` sub-window bucket-count arrays; ``record`` lands in
    the sub-window owning ``now`` (lazily resetting it when the ring
    position is reused by a newer sub-window), and queries merge every
    sub-window still inside ``window_s``. Memory is
    ``slots × (len(bounds)+1)`` integers regardless of traffic.
    """

    __slots__ = ("window_s", "bounds", "slots", "_slot_width", "_counts",
                 "_totals", "_sums", "_slot_ids", "_lock", "_time")

    def __init__(self, window_s: float = DEFAULT_WINDOW_S,
                 bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
                 slots: int = DEFAULT_SLOTS,
                 time_fn: Callable[[], float] = time.time):
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        if slots < 1:
            raise ValueError("slots must be >= 1")
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("bounds must be a non-empty ascending sequence")
        self.window_s = float(window_s)
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in bounds)
        self.slots = int(slots)
        self._slot_width = self.window_s / self.slots
        width = len(self.bounds) + 1  # +1 overflow bucket
        self._counts = [[0] * width for _ in range(self.slots)]
        self._totals = [0] * self.slots
        self._sums = [0.0] * self.slots
        self._slot_ids = [-1] * self.slots
        self._lock = threading.Lock()
        self._time = time_fn

    def record(self, value: float, now: Optional[float] = None) -> None:
        """Record one sample at ``now`` (defaults to the injected clock)."""
        t = self._time() if now is None else now
        sid = int(t // self._slot_width)
        idx = sid % self.slots
        bucket = bisect_left(self.bounds, value)
        with self._lock:
            if self._slot_ids[idx] != sid:
                row = self._counts[idx]
                for i in range(len(row)):
                    row[i] = 0
                self._totals[idx] = 0
                self._sums[idx] = 0.0
                self._slot_ids[idx] = sid
            self._counts[idx][bucket] += 1
            self._totals[idx] += 1
            self._sums[idx] += value

    def _merged(self, now: Optional[float]) -> Tuple[List[int], int, float]:
        """Counts/total/sum over the sub-windows still inside the window."""
        t = self._time() if now is None else now
        current = int(t // self._slot_width)
        oldest = current - self.slots + 1
        merged = [0] * (len(self.bounds) + 1)
        total, total_sum = 0, 0.0
        with self._lock:
            for idx in range(self.slots):
                sid = self._slot_ids[idx]
                if sid < oldest or sid > current:
                    continue
                row = self._counts[idx]
                for i, c in enumerate(row):
                    merged[i] += c
                total += self._totals[idx]
                total_sum += self._sums[idx]
        return merged, total, total_sum

    def count(self, now: Optional[float] = None) -> int:
        """Number of samples currently inside the window."""
        return self._merged(now)[1]

    def mean(self, now: Optional[float] = None) -> Optional[float]:
        """Windowed mean, or ``None`` for an empty window."""
        _counts, total, total_sum = self._merged(now)
        return (total_sum / total) if total else None

    def quantile(self, q: float, now: Optional[float] = None) -> Optional[float]:
        """Windowed ``q``-quantile estimate, or ``None`` for an empty window.

        The estimate lies inside the bucket containing the ``ceil(q·n)``-th
        smallest live sample (linear interpolation within it); overflow
        samples clamp to the largest finite bound.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be within [0, 1]")
        counts, total, _sum = self._merged(now)
        if total == 0:
            return None
        rank = max(1, math.ceil(q * total))
        cumulative = 0
        for idx, bucket_count in enumerate(counts):
            previous = cumulative
            cumulative += bucket_count
            if cumulative >= rank and bucket_count > 0:
                upper = self.bounds[idx] if idx < len(self.bounds) else self.bounds[-1]
                lower = self.bounds[idx - 1] if 0 < idx <= len(self.bounds) else (
                    self.bounds[-1] if idx > len(self.bounds) else 0.0)
                fraction = (rank - previous) / bucket_count
                return lower + (upper - lower) * min(max(fraction, 0.0), 1.0)
        return self.bounds[-1]

    def frac_over(self, threshold: float, now: Optional[float] = None) -> float:
        """Fraction of live samples strictly greater than ``threshold``.

        Exact when ``threshold`` is one of the bucket bounds; otherwise the
        bucket straddling the threshold is excluded (an undercount of at
        most that bucket's population). 0.0 for an empty window.
        """
        counts, total, _sum = self._merged(now)
        if total == 0:
            return 0.0
        idx = bisect_left(self.bounds, threshold)
        if idx < len(self.bounds) and self.bounds[idx] == threshold:
            under = sum(counts[:idx + 1])
        else:
            under = sum(counts[:idx + 1])  # straddling bucket counted as under
        return (total - under) / total


@dataclass(frozen=True)
class SloObjective:
    """One tenant latency objective (e.g. "interactive p99 ≤ 250 ms")."""

    tenant: str
    name: str            #: objective key, e.g. ``"p99_ms"``
    quantile: float      #: 0.50 / 0.95 / 0.99
    target_s: float      #: latency target in seconds
    window_s: float      #: fast evaluation window
    slow_window_s: float  #: slow evaluation window
    burn_threshold: float  #: both windows must burn >= this to fire

    @property
    def budget(self) -> float:
        """Allowed fraction of requests over target (``1 − quantile``)."""
        return max(1.0 - self.quantile, 1e-9)


@dataclass
class SloAlert:
    """A firing (or just-resolved) burn-rate alert for one objective."""

    tenant: str
    objective: str
    target_ms: float
    window_s: float
    slow_window_s: float
    fast_burn: float
    slow_burn: float
    threshold: float
    observed_ms: Optional[float]  #: current fast-window quantile, ms
    fired_t: float
    state: str = "firing"
    extra: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (what ``GET /v1/alerts`` serves)."""
        return {
            "kind": "slo_burn",
            "tenant": self.tenant,
            "objective": self.objective,
            "target_ms": self.target_ms,
            "window_s": self.window_s,
            "slow_window_s": self.slow_window_s,
            "fast_burn": round(self.fast_burn, 4),
            "slow_burn": round(self.slow_burn, 4),
            "threshold": self.threshold,
            "observed_ms": (None if self.observed_ms is None
                            else round(self.observed_ms, 3)),
            "fired_t": self.fired_t,
            "state": self.state,
        }


def parse_tenant_slos(raw: Optional[Dict[str, Dict[str, Any]]]
                      ) -> List[SloObjective]:
    """Turn ``Config.service_tenant_slos`` into typed objectives.

    Each tenant entry may declare any of ``p50_ms``/``p95_ms``/``p99_ms``
    (milliseconds) plus optional ``window_s`` (fast window, default 60),
    ``slow_window_s`` (default 10× the fast window), and ``burn_threshold``
    (default 1.0). Raises ``ValueError`` on malformed entries; Config
    validation surfaces this as a ``ConfigurationError`` at build time.
    """
    objectives: List[SloObjective] = []
    for tenant, spec in (raw or {}).items():
        if not isinstance(spec, dict):
            raise ValueError(f"SLO spec for tenant {tenant!r} must be a mapping")
        window_s = float(spec.get("window_s", DEFAULT_WINDOW_S))
        slow_window_s = float(spec.get("slow_window_s",
                                       window_s * SLOW_WINDOW_FACTOR))
        threshold = float(spec.get("burn_threshold", 1.0))
        if window_s <= 0 or slow_window_s <= 0 or threshold <= 0:
            raise ValueError(
                f"SLO windows/threshold for tenant {tenant!r} must be positive")
        targets = [k for k in spec if k in OBJECTIVE_QUANTILES]
        if not targets:
            raise ValueError(
                f"SLO spec for tenant {tenant!r} declares no objective "
                f"(expected one of {sorted(OBJECTIVE_QUANTILES)})")
        unknown = set(spec) - set(OBJECTIVE_QUANTILES) - {
            "window_s", "slow_window_s", "burn_threshold"}
        if unknown:
            raise ValueError(
                f"SLO spec for tenant {tenant!r} has unknown keys {sorted(unknown)}")
        for key in targets:
            target_ms = spec[key]
            if not isinstance(target_ms, (int, float)) or target_ms <= 0:
                raise ValueError(
                    f"SLO target {key} for tenant {tenant!r} must be a "
                    f"positive number of milliseconds")
            objectives.append(SloObjective(
                tenant=str(tenant), name=key,
                quantile=OBJECTIVE_QUANTILES[key],
                target_s=float(target_ms) / 1000.0,
                window_s=window_s, slow_window_s=slow_window_s,
                burn_threshold=threshold,
            ))
    return objectives


class _TenantWindows:
    """One tenant's estimators: one per distinct window length."""

    __slots__ = ("estimators", "objectives", "_est_tuple")

    def __init__(self, objectives: List[SloObjective], bounds: Tuple[float, ...],
                 time_fn: Callable[[], float]):
        self.objectives = objectives
        windows = {DEFAULT_WINDOW_S}
        for obj in objectives:
            windows.add(obj.window_s)
            windows.add(obj.slow_window_s)
        self.estimators: Dict[float, RollingQuantile] = {
            w: RollingQuantile(window_s=w, bounds=bounds, time_fn=time_fn)
            for w in windows
        }
        #: Frozen iteration order for the hot path (no dict-view per record).
        self._est_tuple = tuple(self.estimators.values())

    def record(self, value: float, now: Optional[float]) -> None:
        for est in self._est_tuple:
            est.record(value, now=now)


class SloEngine:
    """Live per-tenant latency state plus burn-rate alerting.

    ``record(tenant, latency_s)`` is the hot path (fed by the gateway's
    completion hook); ``record_stream(name, latency_s)`` accepts auxiliary
    latency streams (e.g. per-executor worker execution time from the
    interchange). Both only timestamp the sample and append it to a
    buffer — one uncontended lock acquisition, well under a microsecond —
    so completion threads never pay for estimator updates. The buffer is
    applied (with each sample's *original* timestamp, so windowing is
    unaffected) by the next read: ``evaluate()``, which the gateway's
    service loop calls at 1 Hz and every alerts surface calls lazily, or
    either snapshot. ``PENDING_CAP`` bounds the buffer if nothing reads.
    """

    #: Minimum fast-window samples before an objective may fire (guards
    #: one-request windows from instantly burning at max rate).
    min_samples = 5

    def __init__(self, tenant_slos: Optional[Dict[str, Dict[str, Any]]] = None,
                 registry: MetricsRegistry = NULL_REGISTRY,
                 on_alert: Optional[Callable[[SloAlert], None]] = None,
                 time_fn: Callable[[], float] = time.time):
        self._time = time_fn
        self._registry = registry
        self._on_alert = on_alert
        self._lock = threading.Lock()
        objectives = parse_tenant_slos(tenant_slos)
        self._objectives_by_tenant: Dict[str, List[SloObjective]] = {}
        for obj in objectives:
            self._objectives_by_tenant.setdefault(obj.tenant, []).append(obj)
        # Splice every target into the bound list so frac_over() is exact
        # at each objective's threshold (see the module docstring).
        bounds = set(DEFAULT_LATENCY_BUCKETS)
        bounds.update(obj.target_s for obj in objectives)
        self._bounds = tuple(sorted(bounds))
        self._tenants: Dict[str, _TenantWindows] = {}
        self._streams: Dict[str, RollingQuantile] = {}
        #: Timestamped samples awaiting application, (key, value, t).
        self._pending: List[Tuple[str, float, float]] = []
        self._pending_streams: List[Tuple[str, float, float]] = []
        #: (tenant, objective-name) -> SloAlert for currently-firing alerts.
        self._active: Dict[Tuple[str, str], SloAlert] = {}

    # ------------------------------------------------------------------
    # Recording (hot path)
    # ------------------------------------------------------------------
    def _tenant(self, tenant: str) -> _TenantWindows:
        entry = self._tenants.get(tenant)
        if entry is None:
            with self._lock:
                entry = self._tenants.get(tenant)
                if entry is None:
                    entry = _TenantWindows(
                        self._objectives_by_tenant.get(tenant, []),
                        self._bounds, self._time)
                    self._tenants[tenant] = entry
        return entry

    def record(self, tenant: str, latency_s: float,
               now: Optional[float] = None) -> None:
        """Record one end-to-end latency sample for ``tenant`` (buffered)."""
        t = self._time() if now is None else now
        with self._lock:
            self._pending.append((tenant, latency_s, t))
            overfull = len(self._pending) >= PENDING_CAP
        if overfull:
            self._drain()

    def record_stream(self, name: str, latency_s: float,
                      now: Optional[float] = None) -> None:
        """Record into the named auxiliary stream (e.g. ``exec:htex``)."""
        t = self._time() if now is None else now
        with self._lock:
            self._pending_streams.append((name, latency_s, t))
            overfull = len(self._pending_streams) >= PENDING_CAP
        if overfull:
            self._drain()

    def _stream(self, name: str) -> RollingQuantile:
        est = self._streams.get(name)
        if est is None:
            with self._lock:
                est = self._streams.get(name)
                if est is None:
                    est = RollingQuantile(bounds=self._bounds, time_fn=self._time)
                    self._streams[name] = est
        return est

    def _drain(self) -> None:
        """Apply buffered samples to the estimators, off the hot path.

        Samples carry their recording-time timestamps, so a late drain
        lands each one in the sub-window it belongs to. Concurrent drains
        each swap out and apply a disjoint batch.
        """
        with self._lock:
            batch, self._pending = self._pending, []
            streams, self._pending_streams = self._pending_streams, []
        for tenant, value, t in batch:
            self._tenant(tenant).record(value, t)
        for name, value, t in streams:
            self._stream(name).record(value, now=t)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def _burns(self, obj: SloObjective, entry: _TenantWindows,
               now: Optional[float]) -> Tuple[float, float, int]:
        fast = entry.estimators[obj.window_s]
        slow = entry.estimators[obj.slow_window_s]
        fast_burn = fast.frac_over(obj.target_s, now=now) / obj.budget
        slow_burn = slow.frac_over(obj.target_s, now=now) / obj.budget
        return fast_burn, slow_burn, fast.count(now=now)

    def evaluate(self, now: Optional[float] = None) -> List[SloAlert]:
        """Refresh burn gauges and the active-alert set; return it.

        Rising edges invoke ``on_alert`` (exceptions swallowed — a broken
        hook must not take the service loop down); falling edges clear the
        alert from the active set.
        """
        self._drain()
        t = self._time() if now is None else now
        fired: List[SloAlert] = []
        for tenant, objectives in self._objectives_by_tenant.items():
            entry = self._tenant(tenant)
            for obj in objectives:
                fast_burn, slow_burn, n_fast = self._burns(obj, entry, now)
                for window, burn in (("fast", fast_burn), ("slow", slow_burn)):
                    self._registry.gauge(
                        "repro_slo_burn",
                        "Error-budget burn rate per tenant SLO objective",
                        labels={"tenant": tenant, "objective": obj.name,
                                "window": window},
                    ).set(burn)
                key = (tenant, obj.name)
                burning = (n_fast >= self.min_samples
                           and fast_burn >= obj.burn_threshold
                           and slow_burn >= obj.burn_threshold)
                with self._lock:
                    active = self._active.get(key)
                    if burning and active is None:
                        observed = entry.estimators[obj.window_s].quantile(
                            obj.quantile, now=now)
                        alert = SloAlert(
                            tenant=tenant, objective=obj.name,
                            target_ms=obj.target_s * 1000.0,
                            window_s=obj.window_s,
                            slow_window_s=obj.slow_window_s,
                            fast_burn=fast_burn, slow_burn=slow_burn,
                            threshold=obj.burn_threshold,
                            observed_ms=(None if observed is None
                                         else observed * 1000.0),
                            fired_t=t,
                        )
                        self._active[key] = alert
                        fired.append(alert)
                    elif burning and active is not None:
                        active.fast_burn = fast_burn
                        active.slow_burn = slow_burn
                        observed = entry.estimators[obj.window_s].quantile(
                            obj.quantile, now=now)
                        active.observed_ms = (None if observed is None
                                              else observed * 1000.0)
                    elif not burning and active is not None:
                        del self._active[key]
        for alert in fired:
            if self._on_alert is not None:
                try:
                    self._on_alert(alert)
                except Exception:  # noqa: BLE001 - hook must not kill the loop
                    pass
        with self._lock:
            return list(self._active.values())

    def active_alerts(self, now: Optional[float] = None) -> List[Dict[str, Any]]:
        """Evaluate, then return the firing alerts as JSON-ready dicts."""
        return [a.to_dict() for a in self.evaluate(now=now)]

    # ------------------------------------------------------------------
    # Snapshots (what the ops surfaces serve)
    # ------------------------------------------------------------------
    def tenant_snapshot(self, now: Optional[float] = None) -> Dict[str, Any]:
        """Per-tenant windowed latency + objective state, JSON-ready."""
        self._drain()
        out: Dict[str, Any] = {}
        with self._lock:
            tenants = dict(self._tenants)
        for tenant, entry in tenants.items():
            # The shortest window doubles as the tenant's "live" view.
            live = entry.estimators.get(DEFAULT_WINDOW_S)
            if live is None:  # pragma: no cover - DEFAULT always present
                live = next(iter(entry.estimators.values()))
            row: Dict[str, Any] = {"count": live.count(now=now)}
            for label, q in (("p50_ms", 0.50), ("p95_ms", 0.95), ("p99_ms", 0.99)):
                value = live.quantile(q, now=now)
                row[label] = None if value is None else round(value * 1000.0, 3)
            row["objectives"] = []
            for obj in entry.objectives:
                fast_burn, slow_burn, n_fast = self._burns(obj, entry, now)
                observed = entry.estimators[obj.window_s].quantile(
                    obj.quantile, now=now)
                row["objectives"].append({
                    "objective": obj.name,
                    "target_ms": obj.target_s * 1000.0,
                    "window_s": obj.window_s,
                    "observed_ms": (None if observed is None
                                    else round(observed * 1000.0, 3)),
                    "fast_burn": round(fast_burn, 4),
                    "slow_burn": round(slow_burn, 4),
                    "threshold": obj.burn_threshold,
                    "firing": (tenant, obj.name) in self._active,
                })
            out[tenant] = row
        return out

    def stream_snapshot(self, now: Optional[float] = None) -> Dict[str, Any]:
        """Auxiliary stream quantiles (e.g. per-executor worker latency)."""
        self._drain()
        out: Dict[str, Any] = {}
        with self._lock:
            streams = dict(self._streams)
        for name, est in streams.items():
            p50, p99 = est.quantile(0.50, now=now), est.quantile(0.99, now=now)
            out[name] = {
                "count": est.count(now=now),
                "p50_ms": None if p50 is None else round(p50 * 1000.0, 3),
                "p99_ms": None if p99 is None else round(p99 * 1000.0, 3),
            }
        return out
