"""Lightweight per-task distributed tracing (no third-party deps).

A *trace context* is a plain dict so it can ride, unchanged, inside every
existing wire shape in the stack: the gateway's queued item, the DFK's
:class:`~repro.core.taskrecord.TaskRecord`, the interchange dispatch item,
and the pickled manager->worker channel. Shape::

    {
        "id": "trace-...",   # stable across retries/redispatches
        "task": 17,          # DFK task id (-1 until the DFK assigns one)
        "attempt": 1,        # bumped by the DFK retry path after flushing
        "events": [["submitted", 1712.345], ...],  # (hop name, wall time)
        "flushed": 0,        # events[:flushed] already sent to monitoring
    }

Within one process (gateway, DFK, and interchange share one) the *same*
dict object is threaded through, so a hop stamps with a GIL-atomic
``list.append`` — no locks, no copies. The only process boundary is the
manager/worker hop, where the dict travels pickled; workers report their
timestamps as plain keys on the result dict (``exec_start``/``exec_end``/
``sent_at``) and the interchange merges them back into the live context.

Canonical hop order (one row set per attempt)::

    submitted -> queued -> routed -> dispatched -> executing -> exec_done
              -> result_sent -> result_committed -> delivered

``submitted`` is stamped where the trace is minted (DFK submit, or the
gateway at admission); ``delivered`` only exists for gateway tasks.
Flushing emits one ``TASK_SPAN`` monitoring row per event through the
MonitoringHub's batched path, which also stamps the hub-order ``seq`` used
to keep same-millisecond events stable in reports.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional

from repro.utils.ids import make_uid

__all__ = ["SPAN_EVENTS", "new_trace", "stamp", "next_attempt", "flush_spans"]

#: Canonical hop names in pipeline order (used by reports to order columns
#: and by the waterfall CLI to label rows).
SPAN_EVENTS: List[str] = [
    "submitted",
    "queued",
    "routed",
    "dispatched",
    "executing",
    "exec_done",
    "result_sent",
    "result_committed",
    "delivered",
]


def new_trace(task_id: int = -1, trace_id: Optional[str] = None) -> Dict[str, Any]:
    """Mint a fresh trace context (does not stamp any event)."""
    return {
        "id": trace_id or make_uid("trace"),
        "task": task_id,
        "attempt": 1,
        "events": [],
        "flushed": 0,
    }


def stamp(trace: Optional[Dict[str, Any]], event: str,
          t: Optional[float] = None) -> None:
    """Append one span event to ``trace`` (no-op when ``trace`` is None).

    ``t`` defaults to ``time.time()`` — wall time, because events from the
    worker process must land on the same axis as in-process stamps.
    """
    if trace is None:
        return
    trace["events"].append([event, time.time() if t is None else t])


def next_attempt(trace: Optional[Dict[str, Any]]) -> None:
    """Advance to the next attempt (call after flushing the current one)."""
    if trace is not None:
        trace["attempt"] += 1


def flush_spans(trace: Optional[Dict[str, Any]], monitoring: Any,
                run_id: Optional[str], task_id: Optional[int] = None) -> int:
    """Send the unflushed tail of ``trace`` as TASK_SPAN monitoring rows.

    Idempotent per event: the context tracks a ``flushed`` high-water mark,
    so the DFK can flush at ``result_committed`` and the gateway can flush
    again after stamping ``delivered`` without duplicating rows. Returns
    the number of rows sent (0 when tracing or monitoring is off).
    """
    if trace is None or monitoring is None:
        return 0
    events = trace["events"]
    start = trace["flushed"]
    if start >= len(events):
        return 0
    # Imported lazily: monitoring imports stay out of the no-monitoring path.
    from repro.monitoring.messages import MessageType

    tid = trace.get("task", -1) if task_id is None else task_id
    sent = 0
    for name, t in events[start:]:
        monitoring.send(
            MessageType.TASK_SPAN,
            {
                "run_id": run_id,
                "task_id": tid,
                "state": name,
                "t": t,
                "trace_id": trace["id"],
                "attempt": trace["attempt"],
            },
        )
        sent += 1
    trace["flushed"] = len(events)
    return sent
