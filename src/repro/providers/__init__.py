"""Execution providers (§4.2): a uniform submit/status/cancel interface over
local processes, batch schedulers, and clouds."""

from repro.providers.base import ExecutionProvider, JobState, JobStatus
from repro.providers.local import LocalProvider
from repro.providers.cluster import ClusterProvider
from repro.providers.slurm import SlurmProvider
from repro.providers.torque import TorqueProvider
from repro.providers.cobalt import CobaltProvider
from repro.providers.gridengine import GridEngineProvider
from repro.providers.condor import CondorProvider
from repro.providers.cloudbase import CloudProvider
from repro.providers.aws import AWSProvider
from repro.providers.googlecloud import GoogleCloudProvider
from repro.providers.kubernetes import KubernetesProvider

__all__ = [
    "ExecutionProvider",
    "JobState",
    "JobStatus",
    "LocalProvider",
    "ClusterProvider",
    "SlurmProvider",
    "TorqueProvider",
    "CobaltProvider",
    "GridEngineProvider",
    "CondorProvider",
    "CloudProvider",
    "AWSProvider",
    "GoogleCloudProvider",
    "KubernetesProvider",
]
