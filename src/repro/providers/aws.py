"""AWSProvider: EC2-style instances (simulated)."""

from __future__ import annotations

from typing import Optional

from repro.lrm.cloud import CloudSim
from repro.providers.cloudbase import CloudProvider


class AWSProvider(CloudProvider):
    """Provider for EC2-style on-demand and spot instances.

    ``instance_type``, ``spot_bid``, ``key_name``, and ``region`` mirror the
    cloud parameters called out in §4.2; the backing control plane is the
    :class:`~repro.lrm.cloud.CloudSim` simulator.
    """

    label = "aws"

    def __init__(self, image_id: str = "ami-repro", security_group: Optional[str] = None, **kwargs):
        kwargs.setdefault("instance_type", "c5.xlarge")
        if "cloud" not in kwargs or kwargs["cloud"] is None:
            kwargs["cloud"] = CloudSim(name="aws-ec2")
        super().__init__(**kwargs)
        self.image_id = image_id
        self.security_group = security_group or "default"
