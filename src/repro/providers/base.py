"""Provider abstraction.

The paper (§4.2) reduces every kind of resource — clouds, supercomputers,
workstations — to three actions: *submit* a block, *retrieve the status* of an
allocation, and *cancel* it. A provider also carries the block-shape
parameters used by the elasticity strategy (§4.4): ``nodes_per_block``,
``init_blocks``, ``min_blocks``, ``max_blocks``, and ``parallelism``.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List, Optional


class JobState(enum.Enum):
    """Normalized allocation states reported to executors and the strategy."""

    UNKNOWN = "UNKNOWN"
    PENDING = "PENDING"
    RUNNING = "RUNNING"
    COMPLETED = "COMPLETED"
    FAILED = "FAILED"
    CANCELLED = "CANCELLED"
    TIMEOUT = "TIMEOUT"
    HELD = "HELD"
    MISSING = "MISSING"

    @property
    def terminal(self) -> bool:
        return self in (
            JobState.COMPLETED,
            JobState.FAILED,
            JobState.CANCELLED,
            JobState.TIMEOUT,
            JobState.MISSING,
        )


@dataclass
class JobStatus:
    """Status of one block as reported by a provider."""

    state: JobState
    message: str = ""
    exit_code: Optional[int] = None

    @property
    def terminal(self) -> bool:
        return self.state.terminal

    def __repr__(self) -> str:
        return f"JobStatus({self.state.value}{', ' + self.message if self.message else ''})"


class ExecutionProvider(ABC):
    """Base class for all providers."""

    #: Human-readable label used in logs and monitoring.
    label: str = "provider"

    def __init__(
        self,
        nodes_per_block: int = 1,
        init_blocks: int = 1,
        min_blocks: int = 0,
        max_blocks: int = 10,
        parallelism: float = 1.0,
        walltime: str = "00:30:00",
        cores_per_node: Optional[int] = None,
        mem_per_node: Optional[float] = None,
        worker_init: str = "",
    ):
        if nodes_per_block < 1:
            raise ValueError("nodes_per_block must be >= 1")
        if min_blocks < 0 or max_blocks < min_blocks:
            raise ValueError("need 0 <= min_blocks <= max_blocks")
        if not 0 <= parallelism <= 1:
            raise ValueError("parallelism must be between 0 and 1")
        self.nodes_per_block = nodes_per_block
        self.init_blocks = init_blocks
        self.min_blocks = min_blocks
        self.max_blocks = max_blocks
        self.parallelism = parallelism
        self.walltime = walltime
        self.cores_per_node = cores_per_node
        self.mem_per_node = mem_per_node
        self.worker_init = worker_init
        #: Executors stash per-block metadata here.
        self.resources: dict = {}

    # ------------------------------------------------------------------
    @abstractmethod
    def submit(self, command: str, tasks_per_node: int, job_name: str = "repro.block") -> str:
        """Submit one block running ``command``; returns an opaque job id."""

    @abstractmethod
    def status(self, job_ids: List[str]) -> List[JobStatus]:
        """Return the status of each block in ``job_ids`` (same order)."""

    @abstractmethod
    def cancel(self, job_ids: List[str]) -> List[bool]:
        """Cancel blocks; returns per-block success flags."""

    # ------------------------------------------------------------------
    @property
    def status_polling_interval(self) -> float:
        """How often (seconds) block status should be polled.

        Executors run this poll on a background thread
        (:meth:`~repro.executors.base.ReproExecutor.start_block_monitoring`)
        and fold the results into their block registry, so the elasticity
        engine sees crashed or expired blocks without a synchronous provider
        round-trip on its decision path. Batch schedulers should report a
        value that respects scheduler rate limits.
        """
        return 1.0

    @property
    def cores_per_block(self) -> int:
        """Best-effort estimate of cores provided by one block."""
        return (self.cores_per_node or 1) * self.nodes_per_block

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(nodes_per_block={self.nodes_per_block}, "
            f"init_blocks={self.init_blocks}, min_blocks={self.min_blocks}, "
            f"max_blocks={self.max_blocks}, parallelism={self.parallelism})"
        )
