"""Shared implementation for cloud providers (AWS, Google Cloud, Kubernetes).

A block on a cloud corresponds to a single API request for one or more
instances (§4.2.3). The provider tracks the set of instance ids making up
each block; block status is the aggregate of instance states (a block is
RUNNING once all instances are up, FAILED if any instance failed or was
preempted).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import SubmitException
from repro.launchers.base import Launcher
from repro.launchers.launchers import SingleNodeLauncher
from repro.lrm.cloud import CloudSim, InstanceState
from repro.providers.base import ExecutionProvider, JobState, JobStatus


class CloudProvider(ExecutionProvider):
    """Base class for instance-oriented providers."""

    label = "cloud"

    def __init__(
        self,
        cloud: Optional[CloudSim] = None,
        instance_type: str = "t2.micro",
        spot: bool = False,
        spot_bid: Optional[float] = None,
        launcher: Optional[Launcher] = None,
        nodes_per_block: int = 1,
        init_blocks: int = 1,
        min_blocks: int = 0,
        max_blocks: int = 10,
        parallelism: float = 1.0,
        walltime: str = "01:00:00",
        worker_init: str = "",
        key_name: Optional[str] = None,
        region: str = "us-east-1",
    ):
        super().__init__(
            nodes_per_block=nodes_per_block,
            init_blocks=init_blocks,
            min_blocks=min_blocks,
            max_blocks=max_blocks,
            parallelism=parallelism,
            walltime=walltime,
            worker_init=worker_init,
        )
        self.cloud = cloud or CloudSim(name=f"{self.label}-cloud")
        self.instance_type = instance_type
        self.spot = spot
        self.spot_bid = spot_bid
        self.launcher = launcher or SingleNodeLauncher()
        self.key_name = key_name
        self.region = region
        spec = self.cloud.instance_types.get(instance_type)
        self.cores_per_node = spec.cores if spec else 1
        self._blocks: Dict[str, List[str]] = {}
        self._counter = 0

    # ------------------------------------------------------------------
    def submit(self, command: str, tasks_per_node: int, job_name: str = "repro.block") -> str:
        self._counter += 1
        block_id = f"{self.label}.block.{self._counter}"
        bootstrap = ""
        if self.worker_init:
            bootstrap = self.worker_init + "\n"
        # Each instance is one "node" of the block; the per-node command is
        # the launcher output for a single node.
        per_node_command = bootstrap + self.launcher(command, tasks_per_node, 1)
        instance_ids = []
        try:
            for _ in range(self.nodes_per_block):
                instance_ids.append(
                    self.cloud.request_instance(
                        instance_type=self.instance_type,
                        command=per_node_command,
                        spot=self.spot,
                        spot_bid=self.spot_bid,
                    )
                )
        except SubmitException:
            # Roll back any instances already acquired for this block.
            if instance_ids:
                self.cloud.terminate(instance_ids)
            raise
        self._blocks[block_id] = instance_ids
        return block_id

    def status(self, job_ids: List[str]) -> List[JobStatus]:
        statuses = []
        for block_id in job_ids:
            instance_ids = self._blocks.get(block_id)
            if not instance_ids:
                statuses.append(JobStatus(JobState.MISSING, f"unknown block {block_id}"))
                continue
            states = self.cloud.describe(instance_ids)
            values = list(states.values())
            if any(s == InstanceState.FAILED for s in values):
                statuses.append(JobStatus(JobState.FAILED))
            elif any(s == InstanceState.PREEMPTED for s in values):
                statuses.append(JobStatus(JobState.FAILED, "instance preempted"))
            elif all(s == InstanceState.TERMINATED for s in values):
                statuses.append(JobStatus(JobState.COMPLETED))
            elif any(s == InstanceState.PENDING for s in values):
                statuses.append(JobStatus(JobState.PENDING))
            else:
                statuses.append(JobStatus(JobState.RUNNING))
        return statuses

    def cancel(self, job_ids: List[str]) -> List[bool]:
        results = []
        for block_id in job_ids:
            instance_ids = self._blocks.get(block_id)
            if not instance_ids:
                results.append(False)
                continue
            self.cloud.terminate(instance_ids)
            results.append(True)
        return results

    @property
    def status_polling_interval(self) -> float:
        return 0.5
