"""Shared implementation for batch-scheduler providers.

Each concrete provider (Slurm, Torque/PBS, Cobalt, GridEngine, HTCondor)
supplies a submit-script template in its scheduler's native directive dialect
and a mapping from scheduler-specific job states to the normalized
:class:`~repro.providers.base.JobState`. The script is handed to the
simulated LRM exactly as it would be handed to ``sbatch``/``qsub``; the LRM
parses the directives back out, enforces partition limits and walltimes, and
runs the script body locally so the worker pools genuinely start.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.channels.base import Channel
from repro.channels.local import LocalChannel
from repro.errors import SubmitException
from repro.launchers.base import Launcher
from repro.launchers.launchers import SingleNodeLauncher
from repro.lrm.scheduler import BatchSchedulerSim, SimJobState, get_cluster
from repro.providers.base import ExecutionProvider, JobState, JobStatus

#: How simulated LRM job states map onto the provider-facing states.
_SIM_TO_JOBSTATE: Dict[SimJobState, JobState] = {
    SimJobState.PENDING: JobState.PENDING,
    SimJobState.HELD: JobState.HELD,
    SimJobState.RUNNING: JobState.RUNNING,
    SimJobState.COMPLETED: JobState.COMPLETED,
    SimJobState.FAILED: JobState.FAILED,
    SimJobState.CANCELLED: JobState.CANCELLED,
    SimJobState.TIMEOUT: JobState.TIMEOUT,
}


class ClusterProvider(ExecutionProvider):
    """Base class for providers that submit blocks to a batch scheduler."""

    label = "cluster"
    #: Directive dialect understood by the LRM simulator.
    dialect = "slurm"

    def __init__(
        self,
        partition: Optional[str] = None,
        channel: Optional[Channel] = None,
        launcher: Optional[Launcher] = None,
        lrm: Optional[BatchSchedulerSim] = None,
        cluster_name: str = "default",
        scheduler_options: str = "",
        worker_init: str = "",
        nodes_per_block: int = 1,
        init_blocks: int = 1,
        min_blocks: int = 0,
        max_blocks: int = 10,
        parallelism: float = 1.0,
        walltime: str = "00:30:00",
        cores_per_node: Optional[int] = None,
        mem_per_node: Optional[float] = None,
    ):
        super().__init__(
            nodes_per_block=nodes_per_block,
            init_blocks=init_blocks,
            min_blocks=min_blocks,
            max_blocks=max_blocks,
            parallelism=parallelism,
            walltime=walltime,
            cores_per_node=cores_per_node,
            mem_per_node=mem_per_node,
            worker_init=worker_init,
        )
        self.channel = channel or LocalChannel()
        self.launcher = launcher or SingleNodeLauncher()
        self.lrm = lrm or get_cluster(cluster_name)
        self.partition = partition or next(iter(self.lrm.partitions))
        self.scheduler_options = scheduler_options
        if self.cores_per_node is None:
            spec = self.lrm.partitions.get(self.partition)
            self.cores_per_node = spec.cores_per_node if spec else 1
        self._submitted: List[str] = []

    # ------------------------------------------------------------------
    # Script generation: overridden per scheduler dialect.
    # ------------------------------------------------------------------
    def _directive_block(self, job_name: str) -> str:
        """Return the scheduler directive lines for a block submission."""
        raise NotImplementedError

    def _write_submit_script(self, command: str, tasks_per_node: int, job_name: str) -> str:
        launched = self.launcher(command, tasks_per_node, self.nodes_per_block)
        lines = ["#!/bin/sh"]
        lines.append(self._directive_block(job_name).rstrip("\n"))
        if self.scheduler_options:
            lines.append(self.scheduler_options.rstrip("\n"))
        if self.worker_init:
            lines.append(self.worker_init.rstrip("\n"))
        lines.append(launched)
        return "\n".join(lines) + "\n"

    # ------------------------------------------------------------------
    def submit(self, command: str, tasks_per_node: int, job_name: str = "repro.block") -> str:
        script = self._write_submit_script(command, tasks_per_node, job_name)
        # Stage the script through the channel so SSH-style deployments are
        # exercised (the script lands in the channel's script directory).
        script_path = f"{self.channel.script_dir}/{job_name}.sh"
        with open(script_path, "w") as fh:
            fh.write(script)
        try:
            job_id = self.lrm.submit_script(script, dialect=self.dialect)
        except SubmitException:
            raise
        except Exception as exc:  # noqa: BLE001 - normalize unexpected LRM errors
            raise SubmitException(self.label, str(exc)) from exc
        self._submitted.append(job_id)
        return job_id

    def status(self, job_ids: List[str]) -> List[JobStatus]:
        statuses = []
        for job_id in job_ids:
            try:
                sim_state = self.lrm.status([job_id])[job_id]
            except Exception:  # noqa: BLE001 - unknown ids become MISSING
                statuses.append(JobStatus(JobState.MISSING, f"unknown job {job_id}"))
                continue
            statuses.append(JobStatus(_SIM_TO_JOBSTATE.get(sim_state, JobState.UNKNOWN)))
        return statuses

    def cancel(self, job_ids: List[str]) -> List[bool]:
        return self.lrm.cancel(job_ids)

    @property
    def status_polling_interval(self) -> float:
        return 0.5
