"""CobaltProvider: ALCF Cobalt-managed systems (e.g. Theta)."""

from __future__ import annotations

from repro.providers.cluster import ClusterProvider


class CobaltProvider(ClusterProvider):
    """Provider emitting ``#COBALT`` directives."""

    label = "cobalt"
    dialect = "cobalt"

    def _directive_block(self, job_name: str) -> str:
        return "\n".join(
            [
                f"#COBALT --job-name {job_name}",
                f"#COBALT --nodecount={self.nodes_per_block}",
                f"#COBALT --time {self.walltime}",
                f"#COBALT -q {self.partition}",
            ]
        )
