"""CondorProvider: HTCondor pools."""

from __future__ import annotations

from repro.providers.cluster import ClusterProvider


class CondorProvider(ClusterProvider):
    """Provider emitting HTCondor-style submit directives.

    HTCondor submit files are key=value rather than shell directives; the LRM
    simulator accepts a ``#CONDOR`` directive dialect carrying the same
    normalized keys so the provider still exercises script generation and the
    submit/status/cancel path.
    """

    label = "condor"
    dialect = "condor"

    def _directive_block(self, job_name: str) -> str:
        return "\n".join(
            [
                f"#CONDOR jobname = {job_name}",
                f"#CONDOR nodecount = {self.nodes_per_block}",
                f"#CONDOR walltime={self.walltime}",
                f"#CONDOR queue = {self.partition}",
            ]
        )
