"""GoogleCloudProvider: GCE-style instances (simulated)."""

from __future__ import annotations

from repro.lrm.cloud import CloudSim
from repro.providers.cloudbase import CloudProvider


class GoogleCloudProvider(CloudProvider):
    """Provider for Google Compute Engine style instances."""

    label = "googlecloud"

    def __init__(self, project_id: str = "repro-project", zone: str = "us-central1-a", **kwargs):
        kwargs.setdefault("instance_type", "n1-standard-4")
        if "cloud" not in kwargs or kwargs["cloud"] is None:
            kwargs["cloud"] = CloudSim(name="gce")
        super().__init__(**kwargs)
        self.project_id = project_id
        self.zone = zone
