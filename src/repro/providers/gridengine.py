"""GridEngineProvider: SGE/UGE-managed clusters."""

from __future__ import annotations

from repro.providers.cluster import ClusterProvider


class GridEngineProvider(ClusterProvider):
    """Provider emitting ``#$`` (SGE) directives."""

    label = "gridengine"
    dialect = "sge"

    def _directive_block(self, job_name: str) -> str:
        return "\n".join(
            [
                f"#$ --job-name={job_name}",
                f"#$ --nodes={self.nodes_per_block}",
                f"#$ -t {self.walltime}",
                f"#$ -q {self.partition}",
            ]
        )
