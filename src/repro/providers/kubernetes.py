"""KubernetesProvider: pods as blocks (simulated)."""

from __future__ import annotations

from repro.lrm.cloud import CloudSim
from repro.providers.cloudbase import CloudProvider


class KubernetesProvider(CloudProvider):
    """Provider that runs each block node as a pod.

    The pod image corresponds to the container image used for task isolation
    (§4.6); the simulated control plane starts the pod's command as a local
    process.
    """

    label = "kubernetes"

    def __init__(self, image: str = "repro/worker:latest", namespace: str = "default", **kwargs):
        kwargs.setdefault("instance_type", "pod-small")
        if "cloud" not in kwargs or kwargs["cloud"] is None:
            kwargs["cloud"] = CloudSim(name="k8s", provisioning_delay_s=0.05)
        super().__init__(**kwargs)
        self.image = image
        self.namespace = namespace
