"""LocalProvider: blocks are plain processes forked on this machine."""

from __future__ import annotations

import os
import signal
import subprocess
from typing import Dict, List, Optional

from repro.channels.local import LocalChannel
from repro.errors import SubmitException
from repro.launchers.launchers import SingleNodeLauncher
from repro.providers.base import ExecutionProvider, JobState, JobStatus


class LocalProvider(ExecutionProvider):
    """Fork worker pools directly (the paper's "local execution (fork)" provider).

    Each submitted block becomes one shell process started through the
    configured launcher. This provider is what makes the reproduction's HTEX,
    LLEX and EXEX actually execute work on the machine running the tests and
    benchmarks.
    """

    label = "local"

    def __init__(
        self,
        channel: Optional[LocalChannel] = None,
        launcher=None,
        nodes_per_block: int = 1,
        init_blocks: int = 1,
        min_blocks: int = 0,
        max_blocks: int = 10,
        parallelism: float = 1.0,
        walltime: str = "01:00:00",
        cores_per_node: Optional[int] = None,
        worker_init: str = "",
        script_dir: Optional[str] = None,
    ):
        super().__init__(
            nodes_per_block=nodes_per_block,
            init_blocks=init_blocks,
            min_blocks=min_blocks,
            max_blocks=max_blocks,
            parallelism=parallelism,
            walltime=walltime,
            cores_per_node=cores_per_node or os.cpu_count() or 1,
            worker_init=worker_init,
        )
        self.channel = channel or LocalChannel(script_dir=script_dir)
        self.launcher = launcher or SingleNodeLauncher()
        self._processes: Dict[str, subprocess.Popen] = {}
        self._counter = 0

    # ------------------------------------------------------------------
    def submit(self, command: str, tasks_per_node: int, job_name: str = "repro.block") -> str:
        self._counter += 1
        job_id = f"local.{os.getpid()}.{self._counter}"
        wrapped = self.launcher(command, tasks_per_node, self.nodes_per_block)
        script = "#!/bin/sh\n"
        if self.worker_init:
            script += self.worker_init + "\n"
        script += wrapped + "\n"
        script_path = os.path.join(self.channel.script_dir, f"{job_name}.{self._counter}.sh")
        with open(script_path, "w") as fh:
            fh.write(script)
        os.chmod(script_path, 0o755)
        try:
            proc = self.channel.execute_no_wait(f"/bin/sh {script_path}")
        except OSError as exc:
            raise SubmitException(self.label, str(exc)) from exc
        self._processes[job_id] = proc
        return job_id

    def status(self, job_ids: List[str]) -> List[JobStatus]:
        statuses = []
        for job_id in job_ids:
            proc = self._processes.get(job_id)
            if proc is None:
                statuses.append(JobStatus(JobState.MISSING, f"unknown job {job_id}"))
                continue
            rc = proc.poll()
            if rc is None:
                statuses.append(JobStatus(JobState.RUNNING))
            elif rc == 0:
                statuses.append(JobStatus(JobState.COMPLETED, exit_code=rc))
            elif rc in (-signal.SIGTERM, -signal.SIGKILL):
                statuses.append(JobStatus(JobState.CANCELLED, exit_code=rc))
            else:
                statuses.append(JobStatus(JobState.FAILED, exit_code=rc))
        return statuses

    def cancel(self, job_ids: List[str]) -> List[bool]:
        results = []
        for job_id in job_ids:
            proc = self._processes.get(job_id)
            if proc is None:
                results.append(False)
                continue
            if proc.poll() is not None:
                # Already exited — normal for a drained block whose manager
                # shut down cleanly before the provider was asked to cancel.
                results.append(True)
                continue
            try:
                # The block was started in its own session so the whole
                # process tree (manager + workers) can be signalled together.
                os.killpg(os.getpgid(proc.pid), signal.SIGTERM)
            except (ProcessLookupError, PermissionError, OSError):
                try:
                    proc.terminate()
                except OSError:
                    pass
            results.append(True)
        return results

    @property
    def status_polling_interval(self) -> float:
        return 0.2
