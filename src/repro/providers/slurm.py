"""SlurmProvider: submit blocks as Slurm jobs (``sbatch``-style scripts)."""

from __future__ import annotations

from repro.providers.cluster import ClusterProvider


class SlurmProvider(ClusterProvider):
    """Provider for Slurm-managed clusters (the paper's Listing 1 example).

    Directives are emitted in ``#SBATCH`` form; extra ``#SBATCH`` arguments can
    be passed through ``scheduler_options`` exactly as in Parsl.
    """

    label = "slurm"
    dialect = "slurm"

    def _directive_block(self, job_name: str) -> str:
        return "\n".join(
            [
                f"#SBATCH --job-name={job_name}",
                f"#SBATCH --nodes={self.nodes_per_block}",
                f"#SBATCH --time={self.walltime}",
                f"#SBATCH --partition={self.partition}",
                "#SBATCH --exclusive",
            ]
        )
