"""TorqueProvider: PBS/Torque-managed clusters (``qsub``-style scripts)."""

from __future__ import annotations

from repro.providers.cluster import ClusterProvider


class TorqueProvider(ClusterProvider):
    """Provider emitting ``#PBS`` directives."""

    label = "torque"
    dialect = "pbs"

    def _directive_block(self, job_name: str) -> str:
        return "\n".join(
            [
                f"#PBS -N {job_name}",
                f"#PBS -l nodes={self.nodes_per_block}",
                f"#PBS -l walltime={self.walltime}",
                f"#PBS -q {self.partition}",
            ]
        )
