"""Resource-aware scheduling: per-task resource specs, priorities, placement.

The subsystem threads a :class:`~repro.scheduling.spec.ResourceSpec` from the
app decorators down to worker slots:

* :mod:`repro.scheduling.spec` — the validated, wire-serializable spec
  (cores, memory hint, walltime hint, priority, executor affinity);
* :mod:`repro.scheduling.queues` — the starvation-safe priority queue that
  replaces the FIFO pending queue in the HTEX interchange, plus the
  weighted fair-share queue the gateway service uses for multi-tenant
  admission;
* :mod:`repro.scheduling.placement` — pluggable task→manager placement
  policies (least-loaded, bin-pack, spread, random, round-robin);
* :mod:`repro.scheduling.router` — the DFK-level multi-executor router
  (label match → load-aware spillover → backpressure cap).
"""

from repro.scheduling.placement import ManagerSlot, make_placement_view
from repro.scheduling.queues import PriorityTaskQueue, WeightedFairShareQueue
from repro.scheduling.router import ExecutorRouter
from repro.scheduling.spec import ResourceSpec

__all__ = [
    "ResourceSpec",
    "PriorityTaskQueue",
    "WeightedFairShareQueue",
    "ManagerSlot",
    "make_placement_view",
    "ExecutorRouter",
]
