"""Pluggable task→manager placement policies for the HTEX interchange.

A *placement view* is built once per dispatch round from a snapshot of the
eligible managers (taken under the interchange's manager lock) and then
answers ``place(cores)`` for every task popped from the priority queue,
updating its private free-slot accounting as it assigns. This replaces the
old per-task re-scan of all eligible managers: with the default least-loaded
policy one batch dispatches in O(batch · log managers).

Policies:

* ``least_loaded`` (default) — the manager with the most free core-slots
  takes the next task; a max-heap over free capacity makes each placement
  O(log m), and since the heap top has the *most* free slots, a task that
  does not fit there fits nowhere — the fit check is a single comparison.
* ``bin_pack`` — best-fit: the fullest manager that still fits the task
  takes it, concentrating load so whole managers stay free for subsequent
  multi-core tasks (the classic decreasing-fit packing applied in priority
  order). A sorted free-list with bisect lookup keeps each placement
  O(log m) search (+ O(m) re-insert on the small per-round list).
* ``spread`` — the manager with the fewest in-flight tasks takes the next
  one, evening work across managers (a min-heap over load).
* ``random`` — the pre-subsystem behaviour: uniform choice among managers
  with room (single probe for 1-core tasks, circular scan otherwise).
* ``round_robin`` — cycle managers in connection order (the scheduling
  ablation's comparison policy); the cursor persists across rounds.
"""

from __future__ import annotations

import bisect
import heapq
import itertools
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Protocol, Tuple

#: Registered policy names, in documentation order.
PLACEMENT_POLICIES: Tuple[str, ...] = ("least_loaded", "bin_pack", "spread", "random", "round_robin")


@dataclass
class ManagerSlot:
    """One manager's mutable capacity view for a single dispatch round.

    ``free`` counts *queue* slots (workers + prefetch − in-flight cores):
    how much more the manager may buffer. ``exec_free`` counts *execution*
    slots (workers − in-flight cores): how many cores could actually run
    concurrently. A 1-core task only needs a queue slot — prefetching it is
    the paper's pipelining optimization, it runs when a worker frees. A
    multi-core task must additionally fit ``exec_free``: reserving N cores
    against buffer space that includes prefetch would let two 4-core tasks
    co-schedule on a 4-worker node. ``exec_free`` defaults to ``free`` for
    callers without a prefetch distinction (tests, benchmarks).
    """

    identity: str
    free: int          # free queue slots (workers + prefetch − in-flight cores)
    outstanding: int   # in-flight tasks, used by the spread policy
    exec_free: Optional[int] = None  # free execution slots (workers − in-flight cores)

    def __post_init__(self) -> None:
        if self.exec_free is None:
            self.exec_free = self.free

    def fits(self, cores: int) -> bool:
        if cores > self.free:
            return False
        return cores <= 1 or (self.exec_free is not None and cores <= self.exec_free)

    def consume(self, cores: int) -> None:
        self.free -= cores
        if self.exec_free is not None:
            self.exec_free -= cores


class PlacementView(Protocol):
    """What the interchange's dispatch loop drives, one round at a time."""

    def place(self, cores: int) -> Optional[str]:
        """Assign a ``cores``-slot task; returns the manager identity or
        ``None`` when no manager has that many free slots."""
        ...


class LeastLoadedView:
    """Max-heap over free slots: every placement is O(log m)."""

    def __init__(self, slots: List[ManagerSlot]):
        self._seq = itertools.count()
        self._heap: List[Tuple[int, int, ManagerSlot]] = [
            (-slot.free, next(self._seq), slot) for slot in slots if slot.free > 0
        ]
        heapq.heapify(self._heap)

    def place(self, cores: int) -> Optional[str]:
        if not self._heap or -self._heap[0][0] < cores:
            return None  # the most-free manager lacks the queue slots, so nobody fits
        if cores <= 1:
            _, _, slot = heapq.heappop(self._heap)
            return self._assign(slot, cores)
        # Multi-core: the freest-by-queue-slots manager may still lack
        # execution slots (prefetch inflates `free`), so scan down the heap.
        unfit: List[Tuple[int, int, ManagerSlot]] = []
        placed: Optional[str] = None
        while self._heap and -self._heap[0][0] >= cores:
            entry = heapq.heappop(self._heap)
            if entry[2].fits(cores):
                placed = self._assign(entry[2], cores)
                break
            unfit.append(entry)
        for entry in unfit:
            heapq.heappush(self._heap, entry)
        return placed

    def _assign(self, slot: ManagerSlot, cores: int) -> str:
        slot.consume(cores)
        if slot.free > 0:
            heapq.heappush(self._heap, (-slot.free, next(self._seq), slot))
        return slot.identity


class BinPackView:
    """Best-fit over a bisect-sorted free-list: fullest fitting manager wins."""

    def __init__(self, slots: List[ManagerSlot]):
        self._seq = itertools.count()
        self._entries: List[Tuple[int, int, ManagerSlot]] = sorted(
            (slot.free, next(self._seq), slot) for slot in slots if slot.free > 0
        )
        self._keys: List[int] = [entry[0] for entry in self._entries]

    def place(self, cores: int) -> Optional[str]:
        index = bisect.bisect_left(self._keys, cores)
        # Best fit by queue slots; for multi-core tasks walk up until the
        # execution-slot constraint is satisfied too.
        while index < len(self._entries) and not self._entries[index][2].fits(cores):
            index += 1
        if index == len(self._entries):
            return None
        _, _, slot = self._entries.pop(index)
        self._keys.pop(index)
        slot.consume(cores)
        if slot.free > 0:
            entry = (slot.free, next(self._seq), slot)
            at = bisect.bisect_left(self._keys, slot.free)
            self._entries.insert(at, entry)
            self._keys.insert(at, slot.free)
        return slot.identity


class SpreadView:
    """Min-heap over in-flight load: even tasks out across managers."""

    def __init__(self, slots: List[ManagerSlot]):
        self._seq = itertools.count()
        self._heap: List[Tuple[int, int, ManagerSlot]] = [
            (slot.outstanding, next(self._seq), slot) for slot in slots if slot.free > 0
        ]
        heapq.heapify(self._heap)

    def place(self, cores: int) -> Optional[str]:
        unfit: List[Tuple[int, int, ManagerSlot]] = []
        placed: Optional[str] = None
        while self._heap:
            load, seq, slot = heapq.heappop(self._heap)
            if not slot.fits(cores):
                unfit.append((load, seq, slot))
                continue
            slot.consume(cores)
            slot.outstanding += 1
            if slot.free > 0:
                heapq.heappush(self._heap, (slot.outstanding, next(self._seq), slot))
            placed = slot.identity
            break
        for entry in unfit:  # managers too full for THIS task may fit the next
            heapq.heappush(self._heap, entry)
        return placed


class RandomView:
    """Uniform choice among managers with room (the legacy behaviour)."""

    def __init__(self, slots: List[ManagerSlot], rng: random.Random):
        self._slots = [slot for slot in slots if slot.free > 0]
        self._rng = rng

    def place(self, cores: int) -> Optional[str]:
        n = len(self._slots)
        if n == 0:
            return None
        start = self._rng.randrange(n)
        for offset in range(n):  # circular scan; first probe fits for 1-core tasks
            slot = self._slots[(start + offset) % n]
            if slot.fits(cores):
                slot.consume(cores)
                if slot.free == 0:
                    self._slots.remove(slot)
                return slot.identity
        return None


class RoundRobinView:
    """Cycle managers in connection order; the cursor outlives the round."""

    def __init__(self, slots: List[ManagerSlot], cursor: List[int]):
        self._slots = slots
        self._cursor = cursor  # single-element mutable cell owned by the caller

    def place(self, cores: int) -> Optional[str]:
        n = len(self._slots)
        for offset in range(n):
            index = (self._cursor[0] + 1 + offset) % n
            slot = self._slots[index]
            if slot.fits(cores):
                slot.consume(cores)
                self._cursor[0] = index
                return slot.identity
        return None


def make_placement_view(
    policy: str,
    slots: List[ManagerSlot],
    rng: random.Random,
    rr_cursor: Optional[List[int]] = None,
) -> PlacementView:
    """Build the per-round placement view for ``policy``.

    ``rr_cursor`` is the round-robin policy's persistent cursor (a
    one-element list owned by the interchange); other policies ignore it.
    """
    if policy == "least_loaded":
        return LeastLoadedView(slots)
    if policy == "bin_pack":
        return BinPackView(slots)
    if policy == "spread":
        return SpreadView(slots)
    if policy == "random":
        return RandomView(slots, rng)
    if policy == "round_robin":
        return RoundRobinView(slots, rr_cursor if rr_cursor is not None else [0])
    raise ValueError(f"unknown placement policy {policy!r}; known policies: {list(PLACEMENT_POLICIES)}")
