"""The starvation-safe priority queue behind the HTEX interchange.

:class:`PriorityTaskQueue` replaces the FIFO pending deque: entries are held
in a binary heap keyed on *virtual time*, so ``put``/``pop`` are O(log n).

The key for a task enqueued at wall-clock time ``t`` with priority ``p`` is::

    vtime = t - p * aging_s

and the queue always pops the smallest ``vtime`` (ties broken by submission
order). This single static key gives both orderings the scheduler needs:

* **priority** — among tasks enqueued around the same moment, a higher
  priority means an earlier virtual time, so priority-9 work submitted behind
  a backlog of priority-0 work overtakes it immediately;
* **aging (starvation safety)** — a waiting task's *lead* over fresher,
  higher-priority work grows with real time: once a priority-0 task has
  waited ``9 * aging_s`` seconds, a newly arriving priority-9 task no longer
  jumps ahead of it. No entry can be deferred forever.

Because the key is computed once at first enqueue and travels with the item
(the ``_vtime`` stamp), re-enqueueing a dispatched task — manager loss, drain
timeout, placement deferral — restores it to its *original* position: it
keeps both its priority and the age it had accrued, rather than going to the
back of the line.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

#: Key under which an item's virtual time is stamped (and preserved across
#: requeues). Leading underscore: transport-internal, never user-facing.
VTIME_KEY = "_vtime"
#: Key under which an item's priority travels.
PRIORITY_KEY = "priority"

#: Default aging rate: one priority level is worth this many seconds of wait.
DEFAULT_AGING_S = 60.0


class PriorityTaskQueue:
    """A thread-safe priority queue over task items (dicts).

    Items are plain dicts (the interchange's wire shape). ``put`` reads the
    item's ``"priority"`` entry (default 0) and stamps ``"_vtime"``; an item
    that already carries a ``"_vtime"`` stamp is restored to that position,
    which is how requeues preserve priority and accrued age.

    The API mirrors the parts of :class:`queue.Queue` the interchange used
    (``put`` / ``empty`` / ``qsize``) plus a non-blocking ``pop``.
    """

    def __init__(self, aging_s: float = DEFAULT_AGING_S):
        if aging_s <= 0:
            raise ValueError("aging_s must be positive")
        self.aging_s = aging_s
        self._heap: List[Tuple[float, int, Dict[str, Any]]] = []
        self._lock = threading.Lock()
        self._seq = itertools.count()

    # ------------------------------------------------------------------
    def put(self, item: Dict[str, Any]) -> None:
        """Enqueue ``item`` by priority, or restore it to a stamped position."""
        vtime = item.get(VTIME_KEY)
        if not isinstance(vtime, float):
            priority = int(item.get(PRIORITY_KEY) or 0)
            vtime = time.time() - priority * self.aging_s
            item[VTIME_KEY] = vtime
        with self._lock:
            heapq.heappush(self._heap, (vtime, next(self._seq), item))

    def put_many(self, items: List[Dict[str, Any]]) -> None:
        for item in items:
            self.put(item)

    def pop(self) -> Optional[Dict[str, Any]]:
        """Remove and return the frontmost item, or ``None`` when empty."""
        with self._lock:
            if not self._heap:
                return None
            return heapq.heappop(self._heap)[2]

    # ------------------------------------------------------------------
    def empty(self) -> bool:
        with self._lock:
            return not self._heap

    def qsize(self) -> int:
        with self._lock:
            return len(self._heap)
