"""The starvation-safe priority queue behind the HTEX interchange.

:class:`PriorityTaskQueue` replaces the FIFO pending deque: entries are held
in a binary heap keyed on *virtual time*, so ``put``/``pop`` are O(log n).

The key for a task enqueued at wall-clock time ``t`` with priority ``p`` is::

    vtime = t - p * aging_s

and the queue always pops the smallest ``vtime`` (ties broken by submission
order). This single static key gives both orderings the scheduler needs:

* **priority** — among tasks enqueued around the same moment, a higher
  priority means an earlier virtual time, so priority-9 work submitted behind
  a backlog of priority-0 work overtakes it immediately;
* **aging (starvation safety)** — a waiting task's *lead* over fresher,
  higher-priority work grows with real time: once a priority-0 task has
  waited ``9 * aging_s`` seconds, a newly arriving priority-9 task no longer
  jumps ahead of it. No entry can be deferred forever.

Because the key is computed once at first enqueue and travels with the item
(the ``_vtime`` stamp), re-enqueueing a dispatched task — manager loss, drain
timeout, placement deferral — restores it to its *original* position: it
keeps both its priority and the age it had accrued, rather than going to the
back of the line.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

#: Key under which an item's virtual time is stamped (and preserved across
#: requeues). Leading underscore: transport-internal, never user-facing.
VTIME_KEY = "_vtime"
#: Key under which an item's priority travels.
PRIORITY_KEY = "priority"

#: Default aging rate: one priority level is worth this many seconds of wait.
DEFAULT_AGING_S = 60.0


class PriorityTaskQueue:
    """A thread-safe priority queue over task items (dicts).

    Items are plain dicts (the interchange's wire shape). ``put`` reads the
    item's ``"priority"`` entry (default 0) and stamps ``"_vtime"``; an item
    that already carries a ``"_vtime"`` stamp is restored to that position,
    which is how requeues preserve priority and accrued age.

    The API mirrors the parts of :class:`queue.Queue` the interchange used
    (``put`` / ``empty`` / ``qsize``) plus a non-blocking ``pop``.
    """

    def __init__(self, aging_s: float = DEFAULT_AGING_S):
        if aging_s <= 0:
            raise ValueError("aging_s must be positive")
        self.aging_s = aging_s
        self._heap: List[Tuple[float, int, Dict[str, Any]]] = []
        self._lock = threading.Lock()
        self._seq = itertools.count()

    # ------------------------------------------------------------------
    def put(self, item: Dict[str, Any]) -> None:
        """Enqueue ``item`` by priority, or restore it to a stamped position."""
        vtime = item.get(VTIME_KEY)
        if not isinstance(vtime, float):
            priority = int(item.get(PRIORITY_KEY) or 0)
            vtime = time.time() - priority * self.aging_s
            item[VTIME_KEY] = vtime
        with self._lock:
            heapq.heappush(self._heap, (vtime, next(self._seq), item))

    def put_many(self, items: List[Dict[str, Any]]) -> None:
        for item in items:
            self.put(item)

    def pop(self) -> Optional[Dict[str, Any]]:
        """Remove and return the frontmost item, or ``None`` when empty."""
        with self._lock:
            if not self._heap:
                return None
            return heapq.heappop(self._heap)[2]

    # ------------------------------------------------------------------
    def empty(self) -> bool:
        with self._lock:
            return not self._heap

    def qsize(self) -> int:
        with self._lock:
            return len(self._heap)


class _TenantLane:
    """One tenant's backlog inside a :class:`WeightedFairShareQueue`."""

    __slots__ = ("queue", "weight", "vtime")

    def __init__(self, weight: int, aging_s: float):
        self.queue = PriorityTaskQueue(aging_s=aging_s)
        self.weight = weight
        self.vtime = 0.0


class WeightedFairShareQueue:
    """Start-time fair queueing over per-tenant priority queues.

    The gateway service admits many tenants into one DataFlowKernel; this
    queue decides *whose* task is dispensed next so a chatty tenant cannot
    starve the others. Each tenant owns a :class:`PriorityTaskQueue` lane
    (so intra-tenant priority and aging still apply) plus a **virtual time**:

    * popping a task from a lane advances that lane's virtual time by
      ``cost / weight`` (cost = the item's ``cores``, default 1), so a
      weight-10 tenant's clock runs ten times slower per unit of service —
      over any backlogged interval it receives ~10× the throughput of a
      weight-1 tenant;
    * :meth:`pop` always serves the backlogged lane with the smallest
      virtual time, which is the classic SFQ approximation of weighted
      processor sharing;
    * a lane that *becomes* backlogged after idling has its clock advanced
      to the system virtual time (the clock of the lane last served), so
      idle tenants accumulate no credit — they resume sharing from "now"
      rather than replaying their idle period as a burst.

    Thread-safe; pops are O(tenants) (the tenant population of one gateway
    is small — the per-task log n cost stays inside the lanes).
    """

    def __init__(self, default_weight: int = 1, aging_s: float = DEFAULT_AGING_S):
        if default_weight < 1:
            raise ValueError("default_weight must be >= 1")
        if aging_s <= 0:
            raise ValueError("aging_s must be positive")
        self.default_weight = default_weight
        self.aging_s = aging_s
        self._lanes: Dict[str, _TenantLane] = {}
        self._lock = threading.Lock()
        #: System virtual time: the pre-service clock of the last lane served.
        self._vclock = 0.0

    # ------------------------------------------------------------------
    def _lane(self, tenant: str) -> _TenantLane:
        lane = self._lanes.get(tenant)
        if lane is None:
            lane = _TenantLane(self.default_weight, self.aging_s)
            lane.vtime = self._vclock
            self._lanes[tenant] = lane
        return lane

    def set_weight(self, tenant: str, weight: int) -> None:
        """Set a tenant's fair-share weight (creating its lane if needed)."""
        if weight < 1:
            raise ValueError("weight must be >= 1")
        with self._lock:
            self._lane(tenant).weight = weight

    def weight_of(self, tenant: str) -> int:
        with self._lock:
            lane = self._lanes.get(tenant)
            return lane.weight if lane is not None else self.default_weight

    # ------------------------------------------------------------------
    def put(self, tenant: str, item: Dict[str, Any]) -> None:
        """Enqueue one task item on the tenant's lane."""
        with self._lock:
            lane = self._lane(tenant)
            if lane.queue.empty():
                # Newly backlogged: no credit for the idle period.
                lane.vtime = max(lane.vtime, self._vclock)
            lane.queue.put(item)

    def pop(self) -> Optional[Tuple[str, Dict[str, Any]]]:
        """Serve the backlogged tenant with the smallest virtual time.

        Returns ``(tenant, item)`` or ``None`` when every lane is empty.
        """
        with self._lock:
            best: Optional[Tuple[str, _TenantLane]] = None
            for tenant, lane in self._lanes.items():
                if lane.queue.empty():
                    continue
                if best is None or lane.vtime < best[1].vtime:
                    best = (tenant, lane)
            if best is None:
                return None
            tenant, lane = best
            item = lane.queue.pop()
            assert item is not None  # lane was non-empty under the lock
            self._vclock = lane.vtime
            cost = float(item.get("cores") or 1)
            lane.vtime += cost / lane.weight
            return tenant, item

    # ------------------------------------------------------------------
    def qsize(self, tenant: Optional[str] = None) -> int:
        with self._lock:
            if tenant is not None:
                lane = self._lanes.get(tenant)
                return lane.queue.qsize() if lane is not None else 0
            return sum(lane.queue.qsize() for lane in self._lanes.values())

    def empty(self) -> bool:
        with self._lock:
            return all(lane.queue.empty() for lane in self._lanes.values())

    def backlog(self) -> Dict[str, int]:
        """Per-tenant queued counts (includes zero-backlog known tenants)."""
        with self._lock:
            return {tenant: lane.queue.qsize() for tenant, lane in self._lanes.items()}
