"""The DFK-level multi-executor router.

Replaces the DataFlowKernel's hardcoded executor choice (random pick among
healthy executors) with a three-stage decision:

1. **label match** — the candidate set is the spec's ``executors`` affinity
   when given, else the app decorator's ``executors=`` hint, else every
   configured executor. Unknown labels raise
   :class:`~repro.errors.NoSuchExecutorError` at submit time.
2. **load-aware spillover** — among healthy candidates, pick the one with
   the lowest load score (outstanding tasks per connected worker); ties are
   broken randomly, so an idle fleet behaves exactly like the old random
   choice while a hot executor sheds new work to its peers.
3. **backpressure cap** — with ``Config.router_backpressure`` set, an
   executor already holding that many outstanding tasks is not considered
   while any candidate is below the cap; when every candidate is saturated
   the least-loaded one is used (the cap bounds skew, not admission).

The router holds no state of its own beyond the executor table reference, so
it is safe to call from both the submitting thread and the dispatcher.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Union

from repro.errors import NoSuchExecutorError, ResourceSpecError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.executors.base import ReproExecutor
    from repro.scheduling.spec import ResourceSpec

#: The pseudo-label join apps run under (locally, inside the DFK).
INTERNAL_EXECUTOR = "_dfk_internal"


class ExecutorRouter:
    """Route each task to one executor label.

    One router instance lives on the DataFlowKernel
    (``DataFlowKernel._choose_executor`` delegates here for every task).
    The gateway's :class:`~repro.service.shard.ShardRouter` reuses the same
    load-aware/random-tie-break policy shape at the coarser tenant→kernel
    grain.
    """

    def __init__(
        self,
        executors: Dict[str, "ReproExecutor"],
        rng: Optional[random.Random] = None,
        backpressure: Optional[int] = None,
    ):
        """Wrap the DFK's executor table.

        :param executors: label → executor mapping (shared, not copied —
            the router always sees the DFK's current fleet).
        :param rng: tie-break randomness source; injectable for
            deterministic tests.
        :param backpressure: ``Config.router_backpressure`` — outstanding
            cap per executor before new work spills to peers; ``None``
            disables the cap.
        """
        if backpressure is not None and backpressure < 1:
            raise ValueError("backpressure must be >= 1 when set")
        self.executors = executors
        self.backpressure = backpressure
        self._rng = rng or random.Random()

    # ------------------------------------------------------------------
    def route(
        self,
        requested: Union[str, Sequence[str], None] = "all",
        spec: Optional["ResourceSpec"] = None,
        join: bool = False,
    ) -> str:
        """Pick the executor label for one task.

        :param requested: the app decorator's ``executors=`` hint — a
            label, a sequence of labels, or ``"all"``/``None`` for any.
            A spec-level ``executors`` affinity overrides it.
        :param spec: the task's :class:`ResourceSpec`; a non-default spec
            restricts candidates to executors that support specs (and a
            multi-core spec with no capable candidate raises
            :class:`~repro.errors.ResourceSpecError`).
        :param join: join apps bypass routing and run inside the DFK
            (:data:`INTERNAL_EXECUTOR`).
        :raises NoSuchExecutorError: for a label not in the config.
        """
        if join:
            return INTERNAL_EXECUTOR
        candidates = self._candidate_labels(requested, spec)
        if spec is not None and not spec.is_default:
            # A non-default spec needs an executor that honors it: one that
            # rejects specs (LLEX) would fail the task terminally, one that
            # ignores them (thread pool) would silently drop the cores
            # reservation.
            capable = [
                label for label in candidates if self.executors[label].supports_resource_specs
            ]
            if capable:
                candidates = capable
            elif spec.cores > 1:
                # A cores reservation is a hard constraint — silently running
                # a 64-core task as one slot would be wrong, so refuse in the
                # submitter's stack. Advisory fields (priority, hints)
                # degrade gracefully instead: the candidate executors simply
                # ignore or reject them on their own terms.
                raise ResourceSpecError(
                    f"task asks for {spec.cores} cores but none of the candidate executors "
                    f"{candidates} supports per-task resource specifications"
                )
        healthy = [label for label in candidates if not self.executors[label].bad_state_is_set]
        if not healthy:
            # Every candidate is bad: keep the requested placement; the
            # submission failure flows through the normal retry path.
            healthy = candidates
        return self._pick_least_loaded(healthy)

    # ------------------------------------------------------------------
    def _candidate_labels(
        self, requested: Union[str, Sequence[str], None], spec: Optional["ResourceSpec"]
    ) -> List[str]:
        labels: List[str]
        if spec is not None and spec.executors is not None:
            labels = list(spec.executors)
        elif requested == "all" or requested is None:
            labels = list(self.executors)
        elif isinstance(requested, str):
            labels = [requested]
        else:
            labels = [label for label in requested if label is not None]
            if not labels:
                labels = list(self.executors)
        for label in labels:
            if label not in self.executors:
                raise NoSuchExecutorError(label, list(self.executors))
        return labels

    def _load_score(self, label: str) -> float:
        executor = self.executors[label]
        return executor.outstanding / max(executor.connected_workers, 1)

    def _pick_least_loaded(self, labels: List[str]) -> str:
        if len(labels) == 1:
            return labels[0]
        if self.backpressure is not None:
            below_cap = [
                label for label in labels if self.executors[label].outstanding < self.backpressure
            ]
            if below_cap:
                labels = below_cap
        # Snapshot the scores once: executors' outstanding counters move
        # concurrently (result callbacks), and re-reading them between the
        # min() and the filter could leave no label matching the minimum.
        scores = {label: self._load_score(label) for label in labels}
        best_score = min(scores.values())
        best = [label for label, score in scores.items() if score == best_score]
        return self._rng.choice(best)
