"""Per-task resource specifications.

A :class:`ResourceSpec` is the unit of information the scheduling subsystem
threads from an app invocation down to worker slots: how many worker
core-slots the task occupies, advisory memory and walltime hints, a dispatch
priority, and an optional executor-label affinity. The spec is immutable,
validates on construction, and serializes to a minimal dict (the *wire form*)
so that the default spec costs nothing on the hot path — an all-default spec
serializes to ``{}``, which is exactly what executors received before this
subsystem existed.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from repro.errors import ResourceSpecError

#: Keys accepted in a user-supplied resource specification mapping.
ALLOWED_KEYS: Tuple[str, ...] = ("cores", "memory_mb", "walltime_s", "priority", "executors")

#: Anything :meth:`ResourceSpec.from_user` accepts.
ResourceSpecLike = Union["ResourceSpec", Mapping[str, Any], None]


@dataclass(frozen=True)
class ResourceSpec:
    """What one task asks of the scheduling layer.

    * ``cores`` — worker core-slots the task occupies on one manager; a
      multi-core task is dispatched only to a manager with that many free
      slots, all consumed on that single manager (no fragment spans nodes).
    * ``memory_mb`` — advisory memory footprint. Managers do not meter
      memory, so this is a placement *hint* recorded for monitoring, not an
      enforced limit.
    * ``walltime_s`` — runtime limit, *enforced at the worker* on
      spec-capable executors (HTEX/EXEX): a task still running past it is
      killed and fails through its AppFuture with
      :class:`~repro.errors.TaskWalltimeExceeded`, which the DFK never
      retries. On executors without spec support it degrades to an advisory
      hint (like the app-level ``walltime=`` keyword's thread-based check).
    * ``priority`` — dispatch priority; higher runs sooner. Queues age
      waiting tasks so low priorities cannot starve (see
      :class:`~repro.scheduling.queues.PriorityTaskQueue`).
    * ``executors`` — executor labels the task may run on; overrides the
      decorator-level ``executors=`` hint when given.
    """

    cores: int = 1
    memory_mb: Optional[int] = None
    walltime_s: Optional[float] = None
    priority: int = 0
    executors: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        if not isinstance(self.cores, int) or isinstance(self.cores, bool) or self.cores < 1:
            raise ResourceSpecError(f"cores must be a positive integer, got {self.cores!r}")
        if self.memory_mb is not None and (
            not isinstance(self.memory_mb, int) or isinstance(self.memory_mb, bool) or self.memory_mb < 1
        ):
            raise ResourceSpecError(f"memory_mb must be a positive integer, got {self.memory_mb!r}")
        if self.walltime_s is not None:
            if not isinstance(self.walltime_s, (int, float)) or isinstance(self.walltime_s, bool):
                raise ResourceSpecError(f"walltime_s must be a number, got {self.walltime_s!r}")
            if self.walltime_s <= 0:
                raise ResourceSpecError(f"walltime_s must be positive, got {self.walltime_s!r}")
        if not isinstance(self.priority, int) or isinstance(self.priority, bool):
            raise ResourceSpecError(f"priority must be an integer, got {self.priority!r}")
        if self.executors is not None:
            if isinstance(self.executors, str) or not all(
                isinstance(label, str) and label for label in self.executors
            ):
                raise ResourceSpecError(
                    f"executors must be a sequence of non-empty labels, got {self.executors!r}"
                )
            if not tuple(self.executors):
                raise ResourceSpecError(
                    "executors affinity must not be empty; omit the key to allow any executor"
                )
            object.__setattr__(self, "executors", tuple(self.executors))

    # ------------------------------------------------------------------
    @classmethod
    def from_user(cls, value: ResourceSpecLike) -> "ResourceSpec":
        """Normalize user input: ``None``, a mapping, or a ready spec.

        Unknown mapping keys raise :class:`~repro.errors.ResourceSpecError`
        (listing the permitted keys) rather than being silently dropped — a
        typoed ``"core"`` must not demote a 16-core task to one slot.
        """
        if value is None:
            return DEFAULT_SPEC
        if isinstance(value, ResourceSpec):
            return value
        if not isinstance(value, Mapping):
            raise ResourceSpecError(
                f"resource specification must be a mapping or ResourceSpec, got {type(value).__name__}"
            )
        unknown = sorted(set(value) - set(ALLOWED_KEYS))
        if unknown:
            raise ResourceSpecError(
                f"unknown resource specification keys {unknown}; allowed keys are {list(ALLOWED_KEYS)}"
            )
        kwargs: Dict[str, Any] = dict(value)
        executors = kwargs.get("executors")
        if isinstance(executors, str):
            kwargs["executors"] = (executors,)
        elif executors is not None:
            kwargs["executors"] = tuple(executors)
        return cls(**kwargs)

    def with_priority(self, priority: int) -> "ResourceSpec":
        """A copy of this spec with ``priority`` replaced."""
        return replace(self, priority=priority)

    # ------------------------------------------------------------------
    @property
    def is_default(self) -> bool:
        """True when the spec requests nothing beyond the pre-spec defaults."""
        return self == DEFAULT_SPEC

    def to_wire(self) -> Dict[str, Any]:
        """Minimal dict form: only non-default fields, ``{}`` for the default.

        This is what lands in ``TaskRecord.resource_specification`` and in
        ``submit_batch`` requests, so executors that predate the scheduling
        subsystem (and tests asserting on the old shape) see exactly the
        empty dict they always did.
        """
        wire: Dict[str, Any] = {}
        if self.cores != 1:
            wire["cores"] = self.cores
        if self.memory_mb is not None:
            wire["memory_mb"] = self.memory_mb
        if self.walltime_s is not None:
            wire["walltime_s"] = self.walltime_s
        if self.priority != 0:
            wire["priority"] = self.priority
        if self.executors is not None:
            wire["executors"] = list(self.executors)
        return wire

    @classmethod
    def from_wire(cls, wire: Optional[Mapping[str, Any]]) -> "ResourceSpec":
        """Inverse of :meth:`to_wire` (also tolerates user-shaped mappings)."""
        return cls.from_user(wire or None)


#: The shared all-default spec (``to_wire() == {}``).
DEFAULT_SPEC = ResourceSpec()
