"""Serialization facilities used to ship tasks and results between processes."""

from repro.serialize.facade import (
    serialize,
    deserialize,
    pack_apply_message,
    unpack_apply_message,
    serialize_callable,
    serialize_object,
    deserialize_object,
)

__all__ = [
    "serialize",
    "deserialize",
    "serialize_callable",
    "pack_apply_message",
    "unpack_apply_message",
    "serialize_object",
    "deserialize_object",
]
