"""Task and object serialization.

The paper (§3.2) states that any picklable Python object can be passed into
or out of an App. Parsl itself uses a layered serializer (pickle first,
falling back to dill for interactively defined functions and closures). We
reproduce that design with two concrete serializers:

* :class:`PickleSerializer` — the fast path for ordinary objects and
  module-level functions.
* :class:`CodeSerializer` — a fallback that serializes functions by value
  (code object + closure + defaults) so that functions defined in
  ``__main__`` or in a Jupyter-style interactive session can still be shipped
  to worker processes, which is exactly the capability dill provides to Parsl.

Each serialized buffer is prefixed with a 2-byte method tag so the receiving
side knows which deserializer to apply. ``pack_apply_message`` /
``unpack_apply_message`` bundle a function with its args/kwargs, which is the
unit the execution kernel (§4.3) deserializes on the worker.
"""

from __future__ import annotations

import importlib
import marshal
import pickle
import sys
import threading
import types
import weakref
from typing import Any, Callable, Dict, List, Sequence, Tuple

from repro.errors import DeserializationError, SerializationError

# Method tags. Two bytes, ASCII, so buffers remain debuggable in logs.
_TAG_PICKLE = b"01"
_TAG_CODE = b"02"
_HEADER_LEN = 2


class PickleSerializer:
    """Plain pickle serialization (protocol = highest available)."""

    tag = _TAG_PICKLE

    def serialize(self, obj: Any) -> bytes:
        return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)

    def deserialize(self, payload: bytes) -> Any:
        return pickle.loads(payload)


def _referenced_names(code) -> set:
    """All global names referenced by a code object, including nested code."""
    names = set(code.co_names)
    for const in code.co_consts:
        if isinstance(const, types.CodeType):
            names |= _referenced_names(const)
    return names


class CodeSerializer:
    """Serialize functions by value (the role dill plays for Parsl).

    This covers plain Python functions — including those defined in
    ``__main__`` or a Jupyter-style session, which pickle can only serialize
    by reference and which therefore cannot be resolved inside a worker
    process. The function's code object, defaults, closure cells, and the
    *globals it references* are captured:

    * referenced modules are recorded by name and re-imported on the worker,
    * referenced functions are recursively serialized by value,
    * other referenced values are pickled,
    * anything unserializable is silently dropped (the function will raise a
      NameError on the worker if it actually needs it, which is the clearest
      possible failure).
    """

    tag = _TAG_CODE

    def serialize(self, obj: Any, _depth: int = 0) -> bytes:
        if not isinstance(obj, types.FunctionType):
            raise SerializationError(f"object of type {type(obj)!r} (code serializer handles functions only)")
        code_bytes = marshal.dumps(obj.__code__)
        defaults = pickle.dumps(obj.__defaults__, protocol=pickle.HIGHEST_PROTOCOL)
        kwdefaults = pickle.dumps(obj.__kwdefaults__, protocol=pickle.HIGHEST_PROTOCOL)
        closure_entries: Tuple[Tuple[str, Any], ...] = ()
        if obj.__closure__:
            closure_entries = tuple(
                self._encode_closure_value(obj, cell.cell_contents, _depth) for cell in obj.__closure__
            )
        closure = pickle.dumps(closure_entries, protocol=pickle.HIGHEST_PROTOCOL)
        name = obj.__name__.encode("utf-8")
        captured = self._capture_globals(obj, _depth)
        parts = [code_bytes, defaults, kwdefaults, closure, name, captured]
        return pickle.dumps(parts, protocol=pickle.HIGHEST_PROTOCOL)

    def _encode_closure_value(self, owner: types.FunctionType, value: Any, depth: int) -> Tuple[str, Any]:
        """Encode one closure cell: plain values pickle, functions go by value, self-references are marked."""
        if value is owner:
            return ("self", None)
        if isinstance(value, types.FunctionType):
            try:
                return ("pickle", pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))
            except Exception:
                if depth > 3:
                    raise SerializationError(f"closure of {owner.__name__} nests functions too deeply")
                return ("code", self.serialize(value, _depth=depth + 1))
        return ("pickle", pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))

    def _capture_globals(self, obj: types.FunctionType, depth: int) -> Dict[str, Tuple[str, Any]]:
        captured: Dict[str, Tuple[str, Any]] = {}
        if depth > 3:
            return captured
        for global_name in _referenced_names(obj.__code__):
            if global_name not in obj.__globals__:
                continue
            value = obj.__globals__[global_name]
            if value is obj:
                captured[global_name] = ("self", None)
            elif isinstance(value, types.ModuleType):
                captured[global_name] = ("module", value.__name__)
            elif isinstance(value, types.FunctionType):
                try:
                    captured[global_name] = ("pickle", pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))
                except Exception:
                    try:
                        captured[global_name] = ("code", self.serialize(value, _depth=depth + 1))
                    except Exception:
                        continue
            else:
                try:
                    captured[global_name] = ("pickle", pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))
                except Exception:
                    continue
        return captured

    def deserialize(self, payload: bytes) -> Any:
        parts = pickle.loads(payload)
        code_bytes, defaults_b, kwdefaults_b, closure_b, name_b = parts[:5]
        captured: Dict[str, Tuple[str, Any]] = parts[5] if len(parts) > 5 else {}
        code = marshal.loads(code_bytes)
        defaults = pickle.loads(defaults_b)
        kwdefaults = pickle.loads(kwdefaults_b)
        closure_entries = pickle.loads(closure_b)
        closure = None
        self_cells = []
        if closure_entries:
            cells = []
            for kind, value in closure_entries:
                if kind == "self":
                    cell = types.CellType()
                    self_cells.append(cell)
                elif kind == "code":
                    cell = types.CellType(self.deserialize(value))
                else:
                    cell = types.CellType(pickle.loads(value))
                cells.append(cell)
            closure = tuple(cells)
        globals_ns: Dict[str, Any] = {"__builtins__": __builtins__}
        self_names = []
        for global_name, (kind, value) in captured.items():
            if kind == "module":
                try:
                    globals_ns[global_name] = importlib.import_module(value)
                except ImportError:
                    continue
            elif kind == "pickle":
                globals_ns[global_name] = pickle.loads(value)
            elif kind == "code":
                globals_ns[global_name] = self.deserialize(value)
            elif kind == "self":
                self_names.append(global_name)
        func = types.FunctionType(code, globals_ns, name_b.decode("utf-8"), defaults, closure)
        if kwdefaults:
            func.__kwdefaults__ = kwdefaults
        for global_name in self_names:
            globals_ns[global_name] = func
        for cell in self_cells:
            cell.cell_contents = func
        return func


_SERIALIZERS = {
    _TAG_PICKLE: PickleSerializer(),
    _TAG_CODE: CodeSerializer(),
}


def _needs_by_value(func: types.FunctionType) -> bool:
    """True when pickling-by-reference would not resolve on a worker.

    Functions defined in ``__main__`` (scripts, notebooks, the REPL) pickle
    fine on the submit side but cannot be looked up inside a worker whose
    ``__main__`` is the worker-pool entry point, so they must travel by value.
    Lambdas and nested functions fail to pickle outright and are also caught
    here to avoid a wasted attempt.
    """
    module = getattr(func, "__module__", None)
    if module in (None, "__main__", "__mp_main__"):
        return True
    if func.__qualname__ != func.__name__:  # nested function or method-local lambda
        return True
    if func.__name__ == "<lambda>":
        return True
    return False


def serialize(obj: Any) -> bytes:
    """Serialize ``obj`` to a tagged byte buffer.

    Pickle is the fast path for ordinary objects and importable functions;
    functions that a worker process could not resolve by name (defined in
    ``__main__``, lambdas, closures) are serialized by value instead.
    """
    if isinstance(obj, types.FunctionType) and _needs_by_value(obj):
        try:
            return _TAG_CODE + _SERIALIZERS[_TAG_CODE].serialize(obj)
        except Exception:
            pass  # fall through to pickle, which may still work for this object
    try:
        return _TAG_PICKLE + _SERIALIZERS[_TAG_PICKLE].serialize(obj)
    except Exception as pickle_exc:
        if isinstance(obj, types.FunctionType):
            try:
                return _TAG_CODE + _SERIALIZERS[_TAG_CODE].serialize(obj)
            except Exception as code_exc:
                raise SerializationError(repr(obj), code_exc) from code_exc
        raise SerializationError(repr(obj), pickle_exc) from pickle_exc


def deserialize(buffer: bytes) -> Any:
    """Inverse of :func:`serialize`."""
    if len(buffer) < _HEADER_LEN:
        raise DeserializationError(f"buffer too short to contain a header: {buffer!r}")
    tag, payload = buffer[:_HEADER_LEN], buffer[_HEADER_LEN:]
    serializer = _SERIALIZERS.get(tag)
    if serializer is None:
        raise DeserializationError(f"unknown serialization tag {tag!r}")
    try:
        return serializer.deserialize(payload)
    except DeserializationError:
        raise
    except Exception as exc:
        raise DeserializationError(f"failed to deserialize payload: {exc!r}") from exc


# Aliases matching the Parsl-internal naming, used in a couple of places for
# readability ("object" vs "task bundle").
serialize_object = serialize
deserialize_object = deserialize


# ---------------------------------------------------------------------------
# Cached callable serialization (the batched-dispatch fast path)
# ---------------------------------------------------------------------------

#: func -> serialized buffer, held weakly so app bodies can be collected.
_CALLABLE_CACHE: "weakref.WeakKeyDictionary[Callable, bytes]" = weakref.WeakKeyDictionary()
_CALLABLE_CACHE_LOCK = threading.Lock()


def serialize_callable(func: Callable) -> bytes:
    """Serialize ``func``, memoizing by-reference buffers process-wide.

    A batch of N tasks sharing one app body pays the function-serialization
    cost once instead of N times; repeated batches pay it once per process.

    Only buffers that actually took the pickle-by-*reference* path (a
    qualified-name lookup, tag ``01``) are cached: those bytes are a pure
    function of the callable's identity. Anything that ended up serialized
    by *value* — ``__main__`` functions, lambdas, closures, and module-level
    functions whose name has been rebound (e.g. by an ``@python_app``
    decorator) — snapshots mutable state such as closure cells and captured
    globals, and is re-serialized on every call so later mutations are seen.
    """
    if not isinstance(func, types.FunctionType) or _needs_by_value(func):
        return serialize(func)
    if not _resolves_to_self(func):
        # The module name no longer resolves to this function (it was
        # rebound after we cached it); a by-reference buffer would make the
        # worker execute whatever the name points at *now*. Drop the entry
        # and re-serialize, which falls back to by-value.
        with _CALLABLE_CACHE_LOCK:
            _CALLABLE_CACHE.pop(func, None)
        return serialize(func)
    with _CALLABLE_CACHE_LOCK:
        cached = _CALLABLE_CACHE.get(func)
    if cached is not None:
        return cached
    buffer = serialize(func)
    if buffer[:_HEADER_LEN] == _TAG_PICKLE:
        with _CALLABLE_CACHE_LOCK:
            _CALLABLE_CACHE[func] = buffer
    return buffer


def _resolves_to_self(func: types.FunctionType) -> bool:
    """True when ``func.__module__.__name__`` still looks up ``func`` itself —
    pickle's by-reference precondition, re-checked on every cache access."""
    module = sys.modules.get(func.__module__)
    return module is not None and getattr(module, func.__name__, None) is func


class ByValueCallable:
    """Pickle adapter that transports a function by value inside containers.

    Arguments to an App are pickled as ordinary containers; if one of those
    arguments is itself a function defined in ``__main__`` (e.g. the user's
    bash-app body handed to the remote bash executor), plain pickle would
    serialize it by reference and the worker could not resolve it. Wrapping
    it in this adapter routes it through the by-value code serializer.
    """

    def __init__(self, func: types.FunctionType):
        self._buffer = serialize(func)

    def __reduce__(self):
        return (deserialize, (self._buffer,))


def _transportable(value: Any) -> Any:
    """Shallow transform applied to each App argument before pickling."""
    if isinstance(value, types.FunctionType) and _needs_by_value(value):
        return ByValueCallable(value)
    return value


def pack_apply_message(func: Callable, args: Sequence[Any], kwargs: Dict[str, Any]) -> bytes:
    """Bundle a function application (func, args, kwargs) into one buffer.

    Each element is serialized independently so a pickling failure points at
    the offending element rather than the whole bundle. Top-level arguments
    that are interactively defined functions are transported by value.
    """
    safe_args = [_transportable(a) for a in args]
    safe_kwargs = {k: _transportable(v) for k, v in kwargs.items()}
    parts: List[bytes] = [serialize_callable(func), serialize(safe_args), serialize(safe_kwargs)]
    return pickle.dumps(parts, protocol=pickle.HIGHEST_PROTOCOL)


def unpack_apply_message(buffer: bytes) -> Tuple[Callable, List[Any], Dict[str, Any]]:
    """Inverse of :func:`pack_apply_message`."""
    try:
        func_b, args_b, kwargs_b = pickle.loads(buffer)
    except Exception as exc:
        raise DeserializationError(f"malformed apply message: {exc!r}") from exc
    return deserialize(func_b), deserialize(args_b), deserialize(kwargs_b)
