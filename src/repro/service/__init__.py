"""The multi-tenant workflow gateway service.

One :class:`~repro.service.gateway.WorkflowGateway` serves one or more
DataFlowKernel **shards** to many concurrent remote tenants:
token-authenticated sessions, weighted fair-share admission, per-tenant
backpressure, streamed results with reconnect-and-resume. A
:class:`~repro.service.shard.ShardRouter` places tenants across shards
(consistent hashing with load-aware spillover), and an optional
:class:`~repro.service.store.SessionStore` makes sessions **durable**: a
write-ahead SQLite log from which a restarted gateway resumes every
session without losing an acknowledged result.
:class:`~repro.service.client.ServiceClient` is the tenant-side handle;
its ``submit()`` mirrors a local app invocation.

:class:`~repro.service.http_edge.HttpEdge` fronts the same gateway with an
HTTP/1.1 + Server-Sent-Events surface for non-pickle clients, and
:class:`~repro.service.aclient.AsyncServiceClient` is the asyncio SDK that
speaks it (429/503 backoff, SSE resume, session recovery).

See ``docs/architecture/gateway.md`` and ``docs/architecture/http-edge.md``
for the wire protocol, ``docs/OPERATIONS.md`` for deployment topologies and
tuning, and ``examples/service_clients.py`` / ``examples/http_service.py``
for runnable tours.
"""

from repro.service.aclient import AsyncServiceClient, AsyncTaskHandle, RetryPolicy
from repro.service.api_types import (
    SessionInfo,
    StreamEvent,
    TaskAccepted,
    TaskStatus,
    TaskSubmit,
    TenantStats,
)
from repro.service.client import ServiceClient, ServiceFuture
from repro.service.gateway import WorkflowGateway
from repro.service.http_edge import HttpEdge
from repro.service.shard import GatewayShard, ShardRouter
from repro.service.store import SessionStore

__all__ = [
    "WorkflowGateway",
    "GatewayShard",
    "ShardRouter",
    "SessionStore",
    "ServiceClient",
    "ServiceFuture",
    "HttpEdge",
    "AsyncServiceClient",
    "AsyncTaskHandle",
    "RetryPolicy",
    "SessionInfo",
    "StreamEvent",
    "TaskAccepted",
    "TaskStatus",
    "TaskSubmit",
    "TenantStats",
]
