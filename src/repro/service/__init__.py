"""The multi-tenant workflow gateway service.

One :class:`~repro.service.gateway.WorkflowGateway` serves a single
DataFlowKernel to many concurrent remote tenants: token-authenticated
sessions, weighted fair-share admission, per-tenant backpressure, streamed
results with reconnect-and-resume. :class:`~repro.service.client.ServiceClient`
is the tenant-side handle; its ``submit()`` mirrors a local app invocation.

:class:`~repro.service.http_edge.HttpEdge` fronts the same gateway with an
HTTP/1.1 + Server-Sent-Events surface for non-pickle clients, and
:class:`~repro.service.aclient.AsyncServiceClient` is the asyncio SDK that
speaks it (429 backoff, SSE resume, session recovery).

See ``docs/ARCHITECTURE.md`` ("Gateway service" and "HTTP edge") for the
wire protocol and the tunables table, and ``examples/service_clients.py`` /
``examples/http_service.py`` for runnable tours.
"""

from repro.service.aclient import AsyncServiceClient, AsyncTaskHandle, RetryPolicy
from repro.service.api_types import (
    SessionInfo,
    StreamEvent,
    TaskAccepted,
    TaskStatus,
    TaskSubmit,
    TenantStats,
)
from repro.service.client import ServiceClient, ServiceFuture
from repro.service.gateway import WorkflowGateway
from repro.service.http_edge import HttpEdge

__all__ = [
    "WorkflowGateway",
    "ServiceClient",
    "ServiceFuture",
    "HttpEdge",
    "AsyncServiceClient",
    "AsyncTaskHandle",
    "RetryPolicy",
    "SessionInfo",
    "StreamEvent",
    "TaskAccepted",
    "TaskStatus",
    "TaskSubmit",
    "TenantStats",
]
