"""The multi-tenant workflow gateway service.

One :class:`~repro.service.gateway.WorkflowGateway` serves a single
DataFlowKernel to many concurrent remote tenants: token-authenticated
sessions, weighted fair-share admission, per-tenant backpressure, streamed
results with reconnect-and-resume. :class:`~repro.service.client.ServiceClient`
is the tenant-side handle; its ``submit()`` mirrors a local app invocation.

See ``docs/ARCHITECTURE.md`` ("Gateway service") for the wire protocol and
the tunables table, and ``examples/service_clients.py`` for a runnable tour.
"""

from repro.service.client import ServiceClient, ServiceFuture
from repro.service.gateway import WorkflowGateway

__all__ = ["WorkflowGateway", "ServiceClient", "ServiceFuture"]
