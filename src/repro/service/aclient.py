"""Asyncio SDK for the HTTP/SSE edge.

:class:`AsyncServiceClient` is the Python-native way to talk to
:class:`~repro.service.http_edge.HttpEdge`: an ``async with`` client that
opens a gateway session, submits arbitrary callables (pickled through the
same ``pack_apply_message`` buffers TCP clients send), and resolves each
submission's :class:`asyncio.Future` from a single Server-Sent-Events
stream — no polling.

The client is built for the edge's failure surface:

* **Backpressure** — a 429 reply is retried with jittered exponential
  backoff (honouring the server's ``retry_after_s`` hint) using the *same*
  ``client_task_id``, so a retry that races a late acceptance deduplicates
  at the gateway instead of running twice.
* **Disconnects** — the SSE consumer reconnects with ``Last-Event-ID``, and
  the gateway replays exactly the unseen results. Futures resolve at most
  once, so replay overlap is harmless.
* **Session loss** (gateway restart / TTL eviction) — a 410 reply triggers
  recovery: open a fresh session and resubmit every unresolved task from
  its stored buffer. Callers just keep awaiting their original futures.
* **Transport faults** — every request retries on connection errors with
  backoff across a bounded keep-alive connection pool.

Everything rides stdlib ``asyncio`` streams; there is no third-party HTTP
dependency. The transport is deliberately minimal (HTTP/1.1,
``Content-Length`` bodies) because the edge is the only server it speaks to.
"""

from __future__ import annotations

import asyncio
import base64
import json
import logging
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple
from urllib.parse import urlsplit

from repro.errors import HttpEdgeError, ServiceError, SessionExpiredError
from repro.serialize import deserialize, pack_apply_message
from repro.service.api_types import (
    SessionInfo,
    StreamEvent,
    TaskAccepted,
    TaskStatus,
    TenantStats,
    make_task_id,
)

logger = logging.getLogger(__name__)


@dataclass
class RetryPolicy:
    """Jittered exponential backoff for transport faults and 429 replies.

    ``attempts`` bounds *consecutive* failures of one logical operation; a
    success resets the clock. ``rng`` is injectable so tests can pin the
    jitter.
    """

    attempts: int = 8
    base_s: float = 0.05
    max_s: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.5
    rng: random.Random = field(default_factory=random.Random)

    def delay(self, attempt: int, floor: Optional[float] = None) -> float:
        """Backoff before retry number ``attempt`` (0-based)."""
        raw = min(self.max_s, self.base_s * (self.multiplier ** attempt))
        jittered = raw * (1.0 + self.jitter * (self.rng.random() * 2 - 1))
        if floor is not None:
            jittered = max(jittered, floor)
        return max(0.0, jittered)


class AsyncTaskHandle:
    """One submitted task: await :meth:`result` for the value (or raise)."""

    def __init__(self, client: "AsyncServiceClient", client_task_id: int):
        self._client = client
        self.client_task_id = client_task_id
        self.future: asyncio.Future = asyncio.get_running_loop().create_future()
        #: Server-assigned end-to-end trace id from the 202 acknowledgement
        #: (``None`` when tracing is disabled server-side); keys the span
        #: waterfall in the monitoring store (``tools/trace_report.py``).
        self.trace_id: Optional[str] = None

    @property
    def task_id(self) -> str:
        """The current HTTP task id (changes if the session is recovered)."""
        return make_task_id(self._client.session.session, self.client_task_id)

    def done(self) -> bool:
        """True once the task's future has resolved (result or exception)."""
        return self.future.done()

    async def result(self, timeout: Optional[float] = None) -> Any:
        """Await the task's result (or raise its exception), optionally bounded by ``timeout`` seconds (``asyncio.TimeoutError`` beyond it)."""
        if timeout is None:
            return await self.future
        return await asyncio.wait_for(asyncio.shield(self.future), timeout)

    async def cancel(self) -> str:
        """Ask the gateway to cancel; returns the gateway's verdict."""
        return await self._client.cancel(self.client_task_id)


class _Pool:
    """A bounded pool of keep-alive connections to one host:port."""

    def __init__(self, host: str, port: int, limit: int, connect_timeout: float):
        self.host = host
        self.port = port
        self.connect_timeout = connect_timeout
        self._idle: List[Tuple[asyncio.StreamReader, asyncio.StreamWriter]] = []
        self._sem = asyncio.Semaphore(limit)

    async def acquire(self) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        await self._sem.acquire()
        while self._idle:
            reader, writer = self._idle.pop()
            if not writer.is_closing():
                return reader, writer
            self._discard(writer)
        try:
            return await asyncio.wait_for(
                asyncio.open_connection(self.host, self.port),
                timeout=self.connect_timeout,
            )
        except BaseException:
            self._sem.release()
            raise

    def release(self, conn: Tuple[asyncio.StreamReader, asyncio.StreamWriter],
                reusable: bool) -> None:
        reader, writer = conn
        if reusable and not writer.is_closing():
            self._idle.append((reader, writer))
        else:
            self._discard(writer)
        self._sem.release()

    @staticmethod
    def _discard(writer: asyncio.StreamWriter) -> None:
        try:
            writer.close()
        except Exception:  # noqa: BLE001
            pass

    def close(self) -> None:
        while self._idle:
            _reader, writer = self._idle.pop()
            self._discard(writer)


class AsyncServiceClient:
    """Submit tasks to an :class:`HttpEdge` and await their results.

    ::

        async with AsyncServiceClient(url, tenant="alice", token=tok) as client:
            handle = await client.submit(math.factorial, 10)
            assert await handle.result() == 3628800
    """

    def __init__(
        self,
        base_url: str,
        tenant: str,
        token: Optional[str] = None,
        max_connections: int = 8,
        max_inflight: Optional[int] = None,
        retry: Optional[RetryPolicy] = None,
        request_timeout: float = 30.0,
        connect_timeout: float = 5.0,
    ):
        parts = urlsplit(base_url if "//" in base_url else f"http://{base_url}")
        if parts.scheme not in ("", "http"):
            raise ServiceError(f"unsupported scheme {parts.scheme!r} (http only)")
        self.host = parts.hostname or "127.0.0.1"
        self.port = parts.port or 80
        self.tenant = tenant
        self.token = token
        self.retry = retry or RetryPolicy()
        self.request_timeout = request_timeout
        self._pool = _Pool(self.host, self.port, max_connections, connect_timeout)
        self._max_inflight = max_inflight
        self._inflight: Optional[asyncio.Semaphore] = None
        self.session: Optional[SessionInfo] = None
        self._cid_counter = 0
        #: cid -> handle, for result delivery and session recovery.
        self._handles: Dict[int, AsyncTaskHandle] = {}
        #: cid -> resubmittable request body, so session recovery can replay
        #: every unresolved submission verbatim.
        self._pending_bodies: Dict[int, Dict[str, Any]] = {}
        self._last_event_id = 0
        self._consumer: Optional[asyncio.Task] = None
        self._recover_lock = asyncio.Lock()
        self._session_epoch = 0
        #: Epoch captured when the live SSE stream attached; _deliver drops
        #: events once _recover_session has bumped _session_epoch past it.
        self._stream_epoch = 0
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def __aenter__(self) -> "AsyncServiceClient":
        await self.open()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    async def open(self) -> None:
        """Open the HTTP session (``POST /v1/session``) and start the SSE consumer. Called by ``async with``; idempotent per client."""
        status, _headers, body = await self._request(
            "POST", "/v1/session", {"weight": None}, with_session=False
        )
        if status != 201:
            raise self._error(status, body)
        self.session = SessionInfo.from_json(json.loads(body))
        cap = self.session.max_inflight
        if self._max_inflight is not None:
            cap = min(cap, self._max_inflight)
        self._inflight = asyncio.Semaphore(max(1, cap))
        self._consumer = asyncio.ensure_future(self._consume_stream())

    async def close(self) -> None:
        """Stop the SSE consumer, close the session server-side, and release the connection pool. Unresolved futures are cancelled."""
        if self._closed:
            return
        self._closed = True
        if self._consumer is not None:
            self._consumer.cancel()
            try:
                await self._consumer
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
        if self.session is not None:
            try:
                await self._request("DELETE", f"/v1/session/{self.session.session}", None)
            except Exception:  # noqa: BLE001 - best-effort goodbye
                pass
        for handle in self._handles.values():
            if not handle.future.done():
                handle.future.set_exception(ServiceError("client closed"))
        self._handles.clear()
        self._pending_bodies.clear()
        self._pool.close()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    async def submit(self, fn: Callable, *args: Any,
                     resource_spec: Optional[Dict[str, Any]] = None,
                     priority: Optional[int] = None, **kwargs: Any) -> AsyncTaskHandle:
        """Submit ``fn(*args, **kwargs)``; the callable travels pickled."""
        buffer = pack_apply_message(fn, args, kwargs)
        payload_b64 = base64.b64encode(buffer).decode("ascii")
        return await self._submit_body({"payload_b64": payload_b64},
                                       resource_spec, priority)

    async def submit_named(self, fn_name: str, args: Tuple = (),
                           kwargs: Optional[Dict[str, Any]] = None,
                           resource_spec: Optional[Dict[str, Any]] = None,
                           priority: Optional[int] = None) -> AsyncTaskHandle:
        """Submit a server-registered callable by name with JSON arguments."""
        return await self._submit_body(
            {"fn": fn_name, "args": list(args), "kwargs": dict(kwargs or {})},
            resource_spec, priority,
        )

    async def _submit_body(self, base_body: Dict[str, Any],
                           resource_spec: Optional[Dict[str, Any]],
                           priority: Optional[int]) -> AsyncTaskHandle:
        if self.session is None:
            raise ServiceError("client is not open; use 'async with' or await open()")
        assert self._inflight is not None
        await self._inflight.acquire()
        cid = self._cid_counter
        self._cid_counter += 1
        handle = AsyncTaskHandle(self, cid)
        self._handles[cid] = handle
        body = dict(base_body)
        if resource_spec:
            body["resource_spec"] = resource_spec
        if priority is not None:
            body["priority"] = priority
        self._pending_bodies[cid] = body
        try:
            accepted = await self._submit_with_retry({**body, "client_task_id": cid}, cid)
            handle.trace_id = accepted.trace_id
        except BaseException:
            self._handles.pop(cid, None)
            self._pending_bodies.pop(cid, None)
            self._inflight.release()
            raise
        return handle

    async def _submit_with_retry(self, body: Dict[str, Any], cid: int) -> TaskAccepted:
        attempt = 0
        epoch = self._session_epoch
        while True:
            try:
                status, _headers, reply = await self._request("POST", "/v1/tasks", body)
            except (ConnectionError, asyncio.TimeoutError, OSError) as exc:
                attempt += 1
                if attempt >= self.retry.attempts:
                    raise ServiceError(f"submit failed after {attempt} attempts: {exc!r}")
                await asyncio.sleep(self.retry.delay(attempt))
                continue
            if status == 202:
                return TaskAccepted.from_json(json.loads(reply))
            if status == 429:
                attempt += 1
                if attempt >= self.retry.attempts:
                    raise HttpEdgeError(429, "tenant stayed at its in-flight cap")
                hint = None
                try:
                    hint = json.loads(reply).get("retry_after_s")
                except Exception:  # noqa: BLE001
                    pass
                await asyncio.sleep(self.retry.delay(attempt, floor=hint))
                continue
            if status == 410:
                await self._recover_session(epoch)
                epoch = self._session_epoch
                continue  # the recovery resubmitted cid; confirm via next loop
            if status == 503:
                # Shard-unavailable (every kernel that could serve this
                # tenant is down or draining) or a gateway ack timeout.
                # Either way the task was never admitted, so retry-later is
                # safe — unlike 410, the session itself is still good, so
                # no recovery/re-route is involved.
                attempt += 1
                if attempt >= self.retry.attempts:
                    raise self._error(status, reply)
                hint = None
                try:
                    hint = json.loads(reply).get("retry_after_s")
                except Exception:  # noqa: BLE001
                    pass
                await asyncio.sleep(self.retry.delay(attempt, floor=hint))
                continue
            raise self._error(status, reply)

    async def cancel(self, client_task_id: int) -> str:
        """Best-effort cancel; returns the server's status string (``cancelled``/``running``/``done``/``unknown``)."""
        task_id = make_task_id(self.session.session, client_task_id)
        status, _headers, body = await self._request(
            "POST", f"/v1/tasks/{task_id}/cancel", {}
        )
        if status not in (200, 404):
            raise self._error(status, body)
        return str(json.loads(body).get("status", "unknown"))

    async def task_status(self, client_task_id: int) -> TaskStatus:
        """Poll one task's status/result (``GET /v1/tasks/{id}``)."""
        task_id = make_task_id(self.session.session, client_task_id)
        status, _headers, body = await self._request("GET", f"/v1/tasks/{task_id}", None)
        if status != 200:
            raise self._error(status, body)
        return TaskStatus.from_json(json.loads(body))

    async def stats(self) -> TenantStats:
        """This tenant's gateway counters (``GET /v1/tenants/me/stats``)."""
        status, _headers, body = await self._request("GET", "/v1/tenants/me/stats", None)
        if status != 200:
            raise self._error(status, body)
        return TenantStats.from_json(json.loads(body))

    async def alerts(self) -> Dict[str, Any]:
        """The gateway's live ops plane (``GET /v1/alerts``): SLO burn
        alerts, per-tenant windowed latency state, stragglers, and the
        sick-worker report, as one JSON document."""
        status, _headers, body = await self._request(
            "GET", "/v1/alerts", None, with_session=False
        )
        if status != 200:
            raise self._error(status, body)
        return json.loads(body)

    async def gather(self, *handles: AsyncTaskHandle) -> List[Any]:
        """Await several handles' results in order (``asyncio.gather`` semantics: the first exception propagates)."""
        return list(await asyncio.gather(*(h.result() for h in handles)))

    # ------------------------------------------------------------------
    # Session recovery
    # ------------------------------------------------------------------
    async def _recover_session(self, seen_epoch: int) -> None:
        """Open a fresh session and resubmit every unresolved task.

        Called when the gateway no longer knows our session (410). Concurrent
        callers race here; the epoch check makes recovery run once per loss.
        """
        async with self._recover_lock:
            if self._session_epoch != seen_epoch or self._closed:
                return  # somebody else already recovered (or we're done)
            logger.warning("session %s lost; recovering",
                           self.session.session if self.session else "?")
            status, _headers, body = await self._request(
                "POST", "/v1/session", {}, with_session=False
            )
            if status != 201:
                raise SessionExpiredError(
                    f"session lost and recovery failed with HTTP {status}"
                )
            self.session = SessionInfo.from_json(json.loads(body))
            self._last_event_id = 0
            self._session_epoch += 1
            # Resubmit everything unresolved under the original ids: the new
            # session is a fresh dedup namespace, so ids carry over cleanly.
            for cid, body in sorted(self._pending_bodies.items()):
                handle = self._handles.get(cid)
                if handle is None or handle.future.done():
                    continue
                accepted = await self._resubmit_one({**body, "client_task_id": cid})
                # The re-execution is a fresh trace; surface the current one.
                handle.trace_id = accepted.trace_id

    async def _resubmit_one(self, body: Dict[str, Any]) -> TaskAccepted:
        attempt = 0
        while True:
            status, _headers, reply = await self._request("POST", "/v1/tasks", body)
            if status == 202:
                return TaskAccepted.from_json(json.loads(reply))
            if status == 429:
                attempt += 1
                await asyncio.sleep(self.retry.delay(attempt, floor=0.05))
                continue
            raise self._error(status, reply)

    # ------------------------------------------------------------------
    # SSE consumer
    # ------------------------------------------------------------------
    async def _consume_stream(self) -> None:
        while not self._closed:
            epoch = self._session_epoch
            try:
                await self._stream_once()
            except asyncio.CancelledError:
                raise
            except HttpEdgeError as exc:
                if exc.status == 410:
                    try:
                        await self._recover_session(epoch)
                    except asyncio.CancelledError:
                        raise
                    except Exception:  # noqa: BLE001
                        await asyncio.sleep(self.retry.delay(2))
                else:
                    logger.warning("stream rejected (%s); retrying", exc)
                    await asyncio.sleep(self.retry.delay(1))
            except (ConnectionError, asyncio.TimeoutError, OSError,
                    asyncio.IncompleteReadError):
                await asyncio.sleep(self.retry.delay(0))
            except Exception:  # noqa: BLE001 - the consumer must survive
                logger.exception("stream consumer error; reconnecting")
                await asyncio.sleep(self.retry.delay(1))

    async def _stream_once(self) -> None:
        """One SSE connection: attach, then deliver events until it ends."""
        session = self.session
        if session is None:
            return
        # Events buffered in this connection's reader can arrive after a
        # concurrent _recover_session reset _last_event_id; the epoch captured
        # at attach time lets _deliver drop such stale deliveries instead of
        # re-advancing the cursor and skipping the new session's replay.
        epoch = self._stream_epoch = self._session_epoch
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(self.host, self.port),
            timeout=self._pool.connect_timeout,
        )
        try:
            headers = self._headers(with_session=True)
            headers["Last-Event-ID"] = str(self._last_event_id)
            headers["Accept"] = "text/event-stream"
            request = self._encode_request("GET", "/v1/stream", headers, b"")
            writer.write(request)
            await writer.drain()
            status, _resp_headers = await self._read_response_head(reader)
            if status != 200:
                body = await self._read_error_body(reader, _resp_headers)
                raise self._error(status, body)
            async for event in self._iter_events(reader):
                if event.event == "done":
                    return  # server ended the stream; reconnect resumes
                self._deliver(event)
                if self._session_epoch != epoch:
                    return  # session recovered underneath us; reattach fresh
        finally:
            try:
                writer.close()
            except Exception:  # noqa: BLE001
                pass

    async def _iter_events(self, reader: asyncio.StreamReader):
        event_type = "message"
        event_id: Optional[int] = None
        data_lines: List[str] = []
        idle_timeout = self.request_timeout * 2
        while True:
            line = await asyncio.wait_for(reader.readline(), timeout=idle_timeout)
            if not line:
                raise ConnectionError("stream closed")
            text = line.decode("utf-8").rstrip("\r\n")
            if text == "":
                if data_lines:
                    yield StreamEvent(event=event_type, id=event_id,
                                      data=json.loads("\n".join(data_lines)))
                elif event_type == "done":
                    yield StreamEvent(event="done", id=event_id, data={})
                event_type, event_id, data_lines = "message", None, []
                continue
            if text.startswith(":"):
                continue  # keepalive comment
            name, _sep, value = text.partition(":")
            value = value[1:] if value.startswith(" ") else value
            if name == "event":
                event_type = value
            elif name == "id":
                try:
                    event_id = int(value)
                except ValueError:
                    event_id = None
            elif name == "data":
                data_lines.append(value)

    def _deliver(self, event: StreamEvent) -> None:
        if self._stream_epoch != self._session_epoch:
            # Stale stream: the event was buffered before _recover_session
            # superseded this connection. Neither advance the cursor (it was
            # reset for the new session's replay) nor resolve futures from
            # old-session data.
            return
        if event.id is not None:
            self._last_event_id = max(self._last_event_id, event.id)
        status = event.task_status()
        try:
            _session, cid = status.task_id.rsplit(":", 1)
            cid_int = int(cid)
        except ValueError:
            logger.warning("stream event with malformed task id %r", status.task_id)
            return
        handle = self._handles.get(cid_int)
        if handle is None or handle.future.done():
            return  # duplicate delivery (replay overlap): futures fire once
        if status.trace_id is not None:
            handle.trace_id = status.trace_id
        payload = status.payload()
        if status.success:
            handle.future.set_result(payload)
        else:
            if isinstance(payload, BaseException):
                handle.future.set_exception(payload)
            else:
                handle.future.set_exception(
                    ServiceError(status.error_message or "task failed")
                )
        # The task is finished: drop its bookkeeping so a long-lived client
        # does not accumulate one resolved handle (+ payload) per task.
        self._handles.pop(cid_int, None)
        self._pending_bodies.pop(cid_int, None)
        if self._inflight is not None:
            self._inflight.release()

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    def _headers(self, with_session: bool) -> Dict[str, str]:
        headers = {"X-Repro-Tenant": self.tenant}
        if self.token is not None:
            headers["Authorization"] = f"Bearer {self.token}"
        if with_session and self.session is not None:
            headers["X-Repro-Session"] = self.session.session
            headers["X-Repro-Session-Token"] = self.session.session_token
        return headers

    def _encode_request(self, method: str, path: str, headers: Dict[str, str],
                        body: bytes) -> bytes:
        lines = [f"{method} {path} HTTP/1.1", f"Host: {self.host}:{self.port}"]
        for name, value in headers.items():
            lines.append(f"{name}: {value}")
        lines.append(f"Content-Length: {len(body)}")
        if body:
            lines.append("Content-Type: application/json")
        return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body

    async def _read_response_head(self, reader: asyncio.StreamReader
                                  ) -> Tuple[int, Dict[str, str]]:
        line = await asyncio.wait_for(reader.readline(), timeout=self.request_timeout)
        if not line:
            raise ConnectionError("connection closed before response")
        parts = line.decode("latin-1").split(None, 2)
        if len(parts) < 2 or not parts[1].isdigit():
            raise ConnectionError(f"malformed status line {line!r}")
        status = int(parts[1])
        headers: Dict[str, str] = {}
        while True:
            line = await asyncio.wait_for(reader.readline(), timeout=self.request_timeout)
            if line in (b"\r\n", b"\n", b""):
                break
            name, sep, value = line.decode("latin-1").partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        return status, headers

    async def _read_error_body(self, reader: asyncio.StreamReader,
                               headers: Dict[str, str]) -> bytes:
        length = int(headers.get("content-length") or 0)
        if not length:
            return b""
        return await asyncio.wait_for(reader.readexactly(length),
                                      timeout=self.request_timeout)

    async def _request(self, method: str, path: str, body_obj: Optional[Dict[str, Any]],
                       with_session: bool = True) -> Tuple[int, Dict[str, str], bytes]:
        if body_obj is not None:
            body_obj = {k: v for k, v in body_obj.items() if v is not None}
        body = json.dumps(body_obj).encode("utf-8") if body_obj is not None else b""
        request = self._encode_request(method, path, self._headers(with_session), body)
        conn = await self._pool.acquire()
        reader, writer = conn
        reusable = False
        try:
            writer.write(request)
            await writer.drain()
            status, headers = await self._read_response_head(reader)
            payload = await self._read_error_body(reader, headers)
            reusable = headers.get("connection", "keep-alive").lower() != "close"
            return status, headers, payload
        finally:
            self._pool.release(conn, reusable)

    @staticmethod
    def _error(status: int, body: bytes) -> HttpEdgeError:
        try:
            reason = str(json.loads(body).get("error", ""))
        except Exception:  # noqa: BLE001
            reason = body.decode("utf-8", "replace")[:200]
        if status == 410:
            return HttpEdgeError(410, reason or "session expired")
        return HttpEdgeError(status, reason or "request failed")
