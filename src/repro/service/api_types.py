"""Typed request/response shapes of the HTTP edge.

The HTTP/JSON surface (:mod:`repro.service.http_edge`) and the asyncio SDK
(:mod:`repro.service.aclient`) share these dataclasses so both sides agree on
field names by construction rather than by convention. Every type maps 1:1
onto a JSON object; ``to_json``/``from_json`` are plain dict translations
with no hidden coercions.

Result payloads travel in two encodings at once:

* ``payload_b64`` — the gateway's pickled result buffer, base64-encoded.
  Python consumers (the SDK) decode this for full fidelity: the exact return
  value, or the exact exception instance a failed task raised.
* ``value`` / ``value_repr`` / ``error_type`` + ``error_message`` —
  best-effort JSON projections for non-Python consumers (``curl``,
  dashboards). ``value`` is present only when the result round-trips JSON.

Task ids on the HTTP surface are strings of the form
``"<session id>:<client task id>"`` — globally routable (the session names
the replay/dedup namespace) while the integer suffix remains the gateway's
dedup key.
"""

from __future__ import annotations

import base64
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.serialize import deserialize


def make_task_id(session: str, client_task_id: int) -> str:
    """Compose the HTTP-surface task id ``"<session>:<client_task_id>"``."""
    return f"{session}:{client_task_id}"


def split_task_id(task_id: str) -> tuple[str, int]:
    """Inverse of :func:`make_task_id`; raises ``ValueError`` on junk."""
    session, sep, cid = task_id.rpartition(":")
    if not sep or not session:
        raise ValueError(f"malformed task id {task_id!r}")
    return session, int(cid)


# ---------------------------------------------------------------------------
# Sessions
# ---------------------------------------------------------------------------

@dataclass
class SessionInfo:
    """One gateway session as surfaced over HTTP (``POST /v1/session``)."""

    session: str
    session_token: str
    max_inflight: int
    weight: int
    resumed: bool = False
    #: The tenant's home-shard index on a sharded gateway (placement may
    #: still spill elsewhere under load); ``None`` from older gateways.
    shard: Optional[int] = None

    @classmethod
    def from_json(cls, obj: Dict[str, Any]) -> "SessionInfo":
        """Parse a ``POST /v1/session`` (or welcome-shaped) JSON body."""
        return cls(
            session=str(obj["session"]),
            session_token=str(obj["session_token"]),
            max_inflight=int(obj["max_inflight"]),
            weight=int(obj["weight"]),
            resumed=bool(obj.get("resumed", False)),
            shard=int(obj["shard"]) if obj.get("shard") is not None else None,
        )

    def to_json(self) -> Dict[str, Any]:
        """Wire form; the ``shard`` key is present only on sharded gateways."""
        obj: Dict[str, Any] = {
            "session": self.session,
            "session_token": self.session_token,
            "max_inflight": self.max_inflight,
            "weight": self.weight,
            "resumed": self.resumed,
        }
        if self.shard is not None:
            obj["shard"] = self.shard
        return obj


# ---------------------------------------------------------------------------
# Submissions
# ---------------------------------------------------------------------------

@dataclass
class TaskSubmit:
    """Body of ``POST /v1/tasks``.

    Exactly one of ``fn`` (a registered/importable callable name, invoked
    with JSON ``args``/``kwargs``) or ``payload_b64`` (a base64
    ``pack_apply_message`` buffer, the SDK's arbitrary-callable path) must be
    set. ``client_task_id`` is optional — the edge assigns the next free id
    in the session when omitted — but resubmitting with the same id is the
    exactly-once lever: the gateway deduplicates on it.
    """

    fn: Optional[str] = None
    args: tuple = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)
    payload_b64: Optional[str] = None
    client_task_id: Optional[int] = None
    resource_spec: Optional[Dict[str, Any]] = None
    priority: Optional[int] = None

    def to_json(self) -> Dict[str, Any]:
        """Wire form of a submit body (only the populated submission mode's keys)."""
        obj: Dict[str, Any] = {}
        if self.fn is not None:
            obj["fn"] = self.fn
            if self.args:
                obj["args"] = list(self.args)
            if self.kwargs:
                obj["kwargs"] = dict(self.kwargs)
        if self.payload_b64 is not None:
            obj["payload_b64"] = self.payload_b64
        if self.client_task_id is not None:
            obj["client_task_id"] = self.client_task_id
        if self.resource_spec:
            obj["resource_spec"] = dict(self.resource_spec)
        if self.priority is not None:
            obj["priority"] = self.priority
        return obj


@dataclass
class TaskAccepted:
    """Body of the 202 reply to ``POST /v1/tasks``."""

    task_id: str
    client_task_id: int
    session: str
    #: Present only when this request implicitly created the session; callers
    #: need it to attach streams / resume later.
    session_token: Optional[str] = None
    #: Server-assigned end-to-end trace identifier (present only when the
    #: gateway traced this task); keys the span waterfall in the monitoring
    #: store and ``tools/trace_report.py``.
    trace_id: Optional[str] = None

    @classmethod
    def from_json(cls, obj: Dict[str, Any]) -> "TaskAccepted":
        """Parse a 202 submit-acknowledgement JSON body."""
        return cls(
            task_id=str(obj["task_id"]),
            client_task_id=int(obj["client_task_id"]),
            session=str(obj["session"]),
            session_token=obj.get("session_token"),
            trace_id=obj.get("trace_id"),
        )

    def to_json(self) -> Dict[str, Any]:
        """Wire form; ``session_token``/``trace_id`` included only when set."""
        obj: Dict[str, Any] = {
            "task_id": self.task_id,
            "client_task_id": self.client_task_id,
            "session": self.session,
        }
        if self.session_token is not None:
            obj["session_token"] = self.session_token
        if self.trace_id is not None:
            obj["trace_id"] = self.trace_id
        return obj


# ---------------------------------------------------------------------------
# Results
# ---------------------------------------------------------------------------

@dataclass
class TaskStatus:
    """Body of ``GET /v1/tasks/{id}`` and the data of SSE result events."""

    task_id: str
    status: str  # "queued" | "running" | "done"
    seq: Optional[int] = None
    success: Optional[bool] = None
    value: Any = None
    value_repr: Optional[str] = None
    error_type: Optional[str] = None
    error_message: Optional[str] = None
    payload_b64: Optional[str] = None
    #: True when the task finished but its result aged out of the session's
    #: replay buffer before anyone asked.
    result_expired: bool = False
    #: Server-assigned trace identifier (present only when the task was
    #: traced); keys the span waterfall in the monitoring store.
    trace_id: Optional[str] = None

    @classmethod
    def from_json(cls, obj: Dict[str, Any]) -> "TaskStatus":
        """Parse a ``GET /v1/tasks/{id}`` JSON body (or an SSE payload)."""
        return cls(
            task_id=str(obj["task_id"]),
            status=str(obj["status"]),
            seq=obj.get("seq"),
            success=obj.get("success"),
            value=obj.get("value"),
            value_repr=obj.get("value_repr"),
            error_type=obj.get("error_type"),
            error_message=obj.get("error_message"),
            payload_b64=obj.get("payload_b64"),
            result_expired=bool(obj.get("result_expired", False)),
            trace_id=obj.get("trace_id"),
        )

    def to_json(self) -> Dict[str, Any]:
        """Wire form of a status reply (unset optional fields omitted)."""
        obj: Dict[str, Any] = {"task_id": self.task_id, "status": self.status}
        for key in ("seq", "success", "value", "value_repr", "error_type",
                    "error_message", "payload_b64", "trace_id"):
            val = getattr(self, key)
            if val is not None:
                obj[key] = val
        if self.result_expired:
            obj["result_expired"] = True
        return obj

    def payload(self) -> Any:
        """Decode the full-fidelity pickled payload (value or exception)."""
        if self.payload_b64 is None:
            return None
        return deserialize(base64.b64decode(self.payload_b64))


def result_frame_to_status(session: str, frame: Dict[str, Any]) -> TaskStatus:
    """Project a gateway ``result`` frame onto the HTTP result shape."""
    cid = int(frame["client_task_id"])
    buffer: bytes = frame["buffer"]
    success = bool(frame["success"])
    status = TaskStatus(
        task_id=make_task_id(session, cid),
        status="done",
        seq=int(frame["seq"]),
        success=success,
        payload_b64=base64.b64encode(buffer).decode("ascii"),
        trace_id=frame.get("trace_id"),
    )
    try:
        payload = deserialize(buffer)
    except Exception as exc:  # noqa: BLE001 - non-importable result type on this side
        status.value_repr = f"<undecodable: {exc!r}>"
        return status
    if success:
        try:
            json.dumps(payload)
            status.value = payload
        except (TypeError, ValueError):
            status.value_repr = repr(payload)
    else:
        status.error_type = type(payload).__name__
        status.error_message = str(payload)
    return status


# ---------------------------------------------------------------------------
# Stats and stream events
# ---------------------------------------------------------------------------

@dataclass
class TenantStats:
    """Body of ``GET /v1/tenants/me/stats`` (one tenant's admission view)."""

    tenant: str
    queued: int = 0
    running: int = 0
    completed: int = 0
    failed: int = 0
    cancelled: int = 0
    weight: int = 1

    @classmethod
    def from_json(cls, obj: Dict[str, Any]) -> "TenantStats":
        """Parse a ``GET /v1/tenants/me/stats`` JSON body (missing keys default to zero)."""
        return cls(
            tenant=str(obj.get("tenant", "")),
            queued=int(obj.get("queued", 0)),
            running=int(obj.get("running", 0)),
            completed=int(obj.get("completed", 0)),
            failed=int(obj.get("failed", 0)),
            cancelled=int(obj.get("cancelled", 0)),
            weight=int(obj.get("weight", 1)),
        )

    def to_json(self) -> Dict[str, Any]:
        """Wire form: the flat counter dict the stats endpoint returns."""
        return {
            "tenant": self.tenant,
            "queued": self.queued,
            "running": self.running,
            "completed": self.completed,
            "failed": self.failed,
            "cancelled": self.cancelled,
            "weight": self.weight,
        }


@dataclass
class StreamEvent:
    """One parsed SSE frame from ``GET /v1/stream``.

    ``event`` is ``result`` (task succeeded), ``error`` (task raised), or
    ``done`` (the server is ending this stream; reconnect with
    ``Last-Event-ID`` to continue). ``id`` carries the session result
    sequence number — the resume cursor.
    """

    event: str
    id: Optional[int]
    data: Dict[str, Any]

    def task_status(self) -> TaskStatus:
        """Parse this event's payload as a :class:`TaskStatus`."""
        return TaskStatus.from_json(self.data)
