"""ServiceClient: submit work to a remote workflow gateway.

``ServiceClient.submit()`` mirrors invoking an app against a local
DataFlowKernel: it returns a :class:`ServiceFuture` (a
``concurrent.futures.Future`` like :class:`~repro.core.futures.AppFuture`)
that resolves to the task's return value or raises its exception. Under the
hood the callable travels as a ``pack_apply_message`` buffer and results
stream back asynchronously from the gateway.

Fault tolerance is the point of the session layer: if the TCP connection
dies mid-run the client **reconnects and resumes** — it re-attaches to its
session with the session token, reports the last result sequence number it
saw (the gateway replays everything newer, covering tasks that completed
while the client was away), and resends any submissions the gateway never
acknowledged (the gateway deduplicates by client task id, so nothing runs
twice). ``busy`` backpressure replies are also handled here: the submission
is parked and retried as soon as a result frees a slot.
"""

from __future__ import annotations

import logging
import threading
import time
from concurrent.futures import Future
from typing import Any, Dict, List, Optional

from repro.comms.client import MessageClient
from repro.errors import (
    AuthenticationError,
    ServiceError,
    SessionExpiredError,
    ShardUnavailableError,
)
from repro.scheduling.spec import ResourceSpec, ResourceSpecLike
from repro.serialize import deserialize, pack_apply_message
from repro.service import protocol
from repro.utils.ids import make_uid

logger = logging.getLogger(__name__)


class ServiceFuture(Future):
    """The future returned by :meth:`ServiceClient.submit` (mirrors AppFuture)."""

    def __init__(self, client_task_id: int):
        super().__init__()
        self._client_task_id = client_task_id
        #: Server-assigned end-to-end trace id, filled in from the gateway's
        #: ``accepted`` (or ``result``) frame; ``None`` until acknowledged or
        #: when tracing is disabled server-side. Keys the span waterfall in
        #: the monitoring store (``tools/trace_report.py --trace <id>``).
        self.trace_id: Optional[str] = None

    @property
    def tid(self) -> int:
        """The client-side task id (the gateway's dedup key for this task)."""
        return self._client_task_id

    def __repr__(self) -> str:
        state = "done" if self.done() else "pending"
        return f"<ServiceFuture task={self._client_task_id} {state}>"


class ServiceClient:
    """A remote tenant of a :class:`~repro.service.gateway.WorkflowGateway`."""

    def __init__(
        self,
        host: str,
        port: int,
        tenant: str,
        token: Optional[str] = None,
        weight: Optional[int] = None,
        connect_timeout: float = 10.0,
        handshake_timeout: float = 10.0,
        auto_reconnect: bool = True,
        max_reconnect_attempts: int = 5,
        reconnect_interval: float = 0.2,
    ):
        self.host = host
        self.port = port
        self.tenant = tenant
        self.token = token
        self.weight = weight
        self.connect_timeout = connect_timeout
        self.handshake_timeout = handshake_timeout
        self.auto_reconnect = auto_reconnect
        self.max_reconnect_attempts = max_reconnect_attempts
        self.reconnect_interval = reconnect_interval

        self._lock = threading.RLock()
        self._slots = threading.Condition(self._lock)
        self._futures: Dict[int, ServiceFuture] = {}
        #: Submit frames the gateway has not yet acknowledged: resent verbatim
        #: after a reconnect (the gateway deduplicates by client_task_id).
        self._unacked: Dict[int, Dict[str, Any]] = {}
        #: Submissions parked by a ``busy`` backpressure reply.
        self._parked: Dict[int, Dict[str, Any]] = {}
        self._stats_futures: Dict[int, Future] = {}
        self._metrics_futures: Dict[int, Future] = {}
        self._alerts_futures: Dict[int, Future] = {}
        self._task_counter = 0
        self._stats_counter = 0
        self._closed = False
        #: Set by close(): wakes the reconnect loop out of its backoff sleep
        #: so shutdown never waits out reconnect_interval.
        self._closing = threading.Event()

        self.session: Optional[str] = None
        self._session_token: Optional[str] = None
        self._last_seq = 0
        self.max_inflight = 1 << 30  # replaced by the welcome frame
        #: Home-shard index the gateway reported in its welcome (None on a
        #: pre-shard gateway); refreshed on every resume.
        self.shard: Optional[int] = None
        #: Successful resume count (observability; asserted by the benchmark).
        self.reconnects = 0
        #: Result frames that arrived for an already-settled (or unknown)
        #: task. The replay protocol only re-sends frames the client never
        #: saw, so any nonzero count here is a delivered duplicate — the
        #: fault-harness acceptance tests assert it stays zero.
        self.duplicate_results = 0

        self._transport = self._connect(resume=False)
        self._receiver = threading.Thread(
            target=self._recv_loop, name=f"svc-{tenant}-recv", daemon=True
        )
        self._receiver.start()

    # ------------------------------------------------------------------
    # Connection / handshake
    # ------------------------------------------------------------------
    def _connect(self, resume: bool) -> MessageClient:
        transport = MessageClient(
            self.host,
            self.port,
            identity=make_uid(f"svc-{self.tenant}"),
            registration_info={"kind": "service-client", "tenant": self.tenant},
            connect_timeout=self.connect_timeout,
        )
        if resume:
            hello = protocol.hello(
                self.tenant,
                self.token,
                session=self.session,
                session_token=self._session_token,
                last_seq=self._last_seq,
                weight=self.weight,
            )
        else:
            hello = protocol.hello(self.tenant, self.token, weight=self.weight)
        if not transport.send(hello):
            transport.close()
            raise ServiceError("gateway connection dropped during handshake")
        deadline = time.time() + self.handshake_timeout
        stashed: List[Any] = []
        while True:
            remaining = deadline - time.time()
            if remaining <= 0:
                transport.close()
                raise ServiceError("gateway handshake timed out")
            message = transport.recv(timeout=remaining)
            if message is None or not isinstance(message, dict):
                continue
            mtype = message.get("type")
            if mtype == "welcome":
                with self._lock:
                    self.session = message["session"]
                    self._session_token = message["session_token"]
                    self.max_inflight = int(message.get("max_inflight") or self.max_inflight)
                    if message.get("shard") is not None:
                        self.shard = int(message["shard"])
                # Frames that raced ahead of the welcome go back to the
                # inbound queue for the receive loop (order preserved).
                for stray in stashed:
                    transport._inbound.put(stray)
                return transport
            if mtype == "auth_error":
                transport.close()
                reason = str(message.get("reason"))
                if resume and "session" in reason:
                    raise SessionExpiredError(reason)
                raise AuthenticationError(reason)
            if mtype == "connection_lost":
                transport.close()
                raise ServiceError("gateway connection dropped during handshake")
            stashed.append(message)

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self,
        func,
        *args,
        resource_spec: ResourceSpecLike = None,
        priority: Optional[int] = None,
        **kwargs,
    ) -> ServiceFuture:
        """Ship one task to the gateway; returns a future for its result.

        Blocks while the tenant is at its in-flight cap (the same cap the
        gateway enforces server-side with ``busy`` replies), so a tight
        submission loop self-paces instead of flooding the wire.
        """
        spec = ResourceSpec.from_user(resource_spec)
        if priority is not None:
            spec = spec.with_priority(priority)
        buffer = pack_apply_message(func, args, kwargs)
        with self._slots:
            if self._closed:
                raise ServiceError("client is closed")
            self._slots.wait_for(
                lambda: self._closed or len(self._futures) < self.max_inflight
            )
            if self._closed:
                raise ServiceError("client is closed")
            cid = self._task_counter
            self._task_counter += 1
            frame = protocol.submit(cid, buffer, spec.to_wire())
            future = ServiceFuture(cid)
            self._futures[cid] = future
            self._unacked[cid] = frame
            transport = self._transport
        transport.send(frame)
        return future

    def map(self, func, iterable, **submit_kwargs) -> List[ServiceFuture]:
        """Submit ``func`` over an iterable of single arguments."""
        return [self.submit(func, value, **submit_kwargs) for value in iterable]

    def stats(self, timeout: float = 10.0) -> Dict[str, Dict[str, int]]:
        """Fetch the gateway's per-tenant admission counters."""
        with self._lock:
            if self._closed:
                raise ServiceError("client is closed")
            req_id = self._stats_counter
            self._stats_counter += 1
            reply: Future = Future()
            self._stats_futures[req_id] = reply
            transport = self._transport
        transport.send(protocol.stats(req_id))
        return reply.result(timeout=timeout)

    def metrics(self, timeout: float = 10.0) -> str:
        """Fetch the gateway's live metrics plane (Prometheus text format).

        The same document ``GET /metrics`` serves on the HTTP edge: fleet
        totals across the gateway and every shard kernel. Empty when the
        server runs with ``Config(metrics_enabled=False)``.
        """
        with self._lock:
            if self._closed:
                raise ServiceError("client is closed")
            req_id = self._stats_counter
            self._stats_counter += 1
            reply: Future = Future()
            self._metrics_futures[req_id] = reply
            transport = self._transport
        transport.send(protocol.metrics(req_id))
        return reply.result(timeout=timeout)

    def alerts(self, timeout: float = 10.0) -> Dict[str, Any]:
        """Fetch the gateway's live ops plane: SLO burn alerts, per-tenant
        windowed latency state, stragglers, and the sick-worker report.

        The same document ``GET /v1/alerts`` serves on the HTTP edge
        (``alerts`` / ``slo`` / ``streams`` / ``stragglers`` / ``workers``).
        """
        with self._lock:
            if self._closed:
                raise ServiceError("client is closed")
            req_id = self._stats_counter
            self._stats_counter += 1
            reply: Future = Future()
            self._alerts_futures[req_id] = reply
            transport = self._transport
        transport.send(protocol.alerts(req_id))
        return reply.result(timeout=timeout)

    def outstanding(self) -> int:
        """Number of submitted tasks whose results have not arrived yet."""
        with self._lock:
            return len(self._futures)

    # ------------------------------------------------------------------
    # Receive loop
    # ------------------------------------------------------------------
    def _recv_loop(self) -> None:
        while not self._closed:
            transport = self._transport
            message = transport.recv(timeout=0.1)
            if message is None:
                self._retry_parked()
                continue
            if not isinstance(message, dict):
                continue
            mtype = message.get("type")
            if mtype == "result":
                self._handle_result(message)
            elif mtype == "accepted":
                with self._lock:
                    cid = message.get("client_task_id")
                    self._unacked.pop(cid, None)
                    if message.get("trace_id") is not None:
                        future = self._futures.get(cid)
                        if future is not None:
                            future.trace_id = message["trace_id"]
            elif mtype == "busy":
                self._handle_busy(message)
            elif mtype == "stats_reply":
                with self._lock:
                    reply = self._stats_futures.pop(message.get("req_id"), None)
                if reply is not None and not reply.done():
                    reply.set_result(message.get("tenants", {}))
            elif mtype == "metrics_reply":
                with self._lock:
                    reply = self._metrics_futures.pop(message.get("req_id"), None)
                if reply is not None and not reply.done():
                    reply.set_result(str(message.get("text", "")))
            elif mtype == "alerts_reply":
                with self._lock:
                    reply = self._alerts_futures.pop(message.get("req_id"), None)
                if reply is not None and not reply.done():
                    reply.set_result(message.get("payload") or {})
            elif mtype == "error":
                self._handle_error(message)
            elif mtype == "connection_lost":
                if self._closed:
                    break
                if not self.auto_reconnect or not self._reconnect():
                    self._fail_outstanding(
                        ServiceError("gateway connection lost and could not be re-established")
                    )
                    break

    def _handle_result(self, message: Dict[str, Any]) -> None:
        cid = message.get("client_task_id")
        with self._slots:
            future = self._futures.pop(cid, None)
            self._unacked.pop(cid, None)
            self._parked.pop(cid, None)
            self._last_seq = max(self._last_seq, int(message.get("seq") or 0))
            self._slots.notify_all()
        # A result frees a server-side slot: backpressured submissions get
        # their retry now rather than waiting for the connection to go idle
        # (a steady inbound stream would otherwise starve them).
        self._retry_parked()
        if future is None or future.done():
            self.duplicate_results += 1
            return  # delivered duplicate (should never happen; see counter)
        if message.get("trace_id") is not None:
            future.trace_id = message["trace_id"]
        try:
            payload = deserialize(message["buffer"])
        except Exception as exc:  # noqa: BLE001 - undecodable result
            future.set_exception(ServiceError(f"could not decode result: {exc!r}"))
            return
        if message.get("success"):
            future.set_result(payload)
        elif isinstance(payload, BaseException):
            future.set_exception(payload)
        else:
            future.set_exception(ServiceError(f"task failed remotely: {payload!r}"))

    def _handle_busy(self, message: Dict[str, Any]) -> None:
        cid = message.get("client_task_id")
        with self._lock:
            frame = self._unacked.get(cid)
            if frame is not None:
                parked = dict(frame)
                parked["_parked_at"] = time.monotonic()
                self._parked[cid] = parked

    def _retry_parked(self) -> None:
        """Resend backpressured submissions after a short pause."""
        now = time.monotonic()
        with self._lock:
            due = [
                cid
                for cid, frame in self._parked.items()
                if now - frame["_parked_at"] >= 0.05
            ]
            frames = []
            for cid in due:
                frame = self._unacked.get(cid)
                if frame is not None:
                    frames.append(frame)
                    self._parked[cid]["_parked_at"] = now
                else:
                    self._parked.pop(cid, None)
            transport = self._transport
        for frame in frames:
            transport.send(frame)

    def _handle_error(self, message: Dict[str, Any]) -> None:
        cid = message.get("client_task_id")
        reason = str(message.get("reason"))
        if cid is None:
            logger.warning("gateway error: %s", reason)
            return
        with self._slots:
            future = self._futures.pop(cid, None)
            self._unacked.pop(cid, None)
            self._parked.pop(cid, None)
            self._slots.notify_all()
        if future is not None and not future.done():
            if message.get("code") == "shard_unavailable":
                # Typed so callers can branch retry-later (gateway is up,
                # its shards are not) from re-route (gateway unreachable,
                # which surfaces as a plain ServiceError instead).
                future.set_exception(
                    ShardUnavailableError(reason, shard=message.get("shard"))
                )
            else:
                future.set_exception(ServiceError(reason))

    # ------------------------------------------------------------------
    # Reconnect-and-resume
    # ------------------------------------------------------------------
    def _reconnect(self) -> bool:
        old = self._transport
        try:
            old.close()
        except Exception:  # noqa: BLE001 - already dead
            pass
        for attempt in range(1, self.max_reconnect_attempts + 1):
            if self._closed:
                return False
            try:
                transport = self._connect(resume=True)
            except SessionExpiredError:
                logger.warning("session %s expired; cannot resume", self.session)
                return False
            except Exception as exc:  # noqa: BLE001 - retry until budget runs out
                logger.info(
                    "reconnect attempt %d/%d failed: %r",
                    attempt, self.max_reconnect_attempts, exc,
                )
                # Interruptible backoff: close() sets _closing, so shutdown
                # doesn't hang for reconnect_interval (or the whole budget).
                if self._closing.wait(self.reconnect_interval):
                    return False
                continue
            with self._lock:
                self._transport = transport
                self.reconnects += 1
                resend = list(self._unacked.values())
            # The gateway replays finished results itself (keyed on last_seq);
            # our half of the resume is resending whatever it never acked.
            for frame in resend:
                transport.send(frame)
            logger.info(
                "session %s resumed (attempt %d, %d submits resent)",
                self.session, attempt, len(resend),
            )
            return True
        return False

    def _fail_outstanding(self, exc: Exception) -> None:
        with self._slots:
            futures = list(self._futures.values())
            self._futures.clear()
            self._unacked.clear()
            self._parked.clear()
            stats_futures = list(self._stats_futures.values())
            stats_futures += list(self._metrics_futures.values())
            stats_futures += list(self._alerts_futures.values())
            self._stats_futures.clear()
            self._metrics_futures.clear()
            self._alerts_futures.clear()
            self._closed = True
            self._slots.notify_all()
        for future in futures:
            if not future.done():
                future.set_exception(exc)
        for reply in stats_futures:
            if not reply.done():
                reply.set_exception(exc)

    # ------------------------------------------------------------------
    def drop_connection(self) -> None:
        """Abruptly sever the transport (test/benchmark hook).

        Simulates a network partition or client crash: no goodbye is sent, so
        the gateway keeps the session alive for ``service_session_ttl_s`` and
        the receive loop's reconnect logic takes over.
        """
        self._transport.close()

    def close(self) -> None:
        """Deliberate shutdown: releases the gateway session immediately."""
        if self._closed:
            return
        self._closing.set()
        with self._slots:
            self._closed = True
            self._slots.notify_all()
        try:
            self._transport.send(protocol.goodbye())
        except Exception:  # noqa: BLE001 - connection may already be gone
            pass
        self._transport.close()
        self._receiver.join(timeout=2)
        for future in list(self._futures.values()):
            if not future.done():
                future.set_exception(ServiceError("client closed with the task outstanding"))
        self._futures.clear()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
