"""The workflow gateway: many remote tenants sharing one DataFlowKernel.

The paper's ecosystem hosts the execution fabric behind services (science
gateways, hosted endpoints) rather than handing every user their own kernel.
This module composes the pieces built in earlier layers into exactly that:

* a :class:`~repro.comms.server.MessageServer` accepts remote
  :class:`~repro.service.client.ServiceClient` connections
  (:mod:`repro.service.protocol` defines the frames),
* every registration is authenticated against
  :class:`~repro.auth.tokens.TokenStore`-scoped tokens
  (scope ``gateway/<tenant>``),
* each tenant gets a *session namespace*: a session id + secret, its own
  result sequence, and a bounded replay buffer so a client that reconnects
  recovers results that completed while it was away,
* submitted callables (``pack_apply_message`` buffers) are admitted through
  a :class:`~repro.scheduling.queues.WeightedFairShareQueue` — per-tenant
  weighted virtual time, so a chatty tenant cannot starve the rest — and a
  bounded dispatch *window* into the DFK keeps the executor pipeline full
  while leaving ordering decisions to the fair-share queue,
* per-tenant in-flight caps answer overload with explicit ``busy``
  backpressure frames instead of unbounded queueing,
* results and exceptions stream back as tasks complete, via the DFK's
  completion fan-out hooks (no polling), and TASK_STATE monitoring rows
  carry the tenant in their ``tag`` column,
* a ``stats`` admin command reports per-tenant queued/running/completed/
  failed counts.

Threading model: one **service thread** owns all protocol handling (so
session state transitions are single-writer), one **pump thread** moves
tasks from the fair-share queue into the DFK, and delivery happens on the
DFK's completing threads through the hook. All shared state sits behind one
re-entrant lock.
"""

from __future__ import annotations

import logging
import queue
import secrets
import threading
import time
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Set, Tuple

from repro.auth.tokens import TokenStore
from repro.comms.server import MessageServer
from repro.core.dflow import DataFlowKernel
from repro.errors import TaskCancelledError
from repro.core.states import States
from repro.core.taskrecord import TaskRecord
from repro.scheduling.queues import WeightedFairShareQueue
from repro.scheduling.spec import ResourceSpec
from repro.serialize import serialize, unpack_apply_message
from repro.service import protocol
from repro.utils.ids import make_uid

logger = logging.getLogger(__name__)


class _TenantState:
    """Admission accounting for one tenant (shared across its sessions)."""

    __slots__ = ("name", "weight", "queued", "running", "completed", "failed", "cancelled")

    def __init__(self, name: str, weight: int):
        self.name = name
        self.weight = weight
        self.queued = 0     # held in the fair-share queue
        self.running = 0    # inside the DFK, not yet final
        self.completed = 0
        self.failed = 0
        self.cancelled = 0  # cancelled while still queued

    @property
    def inflight(self) -> int:
        return self.queued + self.running

    def counts(self) -> Dict[str, int]:
        return {
            "queued": self.queued,
            "running": self.running,
            "completed": self.completed,
            "failed": self.failed,
            "cancelled": self.cancelled,
            "weight": self.weight,
        }


class _Session:
    """One tenant session: identity binding, dedup table, replay buffer."""

    def __init__(self, session_id: str, session_token: str, tenant: str, identity: str):
        self.session_id = session_id
        self.session_token = session_token
        self.tenant = tenant
        self.identity: Optional[str] = identity
        self.disconnected_at: Optional[float] = None
        self.seq = 0
        #: client_task_id -> "queued" | "running" | "done" (duplicate guard;
        #: resent submits after a reconnect must not run twice).
        self.seen: Dict[int, str] = {}
        #: Completed-result frames kept for replay, oldest first.
        self.replay: Deque[Dict[str, Any]] = deque()
        #: client_task_id -> its replay frame (for duplicate-submit replies).
        self.done_results: Dict[int, Dict[str, Any]] = {}
        #: client_task_ids cancelled while still queued: the pump skips them
        #: instead of submitting, delivering a TaskCancelledError result.
        self.cancelled: Set[int] = set()


class WorkflowGateway:
    """Serve one DataFlowKernel to many concurrent remote tenants.

    Construction defaults come from the kernel's ``Config.service_*`` knobs;
    every knob can be overridden per-gateway. ``start()`` binds the port and
    registers the completion hook; use as a context manager or call
    ``stop()``.
    """

    def __init__(
        self,
        dfk: DataFlowKernel,
        host: Optional[str] = None,
        port: Optional[int] = None,
        token_store: Optional[TokenStore] = None,
        max_inflight_per_tenant: Optional[int] = None,
        window: Optional[int] = None,
        session_ttl_s: Optional[float] = None,
        replay_limit: Optional[int] = None,
        default_weight: Optional[int] = None,
        tenant_weights: Optional[Dict[str, int]] = None,
        max_client_weight: int = 16,
        poll_period: float = 0.005,
    ):
        cfg = dfk.config
        self.dfk = dfk
        self.token_store = token_store
        self.max_inflight_per_tenant = max_inflight_per_tenant or cfg.service_max_inflight_per_tenant
        self.window = window or cfg.service_window
        self.session_ttl_s = session_ttl_s or cfg.service_session_ttl_s
        self.replay_limit = replay_limit or cfg.service_replay_limit
        self.default_weight = default_weight or cfg.service_default_weight
        #: Weights pinned by configuration; a tenant listed here ignores any
        #: weight its hello proposes (clients cannot promote themselves).
        self.pinned_weights = dict(cfg.service_tenant_weights)
        if tenant_weights:
            self.pinned_weights.update(tenant_weights)
        #: Ceiling on hello-proposed weights for unpinned tenants. Without
        #: one, any authenticated tenant could claim weight 10**9 and
        #: monopolize the fair-share queue — the exact starvation this
        #: subsystem exists to prevent. Operator-pinned weights are exempt.
        self.max_client_weight = max_client_weight
        self.poll_period = poll_period

        self.server = MessageServer(
            host=host if host is not None else cfg.service_host,
            port=port if port is not None else cfg.service_port,
            name="gateway",
        )
        self._queue = WeightedFairShareQueue(default_weight=self.default_weight)
        for tenant, weight in self.pinned_weights.items():
            self._queue.set_weight(tenant, weight)

        self._lock = threading.RLock()
        self._window_cv = threading.Condition(self._lock)
        #: In-process peers (e.g. HTTP edge sessions): identity -> outbound
        #: sink. A registered identity's frames bypass the TCP server; its
        #: inbound messages arrive via :meth:`post`. Sinks must not block —
        #: they run on the gateway's service and sender threads.
        self._local_peers: Dict[str, Callable[[Dict[str, Any]], None]] = {}
        self._tenants: Dict[str, _TenantState] = {}
        self._sessions: Dict[str, _Session] = {}
        self._identity_sessions: Dict[str, str] = {}
        #: DFK task id -> (session id, client task id).
        self._tasks: Dict[int, Tuple[str, int]] = {}
        #: Result frames awaiting transmission. Completion hooks run on the
        #: DFK's completing threads, and a TCP send can block on a client
        #: that stopped reading — so hooks enqueue here and a dedicated
        #: sender thread does the socket work, keeping one stalled tenant
        #: from blocking every other tenant's completions.
        self._outbound: "queue.Queue[Tuple[str, Dict[str, Any]]]" = queue.Queue()
        self._inflight_window = 0
        self._stop_event = threading.Event()
        self._threads: list = []
        self._last_sweep = time.time()
        self._started = False

    # ------------------------------------------------------------------
    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    def start(self) -> "WorkflowGateway":
        if self._started:
            return self
        self._started = True
        self.dfk.add_completion_hook(self._on_task_final)
        for name, target in [
            ("gateway-service", self._service_loop),
            ("gateway-pump", self._pump_loop),
            ("gateway-sender", self._sender_loop),
        ]:
            t = threading.Thread(target=target, name=name, daemon=True)
            t.start()
            self._threads.append(t)
        logger.info("gateway serving DFK %s on %s:%s", self.dfk.run_id, self.host, self.port)
        return self

    def stop(self) -> None:
        if not self._started:
            return
        self._started = False
        self._stop_event.set()
        with self._window_cv:
            self._window_cv.notify_all()
        for t in self._threads:
            t.join(timeout=2)
        self.dfk.remove_completion_hook(self._on_task_final)
        self.server.close()

    def __enter__(self) -> "WorkflowGateway":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # In-process transport: local peers (the HTTP edge rides this)
    # ------------------------------------------------------------------
    def attach_local(self, identity: str, sink: Callable[[Dict[str, Any]], None]) -> None:
        """Register an in-process peer: outbound frames for ``identity`` are
        handed to ``sink`` instead of a TCP connection. The sink is called on
        gateway threads and must return quickly (enqueue, don't process)."""
        with self._lock:
            self._local_peers[identity] = sink

    def detach_local(self, identity: str) -> None:
        with self._lock:
            self._local_peers.pop(identity, None)

    def post(self, identity: str, message: Dict[str, Any]) -> None:
        """Inject an inbound protocol message from an in-process peer.

        The message flows through the same single-threaded service loop as
        TCP traffic, so local and remote peers share every admission,
        session, and dedup rule.
        """
        self.server.inject(identity, message)

    def _send(self, identity: str, frame: Dict[str, Any]) -> bool:
        with self._lock:
            sink = self._local_peers.get(identity)
        if sink is not None:
            try:
                sink(frame)
                return True
            except Exception:  # noqa: BLE001 - a dead edge session must not kill the loop
                logger.exception("local peer %s sink failed", identity)
                return False
        return self.server.send(identity, frame)

    def _send_many(self, identity: str, frames: List[Dict[str, Any]]) -> bool:
        with self._lock:
            sink = self._local_peers.get(identity)
        if sink is not None:
            try:
                for frame in frames:
                    sink(frame)
                return True
            except Exception:  # noqa: BLE001
                logger.exception("local peer %s sink failed", identity)
                return False
        return self.server.send_many(identity, frames)

    # ------------------------------------------------------------------
    # Service loop: all protocol handling happens on this one thread
    # ------------------------------------------------------------------
    def _service_loop(self) -> None:
        while not self._stop_event.is_set():
            try:
                received = self.server.recv(timeout=self.poll_period)
                while received is not None:
                    identity, message = received
                    self._handle(identity, message)
                    received = self.server.recv(timeout=0.0)
                self._sweep_sessions()
            except Exception:  # noqa: BLE001 - the gateway must not die
                logger.exception("gateway service loop error")

    def _handle(self, identity: str, message: Any) -> None:
        if not isinstance(message, dict):
            self._send(identity, protocol.error("messages must be dicts"))
            return
        mtype = message.get("type")
        if mtype == "registration":
            return  # comms-level; the session starts at hello
        if mtype == "hello":
            self._handle_hello(identity, message)
        elif mtype == "submit":
            self._handle_submit(identity, message)
        elif mtype == "cancel":
            self._handle_cancel(identity, message)
        elif mtype == "stats":
            self._send(
                identity, protocol.stats_reply(int(message.get("req_id") or 0), self.stats())
            )
        elif mtype == "goodbye":
            self._drop_identity(identity, evict_session=True)
        elif mtype == "peer_lost":
            self._drop_identity(identity, evict_session=False)
        else:
            self._send(identity, protocol.error(f"unknown message type {mtype!r}"))

    # ------------------------------------------------------------------
    def _handle_hello(self, identity: str, message: Dict[str, Any]) -> None:
        tenant = message.get("tenant")
        if not isinstance(tenant, str) or not tenant:
            self._send(identity, protocol.auth_error("hello carries no tenant name"))
            return
        if self.token_store is not None and not self.token_store.validate(
            protocol.token_scope(tenant), message.get("token")
        ):
            self._send(
                identity,
                protocol.auth_error(f"invalid or expired token for tenant {tenant!r}"),
            )
            return
        if "session" in message:
            self._resume_session(identity, tenant, message)
            return
        # Fresh session ------------------------------------------------
        with self._lock:
            # A fresh hello on a connection that already owns a session
            # abandons the old one: unbind it so the TTL sweep can evict it
            # (left bound, it would never be swept and would leak — and its
            # results would be sent to a connection that no longer serves it).
            stale_id = self._identity_sessions.pop(identity, None)
            stale = self._sessions.get(stale_id) if stale_id else None
            if stale is not None and stale.identity == identity:
                stale.identity = None
                stale.disconnected_at = time.time()
            state = self._tenant_state(tenant)
            proposed = message.get("weight")
            if (
                tenant not in self.pinned_weights
                and isinstance(proposed, int)
                and not isinstance(proposed, bool)
                and proposed >= 1
            ):
                granted = min(proposed, self.max_client_weight)
                state.weight = granted
                self._queue.set_weight(tenant, granted)
            session = _Session(
                session_id=make_uid("sess"),
                session_token=secrets.token_hex(16),
                tenant=tenant,
                identity=identity,
            )
            self._sessions[session.session_id] = session
            self._identity_sessions[identity] = session.session_id
            weight = state.weight
        self._send(
            identity,
            protocol.welcome(
                session.session_id,
                session.session_token,
                resumed=False,
                max_inflight=self.max_inflight_per_tenant,
                weight=weight,
            ),
        )

    def _resume_session(self, identity: str, tenant: str, message: Dict[str, Any]) -> None:
        last_seq = int(message.get("last_seq") or 0)
        with self._lock:
            session = self._sessions.get(message.get("session"))
            if session is None:
                outcome = protocol.auth_error("unknown or expired session")
                replay: list = []
            elif (
                session.tenant != tenant
                or session.session_token != message.get("session_token")
            ):
                outcome = protocol.auth_error("session credentials mismatch")
                replay = []
                session = None
            else:
                # Unbind whatever session this connection served before (as
                # the fresh-hello path does): left bound, it would never be
                # TTL-swept and its results would be routed to a connection
                # that now serves a different session.
                stale_id = self._identity_sessions.pop(identity, None)
                stale = self._sessions.get(stale_id) if stale_id else None
                if stale is not None and stale is not session and stale.identity == identity:
                    stale.identity = None
                    stale.disconnected_at = time.time()
                previous = session.identity
                if previous is not None and previous != identity:
                    self._identity_sessions.pop(previous, None)
                session.identity = identity
                session.disconnected_at = None
                self._identity_sessions[identity] = session.session_id
                weight = self._tenant_state(tenant).weight
                outcome = protocol.welcome(
                    session.session_id,
                    session.session_token,
                    resumed=True,
                    max_inflight=self.max_inflight_per_tenant,
                    weight=weight,
                )
                replay = [frame for frame in session.replay if frame["seq"] > last_seq]
            # Enqueue the welcome + replay train while still holding the
            # lock. _deliver enqueues under the same lock, so the sender
            # thread — the single writer per peer — observes result frames
            # in seq order: a task completing during the resume cannot
            # overtake its own replay and trick the client's duplicate
            # filter into discarding the rest of the train.
            for frame in [outcome] + replay:
                self._outbound.put((identity, frame))

    # ------------------------------------------------------------------
    def _handle_submit(self, identity: str, message: Dict[str, Any]) -> None:
        with self._lock:
            session_id = self._identity_sessions.get(identity)
            session = self._sessions.get(session_id) if session_id else None
        if session is None:
            self._send(identity, protocol.error("no session; send hello first"))
            return
        cid = message.get("client_task_id")
        if not isinstance(cid, int):
            self._send(identity, protocol.error("submit carries no client_task_id"))
            return
        with self._lock:
            status = session.seen.get(cid)
            if status == "done":
                # Duplicate of a finished task (client resent after a
                # reconnect race): replay its result instead of re-running.
                frame = session.done_results.get(cid)
                self._send(identity, frame or protocol.accepted(cid))
                return
            if status is not None:
                self._send(identity, protocol.accepted(cid))  # idempotent resend
                return
            tenant = self._tenant_state(session.tenant)
            if tenant.inflight >= self.max_inflight_per_tenant:
                self._send(
                    identity, protocol.busy(cid, tenant.inflight, self.max_inflight_per_tenant)
                )
                return
        try:
            func, args, kwargs = unpack_apply_message(message["buffer"])
            spec = ResourceSpec.from_user(message.get("resource_spec"))
        except Exception as exc:  # noqa: BLE001 - bad task must not kill the loop
            self._send(identity, protocol.error(f"undecodable task: {exc!r}", cid))
            return
        item: Dict[str, Any] = {
            "priority": spec.priority,
            "cores": spec.cores,
            "session": session.session_id,
            "client_task_id": cid,
            "func": func,
            "args": args,
            "kwargs": kwargs,
            "spec": spec.to_wire(),
        }
        with self._window_cv:
            session.seen[cid] = "queued"
            tenant.queued += 1
            self._queue.put(session.tenant, item)
            self._window_cv.notify()
        self._send(identity, protocol.accepted(cid))

    # ------------------------------------------------------------------
    def _handle_cancel(self, identity: str, message: Dict[str, Any]) -> None:
        cid = message.get("client_task_id")
        if not isinstance(cid, int):
            self._send(identity, protocol.error("cancel carries no client_task_id"))
            return
        with self._lock:
            session_id = self._identity_sessions.get(identity)
            session = self._sessions.get(session_id) if session_id else None
            if session is None:
                self._send(identity, protocol.error("no session; send hello first"))
                return
            status = session.seen.get(cid)
            if status == "queued":
                # The item stays in the fair-share queue; the pump discards
                # it at pop time and delivers the cancellation result, so
                # ordering/accounting stay single-writer.
                session.cancelled.add(cid)
                reply = "cancelled"
            elif status in ("running", "done"):
                reply = status
            else:
                reply = "unknown"
        self._send(identity, protocol.cancel_reply(cid, reply))

    def task_state(self, session_id: str, cid: int) -> Optional[Tuple[str, Optional[Dict[str, Any]]]]:
        """In-process status probe: ``(status, result_frame)`` or ``None``.

        ``status`` is the session's dedup-table view (``queued`` / ``running``
        / ``done``); the frame is present only once the task finished and its
        result is still within the replay buffer. Used by the HTTP edge's
        ``GET /v1/tasks/{id}``, which must answer without perturbing the
        stream protocol.
        """
        with self._lock:
            session = self._sessions.get(session_id)
            if session is None:
                return None
            status = session.seen.get(cid)
            if status is None:
                return None
            return status, session.done_results.get(cid)

    # ------------------------------------------------------------------
    # Pump: fair-share queue -> DFK, bounded by the dispatch window
    # ------------------------------------------------------------------
    def _pump_loop(self) -> None:
        while not self._stop_event.is_set():
            with self._window_cv:
                while not self._stop_event.is_set() and (
                    self._inflight_window >= self.window or self._queue.empty()
                ):
                    self._window_cv.wait(timeout=0.1)
                if self._stop_event.is_set():
                    return
                popped = self._queue.pop()
                if popped is None:
                    continue
                tenant_name, item = popped
                tenant = self._tenant_state(tenant_name)
                tenant.queued -= 1
                session = self._sessions.get(item["session"])
                if session is None:
                    # The session was evicted while the task queued; there is
                    # nobody to deliver to, so do not spend executor time.
                    tenant.failed += 1
                    continue
                if item["client_task_id"] in session.cancelled:
                    # Cancelled while queued: never reaches the kernel. The
                    # client sees an ordinary failure result carrying
                    # TaskCancelledError (so futures resolve and SSE streams
                    # emit an error event through the one delivery path).
                    cid = item["client_task_id"]
                    session.cancelled.discard(cid)
                    session.seen[cid] = "done"
                    tenant.cancelled += 1
                    self._deliver(
                        item["session"], cid, False,
                        TaskCancelledError(f"task {cid} cancelled before dispatch"),
                    )
                    continue
                try:
                    # Submit while holding the lock so a completion hook
                    # firing on another thread always finds the task-id
                    # mapping already recorded (the RLock re-enters for the
                    # same-thread synchronous case handled below).
                    future = self.dfk.submit(
                        item["func"],
                        app_args=item["args"],
                        app_kwargs=item["kwargs"],
                        cache=False,
                        resource_spec=item["spec"] or None,
                        tag=tenant_name,
                    )
                except Exception as exc:  # noqa: BLE001 - per-task submit failure
                    tenant.failed += 1
                    session.seen[item["client_task_id"]] = "done"
                    self._deliver(item["session"], item["client_task_id"], False, exc)
                    continue
                session.seen[item["client_task_id"]] = "running"
                tenant.running += 1
                self._inflight_window += 1
                self._tasks[future.tid] = (item["session"], item["client_task_id"])
                if future.done():
                    # The task completed *inside* submit on this very thread
                    # (e.g. a kernel shutting down fail-fasts synchronously;
                    # the re-entrant lock let the hook run and find no
                    # mapping). Settle it now — _on_task_final pops the
                    # mapping exactly once, so a hook that already ran on
                    # another thread makes this a no-op.
                    task = future.task_record
                    if task is not None:
                        self._on_task_final(task, task.status)

    # ------------------------------------------------------------------
    # Completion fan-out (runs on DFK completing threads)
    # ------------------------------------------------------------------
    def _on_task_final(self, task: TaskRecord, state: States) -> None:
        with self._window_cv:
            entry = self._tasks.pop(task.id, None)
            if entry is None:
                return  # not a gateway task
            session_id, cid = entry
            tenant = self._tenant_state(task.tag or "")
            tenant.running -= 1
            self._inflight_window -= 1
            self._window_cv.notify()
        app_fu = task.app_fu
        exc = app_fu.exception() if app_fu is not None else None
        if exc is None:
            success, payload = True, (app_fu.result() if app_fu is not None else None)
        else:
            success, payload = False, exc
        with self._lock:
            if success:
                tenant.completed += 1
            else:
                tenant.failed += 1
        self._deliver(session_id, cid, success, payload)

    def _deliver(self, session_id: str, cid: int, success: bool, payload: Any) -> None:
        try:
            buffer = serialize(payload)
        except Exception as exc:  # noqa: BLE001 - unpicklable result
            success = False
            buffer = serialize(
                TypeError(f"task result could not be serialized for transport: {exc!r}")
            )
        with self._lock:
            session = self._sessions.get(session_id)
            if session is None:
                return  # session evicted; the result has no audience
            session.seq += 1
            frame = protocol.result(session.seq, cid, success, buffer)
            session.seen[cid] = "done"
            session.replay.append(frame)
            session.done_results[cid] = frame
            while len(session.replay) > self.replay_limit:
                evicted = session.replay.popleft()
                # Drop the dedup entry with the replay frame: memory per
                # session stays O(replay_limit) over an unbounded task
                # stream, at the cost of no longer deduplicating a resend
                # of a task so old its result already aged out of replay.
                session.done_results.pop(evicted["client_task_id"], None)
                session.seen.pop(evicted["client_task_id"], None)
            identity = session.identity
            if identity is not None:
                # Enqueued under the lock so the sender thread sees frames
                # in seq order even when a resume is replaying concurrently
                # (see _resume_session).
                self._outbound.put((identity, frame))

    def _sender_loop(self) -> None:
        """Drain result frames to clients off the DFK's completing threads."""
        while not self._stop_event.is_set():
            try:
                identity, frame = self._outbound.get(timeout=0.1)
            except queue.Empty:
                continue
            try:
                # send() returns False for a vanished peer — the frame stays
                # in the session's replay buffer for the eventual resume.
                self._send(identity, frame)
            except Exception:  # noqa: BLE001 - one bad peer must not stop the drain
                logger.exception("gateway failed sending a result to %s", identity)

    # ------------------------------------------------------------------
    # Session lifecycle
    # ------------------------------------------------------------------
    def _drop_identity(self, identity: str, evict_session: bool) -> None:
        with self._lock:
            session_id = self._identity_sessions.pop(identity, None)
            session = self._sessions.get(session_id) if session_id else None
            if session is None or session.identity != identity:
                return  # already superseded by a resume on a new connection
            if evict_session:
                self._sessions.pop(session.session_id, None)
            else:
                session.identity = None
                session.disconnected_at = time.time()

    def _sweep_sessions(self) -> None:
        now = time.time()
        if now - self._last_sweep < min(1.0, self.session_ttl_s / 2):
            return
        self._last_sweep = now
        with self._lock:
            expired = [
                s
                for s in self._sessions.values()
                if s.identity is None
                and s.disconnected_at is not None
                and now - s.disconnected_at > self.session_ttl_s
            ]
            for session in expired:
                del self._sessions[session.session_id]
        for session in expired:
            logger.info(
                "gateway evicted session %s (tenant %s) after %.1fs disconnected",
                session.session_id, session.tenant, self.session_ttl_s,
            )

    # ------------------------------------------------------------------
    def _tenant_state(self, tenant: str) -> _TenantState:
        """Caller must hold the lock."""
        state = self._tenants.get(tenant)
        if state is None:
            state = _TenantState(tenant, self.pinned_weights.get(tenant, self.default_weight))
            self._tenants[tenant] = state
        return state

    def stats(self) -> Dict[str, Dict[str, int]]:
        """Per-tenant queued/running/completed/failed counts (admin view)."""
        with self._lock:
            return {name: state.counts() for name, state in self._tenants.items()}

    def session_count(self) -> int:
        with self._lock:
            return len(self._sessions)
