"""The workflow gateway: many remote tenants sharing a fleet of DFK shards.

The paper's ecosystem hosts the execution fabric behind services (science
gateways, hosted endpoints) rather than handing every user their own kernel.
This module composes the pieces built in earlier layers into exactly that:

* a :class:`~repro.comms.server.MessageServer` accepts remote
  :class:`~repro.service.client.ServiceClient` connections
  (:mod:`repro.service.protocol` defines the frames),
* every registration is authenticated against
  :class:`~repro.auth.tokens.TokenStore`-scoped tokens
  (scope ``gateway/<tenant>``),
* each tenant gets a *session namespace*: a session id + secret, its own
  result sequence, and a bounded replay buffer so a client that reconnects
  recovers results that completed while it was away,
* execution is spread over one or more **DFK shards**
  (:class:`~repro.service.shard.GatewayShard`): each shard wraps one
  DataFlowKernel with its own weighted fair-share queue, bounded dispatch
  window, pump thread, and completion hook, while a
  :class:`~repro.service.shard.ShardRouter` (consistent hashing on the
  tenant, load-aware spillover) decides placement — so fair-share ordering
  and the window cap apply *per shard* and admission/backpressure/dedup
  stay global,
* per-tenant in-flight caps answer overload with explicit ``busy``
  backpressure frames instead of unbounded queueing,
* results and exceptions stream back as tasks complete, via each DFK's
  completion fan-out hooks (no polling), and TASK_STATE monitoring rows
  carry the tenant in their ``tag`` column,
* with a :class:`~repro.service.store.SessionStore` attached, sessions,
  replay buffers, and accepted-but-unfinished tasks are **durable**: a
  submit is acknowledged only after its write-ahead record committed, a
  result is delivered only after it committed, and a restarted gateway
  reloads every session and re-executes every unfinished task — so no
  acknowledged frame is ever lost to a crash,
* ``stats`` admin commands report per-tenant counters plus per-shard
  queue/window occupancy.

Threading model: one **service thread** owns all protocol handling (so
session state transitions are single-writer), one **pump thread per shard**
moves tasks from that shard's fair-share queue into its DFK, delivery
happens on the DFKs' completing threads through the hooks, and one
**sender thread** does all socket writes. All shared state sits behind one
re-entrant lock; each shard's pump sleeps on its own Condition tied to
that lock. The store adds a single writer thread of its own whose
group-commit callbacks enqueue client-visible acknowledgements.
"""

from __future__ import annotations

import logging
import queue
import random
import secrets
import threading
import time
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.auth.tokens import TokenStore
from repro.comms.server import MessageServer
from repro.core.dflow import DataFlowKernel
from repro.errors import ShardUnavailableError, TaskCancelledError
from repro.core.states import States
from repro.core.taskrecord import TaskRecord
from repro.observability.anomaly import StragglerDetector
from repro.observability.metrics import (
    NULL_REGISTRY,
    Histogram,
    MetricsRegistry,
    render_prometheus,
)
from repro.observability.slo import SloAlert, SloEngine
from repro.observability.trace import flush_spans, new_trace, stamp
from repro.scheduling.spec import ResourceSpec
from repro.serialize import deserialize, serialize, unpack_apply_message
from repro.service import protocol
from repro.service.shard import GatewayShard, ShardRouter
from repro.service.store import SessionStore
from repro.utils.ids import make_uid

logger = logging.getLogger(__name__)


class _TenantState:
    """Admission accounting for one tenant (shared across its sessions)."""

    __slots__ = ("name", "weight", "queued", "running", "completed", "failed",
                 "cancelled", "m_admission_wait", "m_e2e")

    def __init__(self, name: str, weight: int):
        self.name = name
        self.weight = weight
        self.queued = 0     # held in a fair-share queue
        self.running = 0    # inside a DFK, not yet final
        self.completed = 0
        self.failed = 0
        self.cancelled = 0  # cancelled while still queued
        #: Per-tenant latency histograms, bound once by _tenant_state so the
        #: hot paths observe without a registry lookup per task.
        self.m_admission_wait: Optional[Histogram] = None
        self.m_e2e: Optional[Histogram] = None

    @property
    def inflight(self) -> int:
        return self.queued + self.running

    def counts(self) -> Dict[str, int]:
        return {
            "queued": self.queued,
            "running": self.running,
            "completed": self.completed,
            "failed": self.failed,
            "cancelled": self.cancelled,
            "weight": self.weight,
        }


class _Session:
    """One tenant session: identity binding, dedup table, replay buffer."""

    def __init__(self, session_id: str, session_token: str, tenant: str,
                 identity: Optional[str]):
        self.session_id = session_id
        self.session_token = session_token
        self.tenant = tenant
        self.identity: Optional[str] = identity
        self.disconnected_at: Optional[float] = None
        self.seq = 0
        #: Highest seq whose result frame has durably committed. Without a
        #: store this tracks ``seq`` exactly; with one, frames above it are
        #: committing and must not be sent yet (a client may never see a
        #: seq the store could forget — that is the crash-safety invariant).
        self.durable_seq = 0
        #: client_task_id -> "queued" | "running" | "done" (duplicate guard;
        #: resent submits after a reconnect must not run twice).
        self.seen: Dict[int, str] = {}
        #: Completed-result frames kept for replay, oldest first.
        self.replay: Deque[Dict[str, Any]] = deque()
        #: client_task_id -> its replay frame (for duplicate-submit replies).
        self.done_results: Dict[int, Dict[str, Any]] = {}
        #: client_task_ids cancelled while still queued: the pump skips them
        #: instead of submitting, delivering a TaskCancelledError result.
        self.cancelled: Set[int] = set()


class WorkflowGateway:
    """Serve one or more DataFlowKernel shards to many remote tenants.

    ``dfk`` may be a single kernel (the classic single-shard topology —
    behaviour is identical to earlier revisions) or a sequence of kernels,
    each becoming one shard. Construction defaults come from the first
    kernel's ``Config.service_*`` knobs; every knob can be overridden
    per-gateway. ``start()`` binds the port, recovers durable sessions when
    a store is configured, and registers the completion hooks; use as a
    context manager or call ``stop()``.

    Thread-safety: all public methods may be called from any thread.

    :param dfk: the kernel (or kernels) to execute on. The first one is
        exposed as ``self.dfk`` and supplies configuration defaults.
    :param store: a :class:`~repro.service.store.SessionStore` to make
        sessions durable, or ``None`` to build one from ``store_path`` /
        ``Config.service_store_path`` (in-memory-only when all are unset).
    :param window: per-shard dispatch window (``Config.service_window``).
    :raises repro.errors.ConfigurationError: via ``Config`` validation when
        knob overrides are out of range.
    """

    def __init__(
        self,
        dfk: Union[DataFlowKernel, Sequence[DataFlowKernel]],
        host: Optional[str] = None,
        port: Optional[int] = None,
        token_store: Optional[TokenStore] = None,
        max_inflight_per_tenant: Optional[int] = None,
        window: Optional[int] = None,
        session_ttl_s: Optional[float] = None,
        replay_limit: Optional[int] = None,
        default_weight: Optional[int] = None,
        tenant_weights: Optional[Dict[str, int]] = None,
        max_client_weight: int = 16,
        poll_period: float = 0.005,
        store: Optional[SessionStore] = None,
        store_path: Optional[str] = None,
        shard_vnodes: Optional[int] = None,
        shard_spillover: Optional[float] = None,
        tenant_slos: Optional[Dict[str, Dict[str, Any]]] = None,
        on_alert: Optional[Callable[[SloAlert], None]] = None,
    ):
        dfks: List[DataFlowKernel] = (
            list(dfk) if isinstance(dfk, (list, tuple)) else [dfk]
        )
        if not dfks:
            raise ValueError("WorkflowGateway needs at least one DataFlowKernel")
        cfg = dfks[0].config
        #: The first shard's kernel (kept for single-shard callers and for
        #: configuration defaults; prefer ``shards[i].dfk`` in shard-aware
        #: code).
        self.dfk = dfks[0]
        self.token_store = token_store
        self.max_inflight_per_tenant = max_inflight_per_tenant or cfg.service_max_inflight_per_tenant
        self.window = window or cfg.service_window
        self.session_ttl_s = session_ttl_s or cfg.service_session_ttl_s
        self.replay_limit = replay_limit or cfg.service_replay_limit
        self.default_weight = default_weight or cfg.service_default_weight
        #: Weights pinned by configuration; a tenant listed here ignores any
        #: weight its hello proposes (clients cannot promote themselves).
        self.pinned_weights = dict(cfg.service_tenant_weights)
        if tenant_weights:
            self.pinned_weights.update(tenant_weights)
        #: Ceiling on hello-proposed weights for unpinned tenants. Without
        #: one, any authenticated tenant could claim weight 10**9 and
        #: monopolize the fair-share queue — the exact starvation this
        #: subsystem exists to prevent. Operator-pinned weights are exempt.
        self.max_client_weight = max_client_weight
        self.poll_period = poll_period

        self.server = MessageServer(
            host=host if host is not None else cfg.service_host,
            port=port if port is not None else cfg.service_port,
            name="gateway",
        )

        self._lock = threading.RLock()
        #: The execution fabric: one shard per kernel, each with its own
        #: fair-share queue and dispatch window (``self.window`` each).
        self.shards: List[GatewayShard] = []
        for index, kernel in enumerate(dfks):
            shard = GatewayShard(index, kernel, self.window, self.default_weight)
            shard.cv = threading.Condition(self._lock)
            for tenant, weight in self.pinned_weights.items():
                shard.queue.set_weight(tenant, weight)
            self.shards.append(shard)
        self._router = ShardRouter(
            self.shards,
            vnodes=shard_vnodes if shard_vnodes is not None else cfg.service_shard_vnodes,
            spillover=(
                shard_spillover if shard_spillover is not None
                else cfg.service_shard_spillover
            ),
        )

        #: Durable session store (None = in-memory sessions, the classic
        #: behaviour: a restart forgets everything).
        path = store_path if store_path is not None else cfg.service_store_path
        if store is not None:
            self._store: Optional[SessionStore] = store
        elif path:
            self._store = SessionStore(path, flush_ms=cfg.service_store_flush_ms)
        else:
            self._store = None

        #: Gateway-side metrics plane. Separate registry from the shard
        #: kernels' (each DFK owns its own); :meth:`render_metrics` merges
        #: them into one Prometheus document at scrape time.
        if cfg.metrics_enabled:
            buckets = cfg.metrics_latency_buckets
            self.metrics: MetricsRegistry = (
                MetricsRegistry(default_buckets=buckets) if buckets else MetricsRegistry()
            )
        else:
            self.metrics = NULL_REGISTRY
        self._m_delivered = self.metrics.counter(
            "repro_gateway_tasks_delivered_total",
            "Result frames committed to sessions for delivery",
        )
        self.metrics.gauge(
            "repro_gateway_sessions",
            "Live (connected or within-TTL) tenant sessions",
            callback=lambda: len(self._sessions),
        )
        #: The live ops plane: per-tenant rolling-window latency + burn-rate
        #: SLO alerting, fed by :meth:`_on_task_final` and evaluated on the
        #: service loop (lazily on every alerts surface too). ``on_alert``
        #: is the pluggable rising-edge hook future schedulers can use for
        #: priority boosts on burn.
        self.slo = SloEngine(
            tenant_slos=(tenant_slos if tenant_slos is not None
                         else cfg.service_tenant_slos),
            registry=self.metrics,
            on_alert=on_alert,
        )
        #: Streaming straggler detection over live task spans, trained by
        #: every completion's hop timeline.
        self.anomaly = StragglerDetector(
            factor=cfg.service_straggler_factor,
            min_age_s=cfg.service_straggler_min_age_s,
            min_samples=cfg.service_straggler_min_samples,
        )
        #: Session-store writer lag (ms) beyond which healthz degrades.
        self.store_degraded_ms = cfg.service_store_degraded_ms
        self._last_slo_eval = 0.0
        #: Trace minting at the gateway edge: the gateway is the first hop a
        #: remote task crosses, so the trace context is created (and
        #: "submitted" stamped) here and rides the queued item into the DFK.
        self._trace_enabled = cfg.trace_enabled
        self._trace_sampling = cfg.trace_sampling
        self._trace_rng = random.Random()

        #: In-process peers (e.g. HTTP edge sessions): identity -> outbound
        #: sink. A registered identity's frames bypass the TCP server; its
        #: inbound messages arrive via :meth:`post`. Sinks must not block —
        #: they run on the gateway's service and sender threads.
        self._local_peers: Dict[str, Callable[[Dict[str, Any]], None]] = {}
        self._tenants: Dict[str, _TenantState] = {}
        self._sessions: Dict[str, _Session] = {}
        self._identity_sessions: Dict[str, str] = {}
        #: (shard index, DFK task id) -> the queued item dict (kept whole so
        #: a dying shard's in-flight work can be re-routed to survivors).
        self._tasks: Dict[Tuple[int, int], Dict[str, Any]] = {}
        #: Result frames awaiting transmission. Completion hooks run on the
        #: DFKs' completing threads, and a TCP send can block on a client
        #: that stopped reading — so hooks enqueue here and a dedicated
        #: sender thread does the socket work, keeping one stalled tenant
        #: from blocking every other tenant's completions.
        self._outbound: "queue.Queue[Tuple[str, Dict[str, Any]]]" = queue.Queue()
        self._stop_event = threading.Event()
        self._threads: list = []
        self._last_sweep = time.time()
        self._started = False

    # ------------------------------------------------------------------
    @property
    def host(self) -> str:
        """Bound listen address (stable across the gateway's lifetime)."""
        return self.server.host

    @property
    def port(self) -> int:
        """Bound TCP port (resolved from 0 at construction)."""
        return self.server.port

    def start(self) -> "WorkflowGateway":
        """Recover durable sessions, hook the shards, launch the threads."""
        if self._started:
            return self
        self._started = True
        if self._store is not None:
            self._recover()
            self._store.start()
        for shard in self.shards:
            # One closure per shard so the hook knows which window/counter
            # to credit (and so kill_shard can detach exactly one hook).
            shard.hook = (
                lambda task, state, _shard=shard: self._on_task_final(_shard, task, state)
            )
            shard.dfk.add_completion_hook(shard.hook)
            # Feed worker-side execution latency into the ops plane: the
            # interchange observes exec time when a result's timing merges;
            # hanging a callback there gives the SLO engine a per-executor
            # rolling window without touching the result hot path twice.
            for label, executor in shard.dfk.executors.items():
                interchange = getattr(executor, "interchange", None)
                if interchange is not None and hasattr(interchange, "latency_observer"):
                    interchange.latency_observer = (
                        lambda seconds, _name=f"exec:{label}":
                        self.slo.record_stream(_name, seconds)
                    )
        names = [("gateway-service", self._service_loop), ("gateway-sender", self._sender_loop)]
        names += [
            (f"gateway-pump-{shard.index}", (lambda _shard=shard: self._pump_loop(_shard)))
            for shard in self.shards
        ]
        for name, target in names:
            t = threading.Thread(target=target, name=name, daemon=True)
            t.start()
            self._threads.append(t)
        logger.info(
            "gateway serving %d shard(s) on %s:%s (durable=%s)",
            len(self.shards), self.host, self.port, self._store is not None,
        )
        return self

    def stop(self) -> None:
        """Graceful shutdown: stop threads, flush the store, close the port."""
        self._shutdown(flush=True)

    def kill(self) -> None:
        """Crash-style shutdown (test hook): queued store writes are LOST.

        Approximates ``kill -9`` for durability tests — only group-committed
        state survives into the next incarnation, exactly the guarantee the
        write-ahead protocol makes to clients.
        """
        self._shutdown(flush=False)

    def _shutdown(self, flush: bool) -> None:
        if not self._started:
            return
        self._started = False
        self._stop_event.set()
        with self._lock:
            for shard in self.shards:
                if shard.cv is not None:
                    shard.cv.notify_all()
        for t in self._threads:
            t.join(timeout=2)
        for shard in self.shards:
            if shard.hook is not None:
                try:
                    shard.dfk.remove_completion_hook(shard.hook)
                except Exception:  # noqa: BLE001 - kernel may already be closed
                    pass
                shard.hook = None
        if self._store is not None:
            if flush:
                self._store.close()
            else:
                self._store.abandon()
        self.server.close()

    def __enter__(self) -> "WorkflowGateway":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Durable recovery (runs in start(), before any thread exists)
    # ------------------------------------------------------------------
    def _recover(self) -> None:
        assert self._store is not None
        records = self._store.load()
        if not records:
            return
        now = time.time()
        requeued = 0
        with self._lock:
            for rec in records.values():
                session = _Session(rec.session_id, rec.session_token, rec.tenant,
                                   identity=None)
                session.disconnected_at = now  # TTL clock restarts at boot
                session.seq = rec.seq
                session.durable_seq = rec.seq
                for seq, cid, success, buffer in rec.results:
                    frame = protocol.result(seq, cid, success, buffer)
                    session.replay.append(frame)
                    session.done_results[cid] = frame
                    session.seen[cid] = "done"
                self._sessions[session.session_id] = session
                tenant = self._tenant_state(rec.tenant)
                # Accepted-but-unfinished tasks are re-executed from their
                # write-ahead records: the client was promised a result.
                for cid, (buffer, spec_blob) in sorted(rec.tasks.items()):
                    try:
                        func, args, kwargs = unpack_apply_message(buffer)
                        spec = ResourceSpec.from_user(
                            deserialize(spec_blob) if spec_blob else None
                        )
                    except Exception as exc:  # noqa: BLE001 - poison row
                        session.seen[cid] = "done"
                        tenant.failed += 1
                        self._deliver(rec.session_id, cid, False, exc)
                        continue
                    item = self._make_item(session, cid, func, args, kwargs, spec)
                    self._admit_item(item)  # recovered attempt gets a fresh trace
                    session.seen[cid] = "queued"
                    tenant.queued += 1
                    shard = self._router.route(rec.tenant)
                    assert shard is not None  # all shards alive at boot
                    shard.queue.put(rec.tenant, item)
                    requeued += 1
        logger.info(
            "gateway recovered %d session(s), requeued %d task(s) from %s",
            len(records), requeued, self._store.path,
        )

    # ------------------------------------------------------------------
    # In-process transport: local peers (the HTTP edge rides this)
    # ------------------------------------------------------------------
    def attach_local(self, identity: str, sink: Callable[[Dict[str, Any]], None]) -> None:
        """Register an in-process peer: outbound frames for ``identity`` are
        handed to ``sink`` instead of a TCP connection. The sink is called on
        gateway threads and must return quickly (enqueue, don't process)."""
        with self._lock:
            self._local_peers[identity] = sink

    def detach_local(self, identity: str) -> None:
        """Unregister a peer installed by :meth:`attach_local` (idempotent)."""
        with self._lock:
            self._local_peers.pop(identity, None)

    def post(self, identity: str, message: Dict[str, Any]) -> None:
        """Inject an inbound protocol message from an in-process peer.

        The message flows through the same single-threaded service loop as
        TCP traffic, so local and remote peers share every admission,
        session, and dedup rule.
        """
        self.server.inject(identity, message)

    def _send(self, identity: str, frame: Dict[str, Any]) -> bool:
        with self._lock:
            sink = self._local_peers.get(identity)
        if sink is not None:
            try:
                sink(frame)
                return True
            except Exception:  # noqa: BLE001 - a dead edge session must not kill the loop
                logger.exception("local peer %s sink failed", identity)
                return False
        return self.server.send(identity, frame)

    # ------------------------------------------------------------------
    # Service loop: all protocol handling happens on this one thread
    # ------------------------------------------------------------------
    def _service_loop(self) -> None:
        while not self._stop_event.is_set():
            try:
                received = self.server.recv(timeout=self.poll_period)
                while received is not None:
                    identity, message = received
                    self._handle(identity, message)
                    received = self.server.recv(timeout=0.0)
                self._sweep_sessions()
                # Keep burn gauges and the active-alert set fresh (and fire
                # on_alert promptly) even when nobody polls an alerts
                # surface; throttled to ~1 Hz.
                now = time.time()
                if now - self._last_slo_eval >= 1.0:
                    self._last_slo_eval = now
                    self.slo.evaluate()
                    self.anomaly.drain()
            except Exception:  # noqa: BLE001 - the gateway must not die
                logger.exception("gateway service loop error")

    def _handle(self, identity: str, message: Any) -> None:
        if not isinstance(message, dict):
            self._send(identity, protocol.error("messages must be dicts"))
            return
        mtype = message.get("type")
        if mtype == "registration":
            return  # comms-level; the session starts at hello
        if mtype == "hello":
            self._handle_hello(identity, message)
        elif mtype == "submit":
            self._handle_submit(identity, message)
        elif mtype == "cancel":
            self._handle_cancel(identity, message)
        elif mtype == "stats":
            self._send(
                identity,
                protocol.stats_reply(
                    int(message.get("req_id") or 0), self.stats(), shards=self.shard_stats()
                ),
            )
        elif mtype == "metrics":
            self._send(
                identity,
                protocol.metrics_reply(
                    int(message.get("req_id") or 0), self.render_metrics()
                ),
            )
        elif mtype == "alerts":
            self._send(
                identity,
                protocol.alerts_reply(
                    int(message.get("req_id") or 0), self.alerts_snapshot()
                ),
            )
        elif mtype == "goodbye":
            self._drop_identity(identity, evict_session=True)
        elif mtype == "peer_lost":
            self._drop_identity(identity, evict_session=False)
        else:
            self._send(identity, protocol.error(f"unknown message type {mtype!r}"))

    # ------------------------------------------------------------------
    def _handle_hello(self, identity: str, message: Dict[str, Any]) -> None:
        tenant = message.get("tenant")
        if not isinstance(tenant, str) or not tenant:
            self._send(identity, protocol.auth_error("hello carries no tenant name"))
            return
        if self.token_store is not None and not self.token_store.validate(
            protocol.token_scope(tenant), message.get("token")
        ):
            self._send(
                identity,
                protocol.auth_error(f"invalid or expired token for tenant {tenant!r}"),
            )
            return
        if "session" in message:
            self._resume_session(identity, tenant, message)
            return
        # Fresh session ------------------------------------------------
        with self._lock:
            # A fresh hello on a connection that already owns a session
            # abandons the old one: unbind it so the TTL sweep can evict it
            # (left bound, it would never be swept and would leak — and its
            # results would be sent to a connection that no longer serves it).
            stale_id = self._identity_sessions.pop(identity, None)
            stale = self._sessions.get(stale_id) if stale_id else None
            if stale is not None and stale.identity == identity:
                stale.identity = None
                stale.disconnected_at = time.time()
            state = self._tenant_state(tenant)
            proposed = message.get("weight")
            if (
                tenant not in self.pinned_weights
                and isinstance(proposed, int)
                and not isinstance(proposed, bool)
                and proposed >= 1
            ):
                granted = min(proposed, self.max_client_weight)
                state.weight = granted
                for shard in self.shards:
                    shard.queue.set_weight(tenant, granted)
            session = _Session(
                session_id=make_uid("sess"),
                session_token=secrets.token_hex(16),
                tenant=tenant,
                identity=identity,
            )
            self._sessions[session.session_id] = session
            self._identity_sessions[identity] = session.session_id
            weight = state.weight
        if self._store is not None:
            # Enqueued before any of the session's results can be, so the
            # writer commits the row first: a durable result never orphans.
            self._store.save_session(session.session_id, tenant, session.session_token)
        self._send(
            identity,
            protocol.welcome(
                session.session_id,
                session.session_token,
                resumed=False,
                max_inflight=self.max_inflight_per_tenant,
                weight=weight,
                shard=self._router.home(tenant).index,
            ),
        )

    def _resume_session(self, identity: str, tenant: str, message: Dict[str, Any]) -> None:
        last_seq = int(message.get("last_seq") or 0)
        with self._lock:
            session = self._sessions.get(message.get("session"))
            if session is None:
                outcome = protocol.auth_error("unknown or expired session")
                replay: list = []
            elif (
                session.tenant != tenant
                or session.session_token != message.get("session_token")
            ):
                outcome = protocol.auth_error("session credentials mismatch")
                replay = []
                session = None
            else:
                # Unbind whatever session this connection served before (as
                # the fresh-hello path does): left bound, it would never be
                # TTL-swept and its results would be routed to a connection
                # that now serves a different session.
                stale_id = self._identity_sessions.pop(identity, None)
                stale = self._sessions.get(stale_id) if stale_id else None
                if stale is not None and stale is not session and stale.identity == identity:
                    stale.identity = None
                    stale.disconnected_at = time.time()
                previous = session.identity
                if previous is not None and previous != identity:
                    self._identity_sessions.pop(previous, None)
                session.identity = identity
                session.disconnected_at = None
                self._identity_sessions[identity] = session.session_id
                weight = self._tenant_state(tenant).weight
                outcome = protocol.welcome(
                    session.session_id,
                    session.session_token,
                    resumed=True,
                    max_inflight=self.max_inflight_per_tenant,
                    weight=weight,
                    shard=self._router.home(tenant).index,
                )
                # Replay stops at durable_seq: frames still committing are
                # delivered by their own store callbacks (which run after
                # this enqueue and observe the new identity) — the client
                # never sees a seq the store could forget in a crash.
                replay = [
                    frame for frame in session.replay
                    if last_seq < frame["seq"] <= session.durable_seq
                ]
            # Enqueue the welcome + replay train while still holding the
            # lock. _deliver enqueues under the same lock, so the sender
            # thread — the single writer per peer — observes result frames
            # in seq order: a task completing during the resume cannot
            # overtake its own replay and trick the client's duplicate
            # filter into discarding the rest of the train.
            for frame in [outcome] + replay:
                self._outbound.put((identity, frame))

    # ------------------------------------------------------------------
    @staticmethod
    def _make_item(session: _Session, cid: int, func: Any, args: Any,
                   kwargs: Any, spec: ResourceSpec) -> Dict[str, Any]:
        return {
            "priority": spec.priority,
            "cores": spec.cores,
            "session": session.session_id,
            "tenant": session.tenant,
            "client_task_id": cid,
            "func": func,
            "args": args,
            "kwargs": kwargs,
            "spec": spec.to_wire(),
        }

    def _admit_item(self, item: Dict[str, Any]) -> Optional[str]:
        """Stamp admission clocks on ``item`` and (maybe) mint its trace.

        Returns the trace id when tracing sampled this task, else ``None``.
        ``_t0`` anchors the tenant's end-to-end latency histogram; ``_enq_t``
        anchors the admission-wait histogram (reset by re-routing, so a task
        adopted by a surviving shard measures its *second* wait).
        """
        now = time.time()
        item["_t0"] = now
        item["_enq_t"] = now
        if self._trace_enabled and (
            self._trace_sampling >= 1.0
            or self._trace_rng.random() < self._trace_sampling
        ):
            trace = new_trace()
            stamp(trace, "submitted", now)
            item["trace"] = trace
            return trace["id"]
        return None

    def _handle_submit(self, identity: str, message: Dict[str, Any]) -> None:
        with self._lock:
            session_id = self._identity_sessions.get(identity)
            session = self._sessions.get(session_id) if session_id else None
        if session is None:
            self._send(identity, protocol.error("no session; send hello first"))
            return
        cid = message.get("client_task_id")
        if not isinstance(cid, int):
            self._send(identity, protocol.error("submit carries no client_task_id"))
            return
        with self._lock:
            status = session.seen.get(cid)
            if status == "done":
                # Duplicate of a finished task (client resent after a
                # reconnect race): replay its result instead of re-running —
                # unless the frame is still committing, in which case its
                # store callback will deliver it and an ack suffices here.
                frame = session.done_results.get(cid)
                if frame is not None and frame["seq"] > session.durable_seq:
                    frame = None
                self._send(identity, frame or protocol.accepted(cid))
                return
            if status is not None:
                self._send(identity, protocol.accepted(cid))  # idempotent resend
                return
            tenant = self._tenant_state(session.tenant)
            if tenant.inflight >= self.max_inflight_per_tenant:
                self._send(
                    identity, protocol.busy(cid, tenant.inflight, self.max_inflight_per_tenant)
                )
                return
        try:
            func, args, kwargs = unpack_apply_message(message["buffer"])
            spec = ResourceSpec.from_user(message.get("resource_spec"))
        except Exception as exc:  # noqa: BLE001 - bad task must not kill the loop
            self._send(identity, protocol.error(f"undecodable task: {exc!r}", cid))
            return
        shard = self._router.route(session.tenant)
        if shard is None:
            self._send(
                identity,
                protocol.error(
                    "no live shard available; retry later", cid,
                    code="shard_unavailable", shard=self._router.home(session.tenant).index,
                ),
            )
            return
        item = self._make_item(session, cid, func, args, kwargs, spec)
        trace_id = self._admit_item(item)
        assert shard.cv is not None
        with shard.cv:
            session.seen[cid] = "queued"
            tenant.queued += 1
            shard.queue.put(session.tenant, item)
            shard.cv.notify()
        if self._store is not None:
            # Write-ahead: the client's ack waits for the commit (execution
            # may overlap it — the fsync and the task race harmlessly, since
            # results are themselves gated on durability).
            self._store.append_task(
                session.session_id, cid, message["buffer"],
                serialize(message.get("resource_spec")) if message.get("resource_spec") else None,
                on_durable=lambda: self._outbound.put(
                    (identity, protocol.accepted(cid, trace_id=trace_id))
                ),
            )
        else:
            self._send(identity, protocol.accepted(cid, trace_id=trace_id))

    # ------------------------------------------------------------------
    def _handle_cancel(self, identity: str, message: Dict[str, Any]) -> None:
        cid = message.get("client_task_id")
        if not isinstance(cid, int):
            self._send(identity, protocol.error("cancel carries no client_task_id"))
            return
        with self._lock:
            session_id = self._identity_sessions.get(identity)
            session = self._sessions.get(session_id) if session_id else None
            if session is None:
                self._send(identity, protocol.error("no session; send hello first"))
                return
            status = session.seen.get(cid)
            if status == "queued":
                # The item stays in the fair-share queue; the pump discards
                # it at pop time and delivers the cancellation result, so
                # ordering/accounting stay single-writer.
                session.cancelled.add(cid)
                reply = "cancelled"
            elif status in ("running", "done"):
                reply = status
            else:
                reply = "unknown"
        self._send(identity, protocol.cancel_reply(cid, reply))

    def task_state(self, session_id: str, cid: int) -> Optional[Tuple[str, Optional[Dict[str, Any]]]]:
        """In-process status probe: ``(status, result_frame)`` or ``None``.

        ``status`` is the session's dedup-table view (``queued`` / ``running``
        / ``done``); the frame is present only once the task finished and its
        result is still within the replay buffer. Used by the HTTP edge's
        ``GET /v1/tasks/{id}``, which must answer without perturbing the
        stream protocol.
        """
        with self._lock:
            session = self._sessions.get(session_id)
            if session is None:
                return None
            status = session.seen.get(cid)
            if status is None:
                return None
            return status, session.done_results.get(cid)

    # ------------------------------------------------------------------
    # Pumps: per-shard fair-share queue -> that shard's DFK
    # ------------------------------------------------------------------
    def _pump_loop(self, shard: GatewayShard) -> None:
        cv = shard.cv
        assert cv is not None
        while not self._stop_event.is_set():
            with cv:
                while not self._stop_event.is_set() and (
                    not shard.alive
                    or shard.inflight >= shard.window
                    or shard.queue.empty()
                ):
                    cv.wait(timeout=0.1)
                if self._stop_event.is_set():
                    return
                popped = shard.queue.pop()
                if popped is None:
                    continue
                tenant_name, item = popped
                tenant = self._tenant_state(tenant_name)
                tenant.queued -= 1
                session = self._sessions.get(item["session"])
                if session is None:
                    # The session was evicted while the task queued; there is
                    # nobody to deliver to, so do not spend executor time.
                    tenant.failed += 1
                    continue
                if item["client_task_id"] in session.cancelled:
                    # Cancelled while queued: never reaches the kernel. The
                    # client sees an ordinary failure result carrying
                    # TaskCancelledError (so futures resolve and SSE streams
                    # emit an error event through the one delivery path).
                    cid = item["client_task_id"]
                    session.cancelled.discard(cid)
                    session.seen[cid] = "done"
                    tenant.cancelled += 1
                    self._deliver(
                        item["session"], cid, False,
                        TaskCancelledError(f"task {cid} cancelled before dispatch"),
                        trace_id=(item.get("trace") or {}).get("id"),
                    )
                    continue
                enq_t = item.pop("_enq_t", None)
                if enq_t is not None and tenant.m_admission_wait is not None:
                    tenant.m_admission_wait.observe(time.time() - enq_t)
                try:
                    # Submit while holding the lock so a completion hook
                    # firing on another thread always finds the task-id
                    # mapping already recorded (the RLock re-enters for the
                    # same-thread synchronous case handled below).
                    future = shard.dfk.submit(
                        item["func"],
                        app_args=item["args"],
                        app_kwargs=item["kwargs"],
                        cache=False,
                        resource_spec=item["spec"] or None,
                        tag=tenant_name,
                        trace=item.get("trace"),
                    )
                except Exception as exc:  # noqa: BLE001 - per-task submit failure
                    tenant.failed += 1
                    session.seen[item["client_task_id"]] = "done"
                    self._deliver(
                        item["session"], item["client_task_id"], False, exc,
                        trace_id=(item.get("trace") or {}).get("id"),
                    )
                    continue
                session.seen[item["client_task_id"]] = "running"
                tenant.running += 1
                shard.inflight += 1
                shard.dispatched_total += 1
                self._tasks[(shard.index, future.tid)] = item
                if future.done():
                    # The task completed *inside* submit on this very thread
                    # (e.g. a kernel shutting down fail-fasts synchronously;
                    # the re-entrant lock let the hook run and find no
                    # mapping). Settle it now — _on_task_final pops the
                    # mapping exactly once, so a hook that already ran on
                    # another thread makes this a no-op.
                    task = future.task_record
                    if task is not None:
                        self._on_task_final(shard, task, task.status)

    # ------------------------------------------------------------------
    # Completion fan-out (runs on the DFKs' completing threads)
    # ------------------------------------------------------------------
    def _on_task_final(self, shard: GatewayShard, task: TaskRecord, state: States) -> None:
        cv = shard.cv
        assert cv is not None
        with cv:
            item = self._tasks.pop((shard.index, task.id), None)
            if item is None:
                return  # not a gateway task (or re-routed off this shard)
            session_id, cid = item["session"], item["client_task_id"]
            tenant = self._tenant_state(task.tag or "")
            tenant.running -= 1
            shard.inflight -= 1
            shard.completed_total += 1
            cv.notify()
        app_fu = task.app_fu
        exc = app_fu.exception() if app_fu is not None else None
        if exc is None:
            success, payload = True, (app_fu.result() if app_fu is not None else None)
        else:
            success, payload = False, exc
        trace = task.trace if task.trace is not None else item.get("trace")
        if trace is not None:
            # Final hop: the result reached the gateway's delivery path. The
            # tail flush picks up result_committed + delivered (the DFK's own
            # flush already wrote everything earlier — the high-water mark in
            # the trace keeps the rows disjoint).
            stamp(trace, "delivered")
            flush_spans(trace, shard.dfk.monitoring, shard.dfk.run_id, task.id)
        t0 = item.get("_t0")
        if t0 is not None and tenant.m_e2e is not None:
            elapsed = time.time() - t0
            tenant.m_e2e.observe(elapsed)
            # Same sample feeds the rolling-window SLO engine (the forever
            # histogram answers "since boot"; this answers "right now").
            self.slo.record(tenant.name, elapsed)
        if trace is not None:
            # Teach the straggler detector what a healthy hop-to-completion
            # timeline looks like, from this finished task's stamps.
            self.anomaly.complete(trace)
        with self._lock:
            if success:
                tenant.completed += 1
            else:
                tenant.failed += 1
        self._deliver(
            session_id, cid, success, payload,
            trace_id=trace["id"] if trace is not None else None,
        )

    def _deliver(self, session_id: str, cid: int, success: bool, payload: Any,
                 trace_id: Optional[str] = None) -> None:
        try:
            buffer = serialize(payload)
        except Exception as exc:  # noqa: BLE001 - unpicklable result
            success = False
            buffer = serialize(
                TypeError(f"task result could not be serialized for transport: {exc!r}")
            )
        with self._lock:
            session = self._sessions.get(session_id)
            if session is None:
                return  # session evicted; the result has no audience
            session.seq += 1
            self._m_delivered.inc()
            frame = protocol.result(session.seq, cid, success, buffer, trace_id=trace_id)
            session.seen[cid] = "done"
            session.replay.append(frame)
            session.done_results[cid] = frame
            while len(session.replay) > self.replay_limit:
                evicted = session.replay.popleft()
                # Drop the dedup entry with the replay frame: memory per
                # session stays O(replay_limit) over an unbounded task
                # stream, at the cost of no longer deduplicating a resend
                # of a task so old its result already aged out of replay.
                session.done_results.pop(evicted["client_task_id"], None)
                session.seen.pop(evicted["client_task_id"], None)
            if self._store is None:
                session.durable_seq = session.seq
                identity = session.identity
                if identity is not None:
                    # Enqueued under the lock so the sender thread sees
                    # frames in seq order even when a resume is replaying
                    # concurrently (see _resume_session).
                    self._outbound.put((identity, frame))
            else:
                # Durable delivery: the frame leaves the building only after
                # its commit. Callbacks fire in enqueue order on the store's
                # writer thread (and _deliver runs under the lock), so per-
                # session seq order is preserved end to end; reading the
                # identity at callback time routes to wherever the session
                # lives by then.
                self._store.append_result(
                    session_id, frame["seq"], cid, success, buffer, self.replay_limit,
                    on_durable=lambda: self._finish_durable(session_id, frame),
                )

    def _finish_durable(self, session_id: str, frame: Dict[str, Any]) -> None:
        """Store callback: mark the frame durable and release it for sending."""
        with self._lock:
            session = self._sessions.get(session_id)
            if session is None:
                return
            session.durable_seq = max(session.durable_seq, frame["seq"])
            identity = session.identity
            if identity is not None:
                self._outbound.put((identity, frame))

    def _sender_loop(self) -> None:
        """Drain result frames to clients off the DFKs' completing threads."""
        while not self._stop_event.is_set():
            try:
                identity, frame = self._outbound.get(timeout=0.1)
            except queue.Empty:
                continue
            try:
                # send() returns False for a vanished peer — the frame stays
                # in the session's replay buffer for the eventual resume.
                self._send(identity, frame)
            except Exception:  # noqa: BLE001 - one bad peer must not stop the drain
                logger.exception("gateway failed sending a result to %s", identity)

    # ------------------------------------------------------------------
    # Shard lifecycle
    # ------------------------------------------------------------------
    def kill_shard(self, index: int) -> int:
        """Simulate the abrupt death of one shard; returns tasks re-routed.

        Mirrors what a production gateway does when a kernel process dies
        under it: the shard's completion hook is detached *first* (any
        result the doomed kernel still produces is discarded — the dedup
        table must never see double deliveries), then every queued and
        in-flight task of that shard is re-routed through the
        :class:`~repro.service.shard.ShardRouter` onto the surviving
        shards. With no survivor, affected tasks fail with
        :class:`~repro.errors.ShardUnavailableError` results instead of
        hanging. Callable from any thread.
        """
        with self._lock:
            shard = self.shards[index]
            if not shard.alive:
                return 0
            shard.alive = False
            hook = shard.hook
        if hook is not None:
            try:
                shard.dfk.remove_completion_hook(hook)
            except Exception:  # noqa: BLE001 - kernel may already be gone
                pass
        moved: List[Dict[str, Any]] = []
        with self._lock:
            popped = shard.queue.pop()
            while popped is not None:
                moved.append(popped[1])
                popped = shard.queue.pop()
            for key in [k for k in self._tasks if k[0] == index]:
                item = self._tasks.pop(key)
                tenant = self._tenant_state(item["tenant"])
                tenant.running -= 1
                tenant.queued += 1
                session = self._sessions.get(item["session"])
                if session is not None:
                    session.seen[item["client_task_id"]] = "queued"
                moved.append(item)
            shard.inflight = 0
            rerouted = 0
            for item in moved:
                target = self._router.route(item["tenant"])
                tenant = self._tenant_state(item["tenant"])
                session = self._sessions.get(item["session"])
                if target is None or session is None:
                    tenant.queued -= 1
                    tenant.failed += 1
                    if session is not None:
                        session.seen[item["client_task_id"]] = "done"
                        self._deliver(
                            item["session"], item["client_task_id"], False,
                            ShardUnavailableError(
                                f"shard {index} died with no live shard to adopt its work",
                                shard=index,
                            ),
                        )
                    continue
                assert target.cv is not None
                item["_enq_t"] = time.time()  # admission-wait clock restarts
                target.queue.put(item["tenant"], item)
                target.cv.notify()
                rerouted += 1
        logger.warning(
            "gateway shard %d killed: %d task(s) re-routed to survivors",
            index, rerouted,
        )
        return rerouted

    # ------------------------------------------------------------------
    # Session lifecycle
    # ------------------------------------------------------------------
    def _drop_identity(self, identity: str, evict_session: bool) -> None:
        with self._lock:
            session_id = self._identity_sessions.pop(identity, None)
            session = self._sessions.get(session_id) if session_id else None
            if session is None or session.identity != identity:
                return  # already superseded by a resume on a new connection
            if evict_session:
                self._sessions.pop(session.session_id, None)
                if self._store is not None:
                    self._store.delete_session(session.session_id)
            else:
                session.identity = None
                session.disconnected_at = time.time()

    def _sweep_sessions(self) -> None:
        now = time.time()
        if now - self._last_sweep < min(1.0, self.session_ttl_s / 2):
            return
        self._last_sweep = now
        with self._lock:
            expired = [
                s
                for s in self._sessions.values()
                if s.identity is None
                and s.disconnected_at is not None
                and now - s.disconnected_at > self.session_ttl_s
            ]
            for session in expired:
                del self._sessions[session.session_id]
                if self._store is not None:
                    self._store.delete_session(session.session_id)
        for session in expired:
            logger.info(
                "gateway evicted session %s (tenant %s) after %.1fs disconnected",
                session.session_id, session.tenant, self.session_ttl_s,
            )

    # ------------------------------------------------------------------
    def _tenant_state(self, tenant: str) -> _TenantState:
        """Caller must hold the lock."""
        state = self._tenants.get(tenant)
        if state is None:
            state = _TenantState(tenant, self.pinned_weights.get(tenant, self.default_weight))
            state.m_admission_wait = self.metrics.histogram(
                "repro_gateway_admission_wait_seconds",
                "Time a task spent in the fair-share queue before dispatch",
                labels={"tenant": tenant},
            )
            state.m_e2e = self.metrics.histogram(
                "repro_gateway_e2e_latency_seconds",
                "Gateway admission to result delivery, per task",
                labels={"tenant": tenant},
            )
            self._tenants[tenant] = state
        return state

    def stats(self) -> Dict[str, Dict[str, int]]:
        """Per-tenant queued/running/completed/failed counts, aggregated
        across every shard (admin view; safe from any thread)."""
        with self._lock:
            return {name: state.counts() for name, state in self._tenants.items()}

    def render_metrics(self) -> str:
        """The whole fleet's live metrics, as one Prometheus text document.

        Merges the gateway's own registry (per-tenant admission-wait and
        end-to-end latency histograms, delivery counter, session gauge) with
        every shard kernel's registry (DFK submit/completion counters and
        queue depths, interchange dispatch/in-flight/fault counters, worker
        execution latency). Families sharing a name are merged and samples
        with identical labels are summed, so the document reports fleet
        totals; per-shard breakdowns live in :meth:`shard_stats`. Safe from
        any thread; with ``Config(metrics_enabled=False)`` everywhere the
        result is an empty document.
        """
        registries = [self.metrics]
        for shard in self.shards:
            reg = getattr(shard.dfk, "metrics", None)
            if reg is not None and reg not in registries:
                registries.append(reg)
        return render_prometheus(registries)

    def shard_stats(self) -> List[Dict[str, Any]]:
        """Per-shard occupancy: alive flag, window, in-flight, queue depth,
        lifetime dispatch/completion counters, plus a ``faults`` row with the
        execution-layer fault counters aggregated across the shard's
        interchange-backed executors. Safe from any thread."""
        with self._lock:
            return [shard.stats() for shard in self.shards]

    def session_count(self) -> int:
        """Number of live (connected or within-TTL) sessions."""
        with self._lock:
            return len(self._sessions)

    def store_lag_ms(self) -> float:
        """Age (ms) of the oldest uncommitted session-store write (0 = none).

        The readiness signal for a wedged store writer: healthz reports
        ``degraded`` once this exceeds ``service_store_degraded_ms``.
        Always 0.0 without a durable store.
        """
        return self._store.lag_ms() if self._store is not None else 0.0

    def live_stragglers(self) -> List[Dict[str, Any]]:
        """Scan the in-flight population for stragglers (JSON-ready rows).

        Each flagged task carries its trace id, tenant, current hop, age,
        the hop's rolling p99, and the worker/manager it was dispatched to
        (stamped into the trace by the interchange). Safe from any thread.
        """
        with self._lock:
            live = [
                (item.get("trace"), {"tenant": item.get("tenant")})
                for item in self._tasks.values()
                if item.get("trace") is not None
            ]
        return self.anomaly.scan(live)

    def alerts_snapshot(self) -> Dict[str, Any]:
        """The full ops-plane document every alerts surface serves.

        Evaluates the SLO engine first (so one-shot pollers and tests see
        current burn state, not the service loop's last tick), then bundles
        active alerts, per-tenant windowed latency/objective state,
        auxiliary latency streams, the straggler list, and the per-worker
        sick-host report. Safe from any thread.
        """
        alerts = self.slo.active_alerts()
        stragglers = self.live_stragglers()
        return {
            "alerts": alerts,
            "slo": self.slo.tenant_snapshot(),
            "streams": self.slo.stream_snapshot(),
            "stragglers": stragglers,
            "workers": self.anomaly.worker_report(stragglers),
        }

    def ops_stats(self) -> Dict[str, Any]:
        """One-call operator overview (what ``GET /v1/stats`` serves):
        per-tenant admission counters, per-shard occupancy, session count,
        and the store writer lag. Safe from any thread."""
        return {
            "tenants": self.stats(),
            "shards": self.shard_stats(),
            "sessions": self.session_count(),
            "store_lag_ms": round(self.store_lag_ms(), 3),
        }
